"""Network nodes: hosts and routers.

A :class:`Node` forwards packets by destination name through its routing
table (populated by :func:`repro.net.routing.compute_next_hops` via the
:class:`~repro.net.scenario.Network` builder). Packets addressed to the
node itself are handed to its delivery handler (the network's sink
registry). Hosts and routers are the same class — a host is just a node
where sources inject and sinks terminate, exactly as in ns-2.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.errors import SimulationError
from ..core.packet import Packet
from .port import OutputPort

__all__ = ["Node"]


class Node:
    """A named forwarding element with per-neighbour output ports."""

    def __init__(self, name: str, deliver: Optional[Callable[[Packet], None]] = None) -> None:
        self.name = name
        #: neighbour name -> OutputPort towards that neighbour.
        self.ports: Dict[str, OutputPort] = {}
        #: destination name -> neighbour name (next hop).
        self.routes: Dict[str, str] = {}
        self._deliver = deliver
        self.packets_forwarded = 0
        self.packets_delivered = 0

    def set_delivery_handler(self, deliver: Callable[[Packet], None]) -> None:
        """Install the callback for packets addressed to this node."""
        self._deliver = deliver

    def receive(self, packet: Packet) -> None:
        """Accept a packet from a link (or a local source) and dispatch it."""
        if packet.dst == self.name:
            self.packets_delivered += 1
            if self._deliver is not None:
                self._deliver(packet)
            return
        self.forward(packet)

    def forward(self, packet: Packet) -> None:
        """Send ``packet`` towards its destination via the routing table."""
        next_hop = self.routes.get(packet.dst)
        if next_hop is None:
            raise SimulationError(
                f"node {self.name!r} has no route to {packet.dst!r}"
            )
        port = self.ports.get(next_hop)
        if port is None:
            raise SimulationError(
                f"node {self.name!r} has no port towards {next_hop!r}"
            )
        self.packets_forwarded += 1
        port.enqueue(packet)

    # A host's local injection is just "receive from the application".
    inject = receive

    def __repr__(self) -> str:
        return f"Node({self.name!r}, ports={sorted(self.ports)})"
