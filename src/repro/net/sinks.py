"""Delivery recording: per-flow end-to-end delay and throughput traces.

Every packet that reaches its destination node is handed to the network's
:class:`SinkRegistry`, which stamps ``delivered_at`` and appends a
:class:`DeliveryRecord`. Analyses (delay percentiles, fairness, service
curves) are computed from these records by :mod:`repro.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List

from ..core.packet import Packet
from .engine import Simulator

__all__ = ["DeliveryRecord", "FlowRecord", "SinkRegistry"]


@dataclass(frozen=True, slots=True)
class DeliveryRecord:
    """One delivered packet, reduced to what the analyses need."""

    flow_id: Hashable
    seq: int
    size: int
    created_at: float
    delivered_at: float

    @property
    def delay(self) -> float:
        """End-to-end delay (creation to final delivery), seconds."""
        return self.delivered_at - self.created_at


class FlowRecord:
    """Accumulated delivery state for one flow."""

    __slots__ = ("flow_id", "packets", "bytes", "records", "first_at", "last_at")

    def __init__(self, flow_id: Hashable) -> None:
        self.flow_id = flow_id
        self.packets = 0
        self.bytes = 0
        self.records: List[DeliveryRecord] = []
        self.first_at = float("inf")
        self.last_at = 0.0

    def add(self, record: DeliveryRecord) -> None:
        self.packets += 1
        self.bytes += record.size
        self.records.append(record)
        self.first_at = min(self.first_at, record.delivered_at)
        self.last_at = max(self.last_at, record.delivered_at)

    def delays(self) -> List[float]:
        """Per-packet end-to-end delays in delivery order."""
        return [r.delay for r in self.records]

    def throughput_bps(self, t0: float = 0.0, t1: float = float("inf")) -> float:
        """Average goodput over ``[t0, t1]`` (delivery-time window)."""
        total = sum(
            r.size for r in self.records if t0 <= r.delivered_at <= t1
        )
        span = min(t1, self.last_at) - max(t0, 0.0)
        if span <= 0:
            return 0.0
        return total * 8.0 / span


class SinkRegistry:
    """Collects :class:`DeliveryRecord` objects for every flow.

    Delivery *listeners* can subscribe (:meth:`add_listener`) to be
    called with each delivered packet — this is how closed-loop sources
    (:class:`~repro.net.sources.WindowSource`) learn about their
    deliveries and keep their window full.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.flows: Dict[Hashable, FlowRecord] = {}
        self.total_packets = 0
        self.total_bytes = 0
        self._listeners: List = []

    def add_listener(self, listener) -> None:
        """Subscribe ``listener(packet)`` to every delivery."""
        self._listeners.append(listener)

    def record(self, packet: Packet) -> None:
        """Stamp and record a packet that reached its destination."""
        packet.delivered_at = self.sim.now
        rec = DeliveryRecord(
            flow_id=packet.flow_id,
            seq=packet.seq,
            size=packet.size,
            created_at=packet.created_at,
            delivered_at=packet.delivered_at,
        )
        flow = self.flows.get(packet.flow_id)
        if flow is None:
            flow = self.flows[packet.flow_id] = FlowRecord(packet.flow_id)
        flow.add(rec)
        self.total_packets += 1
        self.total_bytes += packet.size
        for listener in self._listeners:
            listener(packet)

    def flow(self, flow_id: Hashable) -> FlowRecord:
        """The record for ``flow_id`` (empty record if nothing delivered)."""
        rec = self.flows.get(flow_id)
        if rec is None:
            rec = self.flows[flow_id] = FlowRecord(flow_id)
        return rec

    def delays(self, flow_id: Hashable) -> List[float]:
        """Per-packet delays for ``flow_id`` (empty when none delivered)."""
        return self.flow(flow_id).delays()

    def __repr__(self) -> str:
        return (
            f"SinkRegistry(flows={len(self.flows)}, "
            f"packets={self.total_packets})"
        )
