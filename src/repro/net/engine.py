"""Discrete-event simulation engine (the core of the ns-2 replacement).

A :class:`Simulator` owns a priority queue of timestamped events. Model
components (links, ports, traffic sources) schedule callbacks; ``run``
drains the queue in time order. Determinism: events at identical times
fire in scheduling order (a monotonically increasing sequence number
breaks ties), so simulations are exactly reproducible.

Times are floats in seconds. The engine is deliberately minimal — no
processes/coroutines — because packet-level models are naturally
callback-shaped and this keeps the hot loop fast in pure Python.

Event-queue backends: the queue is pluggable (:mod:`repro.net.eventq`).
The default is the O(1)-amortised :class:`~repro.net.eventq.CalendarQueue`
(ns-2's own choice of event list); ``Simulator(queue="heap")`` restores
the seed's binary-heap behaviour. Both pop in exactly ``(time, seq)``
order, so the backend cannot change simulation results — only wall time.

Observability: the engine keeps cheap counters (events processed,
cancelled events reaped, maximum queue depth, cumulative wall time inside
``run``) exposed together by :meth:`Simulator.stats` along with the
backend kind, and supports an optional per-callback timing hook
(:attr:`Simulator.callback_hook`) for profiling which model components
dominate a run. The hot loop pays one ``is not None`` branch per event
when the hook is unset; the attribute itself is read once per ``run()``
call, so installing a hook mid-run (from inside a callback) takes effect
on the next ``run()``. Pending-event accounting distinguishes
:attr:`Simulator.pending_events` (queued entries, including cancelled
ones not yet reaped) from :attr:`Simulator.pending_live` (events that
will actually fire).
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Dict, Optional, Union

from ..core.errors import SimulationError
from ..obs.telemetry import get_telemetry as _get_telemetry
from .eventq import CalendarQueue, HeapQueue, make_queue

__all__ = ["Event", "Simulator"]

_EventQueue = Union[HeapQueue, CalendarQueue]


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable,
        args: tuple,
        sim: "Optional[Simulator]" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Back-reference for live-event accounting; cleared when the
        # event fires or is cancelled, so cancel-after-fire stays a no-op.
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._cancelled_pending += 1

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.9f}, seq={self.seq}{state})"


class Simulator:
    """Deterministic discrete-event scheduler.

    Args:
        queue: Event-queue backend — a kind name (``"heap"`` /
            ``"calendar"``), an already-built queue object, or ``None``
            for the process default (the ``REPRO_ENGINE`` environment
            variable, else the calendar queue).
    """

    def __init__(self, queue: Union[None, str, _EventQueue] = None) -> None:
        if queue is None or isinstance(queue, str):
            queue = make_queue(queue)
        self._queue: _EventQueue = queue
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        self._cancelled_reaped = 0
        # Cancelled events still sitting in the queue: pending_live is
        # pending_events minus this (no per-fire bookkeeping needed).
        self._cancelled_pending = 0
        self._max_heap_depth = 0
        self._wall_time = 0.0
        self._running = False
        #: Optional per-callback timing hook: called as
        #: ``hook(event, elapsed_seconds)`` after each event fires.
        #: Intended for profiling; adds two clock reads per event.
        self.callback_hook: Optional[Callable[[Event, float], None]] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def queue_kind(self) -> str:
        """The event-queue backend in use (``"heap"`` / ``"calendar"``)."""
        return self._queue.kind

    @property
    def events_processed(self) -> int:
        """Number of events fired so far."""
        return self._events_processed

    @property
    def cancelled_reaped(self) -> int:
        """Cancelled events discarded (not fired) by ``run`` so far."""
        return self._cancelled_reaped

    @property
    def max_heap_depth(self) -> int:
        """High-water mark of the event queue length."""
        return self._max_heap_depth

    @property
    def wall_time_s(self) -> float:
        """Cumulative real seconds spent inside ``run`` calls."""
        return self._wall_time

    @property
    def pending_events(self) -> int:
        """Events still queued (including cancelled ones not yet reaped)."""
        return self._queue.size

    @property
    def pending_live(self) -> int:
        """Events still queued that will actually fire (not cancelled)."""
        return self._queue.size - self._cancelled_pending

    def stats(self) -> Dict[str, Any]:
        """All observability counters in one summable dict.

        Values are numeric except ``queue_kind`` (the backend name, which
        lands verbatim in the ``engine`` artifact block).
        """
        stats: Dict[str, Any] = {
            "events_processed": self._events_processed,
            "cancelled_reaped": self._cancelled_reaped,
            "max_heap_depth": self._max_heap_depth,
            "sim_wall_time_s": self._wall_time,
            "pending_events": self._queue.size,
            "pending_live": self._queue.size - self._cancelled_pending,
            "queue_kind": self._queue.kind,
        }
        stats.update(self._queue.stats())
        return stats

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest queued event, ``None`` when empty.

        Cancelled-but-unreaped events count (reaping them here would cost
        pops): this is a diagnostic probe — the sharded engine reports
        per-shard horizon lag from it — not a scheduling decision.
        """
        return self._queue.peek_time()

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self._now})"
            )
        event = Event(time, self._seq, fn, args, self)
        self._seq += 1
        queue = self._queue
        queue.push(event)
        if queue.size > self._max_heap_depth:
            self._max_heap_depth = queue.size
        return event

    def reschedule(self, event: Event, delay: float) -> Event:
        """Re-arm a **fired** event ``delay`` seconds from now, in place.

        Components that keep exactly one event in flight at a time (e.g.
        an output port's transmit-complete) can recycle the same
        :class:`Event` object instead of allocating a fresh one per
        packet. The event is re-queued with a fresh sequence number from
        the same counter :meth:`schedule` uses, so results are
        bit-identical to allocating a new event.

        Only an event that has already fired may be re-armed: a pending
        or cancelled-pending event still sits inside the queue, and
        mutating it there would corrupt the queue order (a cancelled
        event cannot be distinguished from a reaped one, so cancelled
        events are never reusable).
        """
        if event._sim is not None or event.cancelled:
            raise SimulationError(
                f"cannot reschedule {event!r}: only an event that has "
                "already fired (and was never cancelled) may be reused"
            )
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event.time = self._now + delay
        event.seq = self._seq
        self._seq += 1
        event._sim = self
        queue = self._queue
        queue.push(event)
        if queue.size > self._max_heap_depth:
            self._max_heap_depth = queue.size
        return event

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        *,
        inclusive: bool = True,
    ) -> int:
        """Process events in time order.

        Args:
            until: Stop once the next event is later than this time (the
                clock is left at ``until``; an event at exactly ``until``
                still fires). ``None`` runs to exhaustion.
            max_events: Safety valve against runaway models.
            inclusive: With ``inclusive=False`` the bound is exclusive —
                an event at exactly ``until`` does *not* fire (it stays
                queued) and the clock is still left at ``until``. This is
                the half-open window ``[now, until)`` the sharded engine
                advances by: events landing exactly on a barrier belong
                to the next window, where cross-shard arrivals carrying
                that timestamp have already been injected.

        Returns:
            The number of events processed by this call.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        processed = 0
        queue = self._queue
        # Pre-bound method locals: the loop below runs once per event, so
        # every attribute lookup hoisted out of it is measurable.
        pop = queue.pop
        peek = queue.peek
        # The hook is read once per run() call, not per event — this is
        # the documented "one branch per event" cost. Installing a hook
        # from inside a callback takes effect on the next run().
        hook = self.callback_hook
        # Live telemetry (sweep workers set REPRO_TELEMETRY): heartbeat
        # every 8192 events from the bounded loop. The fast-drain loop
        # stays untouched — a telemetry writer simply routes runs through
        # the general loop, whose per-event cost for the masked check is
        # one AND plus a predictable branch.
        tele = _get_telemetry()
        perf_counter = _time.perf_counter
        wall_start = perf_counter()
        try:
            if until is None and max_events is None and hook is None \
                    and tele is None:
                # The common full-drain case: no bound checks per event.
                while queue.size:
                    event = pop()
                    if event.cancelled:
                        self._cancelled_reaped += 1
                        self._cancelled_pending -= 1
                        continue
                    self._now = event.time
                    event._sim = None
                    event.fn(*event.args)
                    processed += 1
                self._events_processed += processed
            else:
                exclusive = not inclusive
                while queue.size:
                    event = peek()
                    if until is not None and (
                        event.time > until
                        or (exclusive and event.time == until)
                    ):
                        break
                    pop()
                    if event.cancelled:
                        self._cancelled_reaped += 1
                        self._cancelled_pending -= 1
                        continue
                    self._now = event.time
                    event._sim = None
                    if hook is None:
                        event.fn(*event.args)
                    else:
                        t0 = perf_counter()
                        event.fn(*event.args)
                        hook(event, perf_counter() - t0)
                    processed += 1
                    self._events_processed += 1
                    if not processed & 8191 and tele is not None:
                        tele.heartbeat(
                            kind="engine",
                            events=self._events_processed,
                            sim_time=self._now,
                        )
                    if max_events is not None and processed >= max_events:
                        break
        finally:
            self._running = False
            self._wall_time += perf_counter() - wall_start
        if until is not None and self._now < until:
            self._now = until
        return processed

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self._now:.6f}, pending={self._queue.size}, "
            f"queue={self._queue.kind}, processed={self._events_processed})"
        )
