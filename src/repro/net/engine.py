"""Discrete-event simulation engine (the core of the ns-2 replacement).

A :class:`Simulator` owns a priority queue of timestamped events. Model
components (links, ports, traffic sources) schedule callbacks; ``run``
drains the queue in time order. Determinism: events at identical times
fire in scheduling order (a monotonically increasing sequence number
breaks ties), so simulations are exactly reproducible.

Times are floats in seconds. The engine is deliberately minimal — no
processes/coroutines — because packet-level models are naturally
callback-shaped and this keeps the hot loop fast in pure Python.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from ..core.errors import SimulationError

__all__ = ["Event", "Simulator"]


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.9f}, seq={self.seq}{state})"


class Simulator:
    """Deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Events still queued (including cancelled ones not yet reaped)."""
        return len(self._queue)

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self._now})"
            )
        event = Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events in time order.

        Args:
            until: Stop once the next event is later than this time (the
                clock is left at ``until``). ``None`` runs to exhaustion.
            max_events: Safety valve against runaway models.

        Returns:
            The number of events processed by this call.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        processed = 0
        queue = self._queue
        try:
            while queue:
                event = queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(queue)
                if event.cancelled:
                    continue
                self._now = event.time
                event.fn(*event.args)
                processed += 1
                self._events_processed += 1
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return processed

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self._now:.6f}, pending={len(self._queue)}, "
            f"processed={self._events_processed})"
        )
