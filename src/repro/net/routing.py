"""Static shortest-path routing.

Routes are computed once from the topology (Dijkstra from every node, cost
= link cost, default 1 per hop) and installed as next-hop tables. This
matches the static routing used for scheduler evaluations in ns-2: the
experiments study queueing, not route dynamics.

Tie-breaking is deterministic (lexically smaller predecessor wins), so
simulations are exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..core.errors import ConfigurationError

__all__ = ["compute_next_hops", "shortest_path"]

Adjacency = Dict[str, List[Tuple[str, float]]]


def _dijkstra(
    adjacency: Adjacency, src: str
) -> Tuple[Dict[str, float], Dict[str, Optional[str]]]:
    """Distances and predecessor map from ``src``."""
    if src not in adjacency:
        raise ConfigurationError(f"unknown node {src!r}")
    dist: Dict[str, float] = {src: 0.0}
    prev: Dict[str, Optional[str]] = {src: None}
    heap: List[Tuple[float, str]] = [(0.0, src)]
    done = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for neighbour, cost in adjacency.get(node, ()):
            if cost < 0:
                raise ConfigurationError(
                    f"negative link cost {cost} on {node!r}->{neighbour!r}"
                )
            nd = d + cost
            better = neighbour not in dist or nd < dist[neighbour] - 1e-15
            # Deterministic tie-break: prefer the lexically smaller
            # predecessor at equal distance.
            tie = (
                neighbour in dist
                and abs(nd - dist[neighbour]) <= 1e-15
                and neighbour not in done
                and str(node) < str(prev[neighbour])
            )
            if better or tie:
                dist[neighbour] = nd
                prev[neighbour] = node
                heapq.heappush(heap, (nd, neighbour))
    return dist, prev


def shortest_path(adjacency: Adjacency, src: str, dst: str) -> List[str]:
    """The node sequence of the shortest path ``src -> dst``.

    Raises:
        ConfigurationError: when ``dst`` is unreachable from ``src``.
    """
    if src == dst:
        return [src]
    _dist, prev = _dijkstra(adjacency, src)
    if dst not in prev:
        raise ConfigurationError(f"no path from {src!r} to {dst!r}")
    path = [dst]
    node: Optional[str] = dst
    while node != src:
        node = prev[node]  # type: ignore[index]
        assert node is not None
        path.append(node)
    path.reverse()
    return path


def compute_next_hops(adjacency: Adjacency) -> Dict[str, Dict[str, str]]:
    """All-pairs next-hop tables.

    Args:
        adjacency: node -> list of (neighbour, cost) for its outgoing links.

    Returns:
        ``tables[src][dst] = first-hop neighbour`` for every reachable
        ``dst != src``.
    """
    tables: Dict[str, Dict[str, str]] = {}
    for src in adjacency:
        _dist, prev = _dijkstra(adjacency, src)
        table: Dict[str, str] = {}
        for dst in prev:
            if dst == src:
                continue
            # Walk back from dst to the node adjacent to src.
            node = dst
            while prev[node] != src:
                node = prev[node]  # type: ignore[assignment]
                assert node is not None
            table[dst] = node
        tables[src] = table
    return tables
