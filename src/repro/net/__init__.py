"""A from-scratch discrete-event network simulator (the ns-2 stand-in).

Components: an event engine (:mod:`~repro.net.engine`), links and
scheduler-equipped output ports (:mod:`~repro.net.link`,
:mod:`~repro.net.port`), forwarding nodes (:mod:`~repro.net.node`), static
shortest-path routing (:mod:`~repro.net.routing`), traffic sources
(:mod:`~repro.net.sources`), leaky-bucket shaping
(:mod:`~repro.net.shaping`), delivery records (:mod:`~repro.net.sinks`),
measurement probes (:mod:`~repro.net.monitors`), and the
:class:`~repro.net.scenario.Network` builder that wires them together.
"""

from .engine import Event, Simulator
from .eventq import CalendarQueue, HeapQueue, make_queue
from .link import Link
from .monitors import BacklogMonitor, HopTrace, ServiceTrace, ThroughputMonitor
from .node import Node
from .port import OutputPort
from .routing import compute_next_hops, shortest_path
from .scenario import FlowSpec, Network
from .shaping import TokenBucketShaper
from .sinks import DeliveryRecord, FlowRecord, SinkRegistry
from .traceio import (
    load_delivery_trace,
    load_service_trace,
    save_delivery_trace,
    save_service_trace,
)
from .sources import (
    BurstSource,
    CBRSource,
    ExponentialOnOffSource,
    ParetoOnOffSource,
    PoissonSource,
    TraceSource,
    TrafficSource,
    WindowSource,
)

__all__ = [
    "BacklogMonitor",
    "BurstSource",
    "CBRSource",
    "CalendarQueue",
    "DeliveryRecord",
    "Event",
    "HeapQueue",
    "ExponentialOnOffSource",
    "FlowRecord",
    "FlowSpec",
    "HopTrace",
    "Link",
    "Network",
    "Node",
    "OutputPort",
    "ParetoOnOffSource",
    "PoissonSource",
    "ServiceTrace",
    "SinkRegistry",
    "Simulator",
    "TokenBucketShaper",
    "TraceSource",
    "TrafficSource",
    "WindowSource",
    "compute_next_hops",
    "load_delivery_trace",
    "load_service_trace",
    "make_queue",
    "save_delivery_trace",
    "save_service_trace",
    "shortest_path",
]
