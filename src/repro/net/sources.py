"""Traffic sources: CBR, Poisson, on/off (Pareto/exponential), bursts, traces.

Sources are bound to an emission callback by the
:class:`~repro.net.scenario.Network` builder (``emit(size)`` creates a
fully addressed packet and injects it at the flow's source host), then
``start()`` schedules the first transmission. All randomness flows through
per-source ``random.Random(seed)`` instances so simulations are exactly
reproducible.

The Pareto on/off source reproduces the paper's best-effort background
traffic: mean on and off times of 100 ms, shape alpha = 1.5, peak rate
chosen so the mean rate exceeds the unallocated bandwidth.
"""

from __future__ import annotations

import abc
import random
from typing import Callable, Iterable, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from .engine import Simulator

__all__ = [
    "TrafficSource",
    "CBRSource",
    "PoissonSource",
    "ParetoOnOffSource",
    "ExponentialOnOffSource",
    "BurstSource",
    "TraceSource",
    "WindowSource",
]

EmitFn = Callable[[int], None]


class TrafficSource(abc.ABC):
    """Base class wiring a source into the simulator."""

    def __init__(self) -> None:
        self.sim: Optional[Simulator] = None
        self._emit: Optional[EmitFn] = None
        self.packets_emitted = 0
        self.bytes_emitted = 0

    def bind(self, sim: Simulator, emit: EmitFn) -> None:
        """Attach to a simulator and an emission callback."""
        self.sim = sim
        self._emit = emit

    def emit(self, size: int) -> None:
        """Emit one packet of ``size`` bytes via the bound callback."""
        assert self._emit is not None, "source not bound"
        self.packets_emitted += 1
        self.bytes_emitted += size
        self._emit(size)

    @abc.abstractmethod
    def start(self) -> None:
        """Schedule the source's first emission."""


class CBRSource(TrafficSource):
    """Constant bit rate: one ``packet_size`` packet every
    ``packet_size * 8 / rate_bps`` seconds.

    This is the paper's reserved-traffic model (CBR over the reserved
    rate). ``start_at``/``stop_at`` bound the active interval.

    Emission ``n`` happens at exactly ``start + n * interval`` (one
    multiply from the epoch, not an accumulated ``now + interval``), so
    arrival times carry no cumulative float drift even after 10^7
    packets. Emissions are scheduled ``batch`` at a time with a single
    re-arm event per batch, amortising the per-packet ``schedule()``
    overhead. A grid point at or past ``stop_at`` is never scheduled —
    the same emissions as the tick-by-tick form, without dead events.
    """

    def __init__(
        self,
        rate_bps: float,
        packet_size: int = 200,
        *,
        start_at: float = 0.0,
        stop_at: Optional[float] = None,
        batch: int = 64,
    ) -> None:
        super().__init__()
        if rate_bps <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate_bps}")
        if packet_size <= 0:
            raise ConfigurationError(f"packet size must be positive")
        if batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.start_at = start_at
        self.stop_at = stop_at
        self.batch = batch
        self.interval = packet_size * 8.0 / rate_bps
        self._epoch = 0.0
        self._next_n = 0

    def start(self) -> None:
        assert self.sim is not None
        self._epoch = max(self.start_at, self.sim.now)
        self._next_n = 0
        self._schedule_batch()

    def _schedule_batch(self) -> None:
        sim = self.sim
        assert sim is not None
        epoch = self._epoch
        interval = self.interval
        stop = self.stop_at
        schedule_at = sim.schedule_at
        fire = self._fire
        t = 0.0
        scheduled = False
        first = self._next_n
        last = first + self.batch
        for n in range(first, last):
            t = epoch + n * interval
            if stop is not None and t >= stop:
                self._next_n = n
                return  # the grid reached stop_at: the source is done
            schedule_at(t, fire)
            scheduled = True
        self._next_n = last
        if scheduled:
            # Re-arm at the batch's final emission time (later seq, so it
            # fires after that emission).
            schedule_at(t, self._schedule_batch)

    def _fire(self) -> None:
        self.emit(self.packet_size)


class PoissonSource(TrafficSource):
    """Poisson packet arrivals with the given mean rate."""

    def __init__(
        self,
        mean_rate_bps: float,
        packet_size: int = 200,
        *,
        start_at: float = 0.0,
        stop_at: Optional[float] = None,
        seed: int = 1,
    ) -> None:
        super().__init__()
        if mean_rate_bps <= 0:
            raise ConfigurationError("mean rate must be positive")
        if packet_size <= 0:
            raise ConfigurationError("packet size must be positive")
        self.packet_size = packet_size
        self.mean_interval = packet_size * 8.0 / mean_rate_bps
        self.start_at = start_at
        self.stop_at = stop_at
        self._rng = random.Random(seed)

    def start(self) -> None:
        assert self.sim is not None
        self.sim.schedule_at(max(self.start_at, self.sim.now), self._tick)

    def _tick(self) -> None:
        assert self.sim is not None
        if self.stop_at is not None and self.sim.now >= self.stop_at:
            return
        self.emit(self.packet_size)
        self.sim.schedule(
            self._rng.expovariate(1.0 / self.mean_interval), self._tick
        )


class _OnOffSource(TrafficSource):
    """Common machinery: CBR at ``peak_rate_bps`` during ON periods."""

    def __init__(
        self,
        peak_rate_bps: float,
        packet_size: int,
        start_at: float,
        stop_at: Optional[float],
        seed: int,
    ) -> None:
        super().__init__()
        if peak_rate_bps <= 0:
            raise ConfigurationError("peak rate must be positive")
        if packet_size <= 0:
            raise ConfigurationError("packet size must be positive")
        self.peak_rate_bps = peak_rate_bps
        self.packet_size = packet_size
        self.interval = packet_size * 8.0 / peak_rate_bps
        self.start_at = start_at
        self.stop_at = stop_at
        self._rng = random.Random(seed)
        self._on_until = 0.0
        # Drift-free ON-phase grid: emission j of the current ON period
        # happens at exactly ``on_epoch + j * interval``.
        self._on_epoch = 0.0
        self._on_n = 0

    @abc.abstractmethod
    def _sample_on(self) -> float:
        """Duration of the next ON period (seconds)."""

    @abc.abstractmethod
    def _sample_off(self) -> float:
        """Duration of the next OFF period (seconds)."""

    def start(self) -> None:
        assert self.sim is not None
        self.sim.schedule_at(max(self.start_at, self.sim.now), self._begin_on)

    def _stopped(self) -> bool:
        assert self.sim is not None
        return self.stop_at is not None and self.sim.now >= self.stop_at

    def _begin_on(self) -> None:
        assert self.sim is not None
        if self._stopped():
            return
        now = self.sim.now
        self._on_until = now + self._sample_on()
        self._on_epoch = now
        self._on_n = 0
        self._tick()

    def _tick(self) -> None:
        assert self.sim is not None
        if self._stopped():
            return
        if self.sim.now >= self._on_until:
            self.sim.schedule(self._sample_off(), self._begin_on)
            return
        self.emit(self.packet_size)
        self._on_n += 1
        self.sim.schedule_at(
            self._on_epoch + self._on_n * self.interval, self._tick
        )


class ParetoOnOffSource(_OnOffSource):
    """Pareto on/off source — the paper's best-effort traffic model.

    ON and OFF durations are Pareto distributed with the given means and
    shape ``alpha`` (the paper uses mean 100 ms and alpha 1.5). During ON,
    packets are emitted at ``peak_rate_bps``; the long-run mean rate is
    ``peak * on / (on + off)``.
    """

    def __init__(
        self,
        peak_rate_bps: float,
        packet_size: int = 200,
        *,
        mean_on: float = 0.1,
        mean_off: float = 0.1,
        alpha: float = 1.5,
        start_at: float = 0.0,
        stop_at: Optional[float] = None,
        seed: int = 1,
    ) -> None:
        super().__init__(peak_rate_bps, packet_size, start_at, stop_at, seed)
        if alpha <= 1.0:
            raise ConfigurationError(
                f"Pareto shape must be > 1 for a finite mean, got {alpha}"
            )
        if mean_on <= 0 or mean_off <= 0:
            raise ConfigurationError("mean on/off times must be positive")
        self.alpha = alpha
        self.mean_on = mean_on
        self.mean_off = mean_off
        # Pareto scale for a given mean: x_min = mean * (alpha-1) / alpha.
        self._scale_on = mean_on * (alpha - 1.0) / alpha
        self._scale_off = mean_off * (alpha - 1.0) / alpha

    def _pareto(self, scale: float) -> float:
        # Inverse-CDF sampling: scale / U^(1/alpha).
        u = 1.0 - self._rng.random()  # avoid 0
        return scale * u ** (-1.0 / self.alpha)

    def _sample_on(self) -> float:
        return self._pareto(self._scale_on)

    def _sample_off(self) -> float:
        return self._pareto(self._scale_off)

    @property
    def mean_rate_bps(self) -> float:
        """Long-run average emission rate."""
        return self.peak_rate_bps * self.mean_on / (self.mean_on + self.mean_off)


class ExponentialOnOffSource(_OnOffSource):
    """Exponential on/off source (ns-2's Exponential On/Off)."""

    def __init__(
        self,
        peak_rate_bps: float,
        packet_size: int = 200,
        *,
        mean_on: float = 0.1,
        mean_off: float = 0.1,
        start_at: float = 0.0,
        stop_at: Optional[float] = None,
        seed: int = 1,
    ) -> None:
        super().__init__(peak_rate_bps, packet_size, start_at, stop_at, seed)
        if mean_on <= 0 or mean_off <= 0:
            raise ConfigurationError("mean on/off times must be positive")
        self.mean_on = mean_on
        self.mean_off = mean_off

    def _sample_on(self) -> float:
        return self._rng.expovariate(1.0 / self.mean_on)

    def _sample_off(self) -> float:
        return self._rng.expovariate(1.0 / self.mean_off)


class BurstSource(TrafficSource):
    """Emit ``count`` packets at ``at`` (optionally ``spacing`` apart) —
    the standing-backlog workload for single-node fairness experiments."""

    def __init__(
        self,
        count: int,
        packet_size: int = 200,
        *,
        at: float = 0.0,
        spacing: float = 0.0,
    ) -> None:
        super().__init__()
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        if packet_size <= 0:
            raise ConfigurationError("packet size must be positive")
        self.count = count
        self.packet_size = packet_size
        self.at = at
        self.spacing = spacing

    def start(self) -> None:
        assert self.sim is not None
        if self.spacing <= 0:
            self.sim.schedule_at(max(self.at, self.sim.now), self._burst)
        else:
            for i in range(self.count):
                self.sim.schedule_at(
                    max(self.at, self.sim.now) + i * self.spacing,
                    self.emit,
                    self.packet_size,
                )

    def _burst(self) -> None:
        for _ in range(self.count):
            self.emit(self.packet_size)


class WindowSource(TrafficSource):
    """Closed-loop (TCP-like) source: keeps ``window`` packets in flight.

    The source emits ``window`` packets at start; every time one of its
    packets is *delivered* (reported by the sink registry), it emits a
    replacement after ``ack_delay`` seconds (the return path of the
    acknowledgement). Its sending rate therefore adapts to the service
    it receives — the classic elastic workload, useful for studying how
    schedulers isolate reserved traffic from greedy adaptive traffic
    without modelling full TCP.

    The :class:`~repro.net.scenario.Network` wires the delivery feedback
    automatically when attaching the source (``wants_feedback``).
    """

    wants_feedback = True

    def __init__(
        self,
        window: int = 16,
        packet_size: int = 1000,
        *,
        ack_delay: float = 0.001,
        total: Optional[int] = None,
        start_at: float = 0.0,
    ) -> None:
        super().__init__()
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if packet_size <= 0:
            raise ConfigurationError("packet size must be positive")
        if ack_delay < 0:
            raise ConfigurationError("ack_delay must be >= 0")
        self.window = window
        self.packet_size = packet_size
        self.ack_delay = ack_delay
        self.total = total
        self.start_at = start_at
        self._flow_id: Optional[object] = None

    def bind_feedback(self, flow_id, sink_registry) -> None:
        """Subscribe to the sink registry for this flow's deliveries."""
        self._flow_id = flow_id
        sink_registry.add_listener(self._on_delivery)

    def start(self) -> None:
        assert self.sim is not None
        self.sim.schedule_at(max(self.start_at, self.sim.now), self._open)

    def _open(self) -> None:
        for _ in range(self.window):
            if self._exhausted():
                return
            self.emit(self.packet_size)

    def _on_delivery(self, packet) -> None:
        if packet.flow_id != self._flow_id:
            return
        assert self.sim is not None
        if self._exhausted():
            return
        self.sim.schedule(self.ack_delay, self._refill)

    def _refill(self) -> None:
        if not self._exhausted():
            self.emit(self.packet_size)

    def _exhausted(self) -> bool:
        return self.total is not None and self.packets_emitted >= self.total


class TraceSource(TrafficSource):
    """Replay an explicit ``(time, size)`` schedule."""

    def __init__(self, events: Iterable[Tuple[float, int]]) -> None:
        super().__init__()
        self.events: Sequence[Tuple[float, int]] = sorted(events)
        for t, size in self.events:
            if t < 0 or size <= 0:
                raise ConfigurationError(f"bad trace event ({t}, {size})")

    def start(self) -> None:
        assert self.sim is not None
        for t, size in self.events:
            self.sim.schedule_at(max(t, self.sim.now), self.emit, size)
