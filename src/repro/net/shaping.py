"""Leaky-bucket / token-bucket traffic shaping.

Corollary 1 of the supplied text (and the LR-server framework generally)
states end-to-end delay bounds for flows constrained by a leaky bucket
``(sigma, rho)``: at most ``sigma`` bytes of burst on top of a sustained
rate ``rho``. :class:`TokenBucketShaper` enforces exactly that envelope
between a source and its host: conforming packets pass through
immediately; the rest wait in a FIFO until tokens accumulate.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..core.errors import ConfigurationError
from ..core.packet import Packet
from .engine import Simulator

__all__ = ["TokenBucketShaper"]

ForwardFn = Callable[[Packet], None]

#: Token-comparison slack in bytes. Refill arithmetic accumulates float
#: error; without tolerance a packet can stall 1e-13 bytes short of
#: conformance and busy-loop the release event at zero delay.
_EPSILON_BYTES = 1e-6


class TokenBucketShaper:
    """A ``(sigma, rho)`` regulator: ``sigma`` bytes of depth, ``rho`` bits/s.

    Args:
        sigma_bytes: Bucket depth (maximum burst, bytes).
        rate_bps: Token fill rate (sustained rate, bits/s).

    Use :meth:`bind` to point the shaper at the downstream ``forward``
    callback, then feed it with :meth:`offer`.
    """

    def __init__(self, sigma_bytes: float, rate_bps: float) -> None:
        if sigma_bytes <= 0:
            raise ConfigurationError("sigma must be positive (bytes)")
        if rate_bps <= 0:
            raise ConfigurationError("rate must be positive (bits/s)")
        self.sigma = float(sigma_bytes)
        self.rate_bytes_per_s = rate_bps / 8.0
        self.sim: Optional[Simulator] = None
        self._forward: Optional[ForwardFn] = None
        self._tokens = float(sigma_bytes)  # start full (worst-case burst)
        self._last_fill = 0.0
        self._queue: Deque[Packet] = deque()
        self._release_pending = False
        self.packets_shaped = 0
        self.packets_delayed = 0

    def bind(self, sim: Simulator, forward: ForwardFn) -> None:
        """Attach to the simulator and the downstream consumer."""
        self.sim = sim
        self._forward = forward
        self._last_fill = sim.now

    def offer(self, packet: Packet) -> None:
        """Submit a packet; it is forwarded when it conforms."""
        assert self.sim is not None and self._forward is not None
        self._refill()
        self.packets_shaped += 1
        if not self._queue and self._tokens >= packet.size - _EPSILON_BYTES:
            self._tokens = max(0.0, self._tokens - packet.size)
            self._forward(packet)
            return
        self.packets_delayed += 1
        self._queue.append(packet)
        self._schedule_release()

    @property
    def backlog(self) -> int:
        """Packets waiting for tokens."""
        return len(self._queue)

    def _refill(self) -> None:
        assert self.sim is not None
        now = self.sim.now
        self._tokens = min(
            self.sigma,
            self._tokens + (now - self._last_fill) * self.rate_bytes_per_s,
        )
        self._last_fill = now

    def _schedule_release(self) -> None:
        assert self.sim is not None
        if self._release_pending or not self._queue:
            return
        need = self._queue[0].size - self._tokens
        delay = max(0.0, need / self.rate_bytes_per_s)
        self._release_pending = True
        self.sim.schedule(delay, self._release)

    def _release(self) -> None:
        assert self._forward is not None
        self._release_pending = False
        self._refill()
        while (
            self._queue
            and self._tokens >= self._queue[0].size - _EPSILON_BYTES
        ):
            packet = self._queue.popleft()
            self._tokens = max(0.0, self._tokens - packet.size)
            self._forward(packet)
        self._schedule_release()
