"""Trace persistence: export/import delivery and service traces.

Long simulations are expensive; analyses are cheap. These helpers save a
run's per-packet records to disk (CSV — stdlib only, diff-friendly,
loadable by pandas/numpy elsewhere) so experiments can be re-analysed
without re-simulating.

Two record kinds are covered:

* **delivery traces** — end-to-end per-packet records from a
  :class:`~repro.net.sinks.SinkRegistry`;
* **service traces** — per-port transmission logs from a
  :class:`~repro.net.monitors.ServiceTrace`.

Flow ids are serialised with ``str()``; loading returns them as strings
(hashable, good enough for analysis — keep flow ids string-typed in
experiments you intend to persist).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Tuple, Union

from ..core.errors import ConfigurationError
from .monitors import ServiceTrace
from .sinks import DeliveryRecord, SinkRegistry

__all__ = [
    "save_delivery_trace",
    "load_delivery_trace",
    "save_service_trace",
    "load_service_trace",
]

PathLike = Union[str, Path]

_DELIVERY_HEADER = ["flow_id", "seq", "size", "created_at", "delivered_at"]
_SERVICE_HEADER = ["time", "flow_id", "size"]


def save_delivery_trace(sinks: SinkRegistry, path: PathLike) -> int:
    """Write every delivery record to ``path`` (CSV); returns row count."""
    rows = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_DELIVERY_HEADER)
        for flow in sinks.flows.values():
            for rec in flow.records:
                writer.writerow(
                    [rec.flow_id, rec.seq, rec.size,
                     repr(rec.created_at), repr(rec.delivered_at)]
                )
                rows += 1
    return rows


def load_delivery_trace(path: PathLike) -> List[DeliveryRecord]:
    """Read a delivery-trace CSV back into records (flow ids as str)."""
    records: List[DeliveryRecord] = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != _DELIVERY_HEADER:
            raise ConfigurationError(
                f"{path}: not a delivery trace (header {header})"
            )
        for row in reader:
            flow_id, seq, size, created, delivered = row
            records.append(
                DeliveryRecord(
                    flow_id=flow_id,
                    seq=int(seq),
                    size=int(size),
                    created_at=float(created),
                    delivered_at=float(delivered),
                )
            )
    return records


def save_service_trace(trace: ServiceTrace, path: PathLike) -> int:
    """Write a port's transmission log to ``path`` (CSV); returns rows."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_SERVICE_HEADER)
        for t, fid, size in trace.entries:
            writer.writerow([repr(t), fid, size])
    return len(trace.entries)


def load_service_trace(path: PathLike) -> List[Tuple[float, str, int]]:
    """Read a service-trace CSV back as ``(time, flow_id, size)`` tuples."""
    entries: List[Tuple[float, str, int]] = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != _SERVICE_HEADER:
            raise ConfigurationError(
                f"{path}: not a service trace (header {header})"
            )
        for t, fid, size in reader:
            entries.append((float(t), fid, int(size)))
    return entries
