"""Output port: where a scheduler meets a link.

Every (node, outgoing link) pair has an :class:`OutputPort` holding one
scheduler instance (any :class:`~repro.core.interfaces.PacketScheduler`).
The port implements the store-and-forward transmit loop:

* arriving packets are stamped and pushed into the scheduler;
* whenever the line is free, the scheduler is asked for the next packet,
  which occupies the line for its serialisation time and is delivered to
  the peer node after the propagation delay;
* observers can subscribe to per-packet transmit-completion callbacks
  (``on_transmit``) — the fairness analyses build per-port service traces
  from these.

This is the point where the paper's O(1)-per-packet claim matters: the
``dequeue`` call sits on the critical path of every transmitted packet.

Observability: the port is the emit point for packet-lifecycle tracing
(:mod:`repro.obs.trace`) — ``enqueue``/``drop`` on arrival,
``sched_decision``/``dequeue`` around the scheduler call, ``transmit``
on completion — and feeds per-port metrics (queue-wait histogram, bytes
and drop counters) into the active registry (:mod:`repro.obs.metrics`).
Both default to off: the tracer costs one ``is not None`` branch per
packet, the metrics are no-op singletons from the null registry.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.errors import SimulationError, UnknownFlowError
from ..core.interfaces import PacketScheduler
from ..core.packet import Packet
from ..obs.metrics import DELAY_BUCKETS_S, MetricsRegistry
from ..obs.metrics import get_registry as _active_registry
from ..obs.trace import Tracer, get_tracer
from .engine import Simulator
from .link import Link

__all__ = ["BoundaryPeer", "OutputPort"]

TransmitHook = Callable[[float, Packet], None]


class BoundaryPeer:
    """Stand-in receiver for a port whose true peer lives in another shard.

    A boundary port never delivers locally — its packets leave through
    :attr:`OutputPort.remote_receive` and are injected into the owning
    shard at the next lookahead barrier. A local ``receive`` call means
    the shard builder wired a boundary port without its remote hook, so
    fail loudly instead of silently black-holing cross-shard traffic.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def receive(self, packet: Packet) -> None:
        raise SimulationError(
            f"boundary peer {self.name!r} got a local delivery for flow "
            f"{packet.flow_id!r}; cross-shard packets must go through "
            "OutputPort.remote_receive"
        )

    def __repr__(self) -> str:
        return f"BoundaryPeer({self.name!r})"


class OutputPort:
    """Scheduler + transmitter feeding one unidirectional link."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        scheduler: PacketScheduler,
        peer: "object",
        name: str = "",
        buffer_packets: Optional[int] = None,
        max_packet_bytes: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.link = link
        self.scheduler = scheduler
        self.peer = peer  # the receiving Node
        self.name = name
        #: Shared drop-tail buffer across all flows (None = unbounded;
        #: per-flow limits are the scheduler's max_queue).
        self.buffer_packets = buffer_packets
        #: MTU enforcement (None = accept any size). Oversized packets —
        #: the fault injector's malformed variant — are dropped at
        #: ingress with reason ``"oversize"`` rather than poisoning the
        #: scheduler's byte accounting.
        self.max_packet_bytes = max_packet_bytes
        self.busy = False
        self.packets_in = 0
        self.packets_out = 0
        self.bytes_out = 0
        self.drops = 0
        # Transmit-complete event recycling: the port has at most one
        # serialisation in flight, so the same Event object is re-armed
        # per packet (fresh seq — bit-identical schedule order) instead
        # of allocating one per transmission. The packet on the wire
        # rides the port, not the event args.
        self._tx_event = None
        self._in_flight: Optional[Packet] = None
        self.on_transmit: List[TransmitHook] = []
        #: Arrival hooks ``hook(now, packet)`` fired on *every* offered
        #: packet, before any drop decision — the control plane's rate
        #: estimators measure offered (not accepted) load from these.
        self.on_arrival: List[TransmitHook] = []
        #: Cross-shard egress hook: when set, transmit-complete calls
        #: ``remote_receive(arrival_time, packet)`` instead of scheduling
        #: the local propagation event — ``arrival_time`` is exactly the
        #: ``now + link.delay`` the local schedule would have used, so
        #: the receiving shard can replay the arrival bit-identically.
        #: Interception happens at transmit-complete (not arrival) time
        #: on purpose: an arrival landing exactly on the next barrier
        #: must already be in flight at that barrier's exchange.
        self.remote_receive: Optional[Callable[[float, Packet], None]] = None
        #: Optional ingress policer ``policer(packet) -> Optional[str]``:
        #: return a drop-reason string to refuse the packet (the overload
        #: governor demotes best-effort traffic this way), None to accept.
        self.policer: Optional[Callable[[Packet], Optional[str]]] = None
        #: Lifecycle tracer; defaults to the process-wide active one
        #: (usually None — tracing off).
        self.tracer = tracer if tracer is not None else get_tracer()
        # Per-port metrics, resolved once at construction: with the null
        # registry these are shared no-op singletons, so the datapath
        # never branches on "metrics enabled?".
        registry = registry if registry is not None else _active_registry()
        self._wait_hist = registry.histogram(
            "port_queue_wait_s", DELAY_BUCKETS_S, port=name or "?"
        )
        self._tx_bytes = registry.counter("port_tx_bytes", port=name or "?")
        self._drop_count = registry.counter("port_drops", port=name or "?")
        self._fault_malformed = registry.counter(
            "fault_malformed_total", port=name or "?"
        )
        self._fault_unknown = registry.counter(
            "fault_unknown_flow_total", port=name or "?"
        )
        self._fault_link = registry.counter(
            "fault_link_transitions_total", port=name or "?"
        )

    def _drop(self, packet: Packet, reason: str) -> bool:
        self.drops += 1
        self._drop_count.inc()
        if self.tracer is not None:
            self.tracer.emit(
                "drop", self.sim.now, port=self.name,
                flow=packet.flow_id, uid=packet.uid, size=packet.size,
                reason=reason,
            )
        return False

    def enqueue(self, packet: Packet) -> bool:
        """Accept ``packet`` for transmission; False when dropped."""
        now = self.sim.now
        packet.enqueued_at = now
        self.packets_in += 1
        if self.on_arrival:
            for hook in self.on_arrival:
                hook(now, packet)
        if (
            self.max_packet_bytes is not None
            and packet.size > self.max_packet_bytes
        ):
            self._fault_malformed.inc()
            return self._drop(packet, "oversize")
        if self.policer is not None:
            reason = self.policer(packet)
            if reason is not None:
                return self._drop(packet, reason)
        if (
            self.buffer_packets is not None
            and self.scheduler.backlog >= self.buffer_packets
        ):
            return self._drop(packet, "buffer")
        try:
            accepted = self.scheduler.enqueue(packet)
        except UnknownFlowError:
            # A packet for a flow this port has never heard of (the fault
            # injector's other malformed variant, or a race with flow
            # teardown) must not crash the datapath.
            self._fault_unknown.inc()
            return self._drop(packet, "unknown_flow")
        if not accepted:
            return self._drop(packet, "queue_limit")
        if self.tracer is not None:
            self.tracer.emit(
                "enqueue", self.sim.now, port=self.name,
                flow=packet.flow_id, uid=packet.uid, size=packet.size,
                backlog=self.scheduler.backlog,
            )
        if not self.busy and self.link.up:
            self._transmit_next()
        return True

    # -- fault injection: link availability ---------------------------------

    def link_down(self, drop_queued: bool = False) -> int:
        """Take the outgoing link down; returns packets dropped.

        A packet already on the wire finishes serialising (the bits are
        committed), but no new dequeue happens until :meth:`link_up`.
        With ``drop_queued`` the whole queued backlog is drained through
        the scheduler and dropped — the schedulers' own dequeue paths do
        the state surgery, so flow accounting stays consistent.
        """
        if not self.link.up:
            return 0
        self.link.up = False
        self._fault_link.inc()
        dropped = 0
        if drop_queued:
            while True:
                packet = self.scheduler.dequeue()
                if packet is None:
                    break
                self._drop(packet, "link_down")
                dropped += 1
        return dropped

    def link_up(self) -> None:
        """Restore the link and restart the transmit loop if backlogged."""
        if self.link.up:
            return
        self.link.up = True
        self._fault_link.inc()
        if not self.busy and self.scheduler.backlog > 0:
            self._transmit_next()

    def _transmit_next(self) -> None:
        if not self.link.up:
            # Downed link: leave the backlog queued; link_up() restarts
            # the loop.
            self.busy = False
            return
        tracer = self.tracer
        if tracer is None:
            packet = self.scheduler.dequeue()
        else:
            backlog = self.scheduler.backlog
            packet = self.scheduler.dequeue()
            tracer.emit(
                "sched_decision", self.sim.now, port=self.name,
                scheduler=self.scheduler.name, backlog=backlog,
                flow=None if packet is None else packet.flow_id,
            )
        if packet is None:
            self.busy = False
            return
        self.busy = True
        now = self.sim.now
        packet.dequeued_at = now
        self._wait_hist.observe(now - packet.enqueued_at)
        if tracer is not None:
            tracer.emit(
                "dequeue", now, port=self.name, flow=packet.flow_id,
                uid=packet.uid, size=packet.size,
                waited_s=now - packet.enqueued_at,
            )
        self._in_flight = packet
        delay = self.link.serialization_time(packet.size)
        event = self._tx_event
        if event is not None and event._sim is None and not event.cancelled:
            self.sim.reschedule(event, delay)
        else:
            self._tx_event = self.sim.schedule(
                delay, self._transmission_complete
            )

    def _transmission_complete(self) -> None:
        packet = self._in_flight
        self._in_flight = None
        now = self.sim.now
        self.packets_out += 1
        self.bytes_out += packet.size
        self._tx_bytes.inc(packet.size)
        if self.tracer is not None:
            self.tracer.emit(
                "transmit", now, port=self.name, flow=packet.flow_id,
                uid=packet.uid, size=packet.size,
            )
        for hook in self.on_transmit:
            hook(now, packet)
        # Propagation: the packet arrives at the peer delay seconds after
        # the last bit leaves; the line is immediately free for the next.
        remote = self.remote_receive
        if remote is None:
            self.sim.schedule(self.link.delay, self.peer.receive, packet)
        else:
            remote(now + self.link.delay, packet)
        self._transmit_next()

    @property
    def backlog(self) -> int:
        """Packets queued at this port."""
        return self.scheduler.backlog

    @property
    def utilization_bytes(self) -> int:
        """Total bytes transmitted."""
        return self.bytes_out

    def __repr__(self) -> str:
        return (
            f"OutputPort({self.name or '?'}: {self.link!r}, "
            f"sched={type(self.scheduler).__name__}, "
            f"backlog={self.scheduler.backlog})"
        )
