"""Measurement probes: service traces, backlog and throughput sampling.

The fairness indices of :mod:`repro.analysis.fairness` are defined over a
*service trace* — the timestamped sequence of (flow, bytes) transmissions
at one output port. :class:`ServiceTrace` hooks a port's transmit-complete
callback and accumulates exactly that. The sampling monitors poll state on
a fixed period using the simulator's own event queue; because each tick
reschedules the next, they accept a ``horizon`` (absolute stop time) and a
``stop()`` method so an open-ended ``Simulator.run()`` still terminates
once sources go quiet.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Hashable, List, Optional, Tuple

from ..core.packet import Packet
from .engine import Simulator
from .port import OutputPort

__all__ = ["ServiceTrace", "BacklogMonitor", "ThroughputMonitor", "HopTrace"]


class ServiceTrace:
    """Per-port transmission log: ``(completion_time, flow_id, size)``."""

    def __init__(self, port: OutputPort) -> None:
        self.port = port
        self.entries: List[Tuple[float, Hashable, int]] = []
        # Completion timestamps, maintained incrementally alongside
        # ``entries`` (transmit hooks fire in nondecreasing simulation
        # time, so the list is always sorted). Window queries bisect this
        # instead of rebuilding it per call.
        self._times: List[float] = []
        port.on_transmit.append(self._record)

    def _record(self, now: float, packet: Packet) -> None:
        self.entries.append((now, packet.flow_id, packet.size))
        self._times.append(now)

    def flows(self) -> List[Hashable]:
        """Distinct flows observed, in first-seen order."""
        seen = {}
        for _t, fid, _s in self.entries:
            seen.setdefault(fid, None)
        return list(seen)

    def service_curve(self, flow_id: Hashable) -> List[Tuple[float, int]]:
        """Cumulative bytes served to ``flow_id`` as (time, total) steps."""
        total = 0
        curve = []
        for t, fid, size in self.entries:
            if fid == flow_id:
                total += size
                curve.append((t, total))
        return curve

    def service_in_window(
        self, flow_id: Hashable, t0: float, t1: float
    ) -> int:
        """Bytes served to ``flow_id`` with completion time in ``[t0, t1)``.

        O(log n + k) for k entries in the window (the timestamp index is
        maintained on record, not rebuilt per query).
        """
        lo = bisect_left(self._times, t0)
        hi = bisect_right(self._times, t1)
        return sum(
            size
            for t, fid, size in self.entries[lo:hi]
            if fid == flow_id and t0 <= t < t1
        )

    def slot_sequence(self) -> List[Hashable]:
        """Just the flow-id order of transmissions (smoothness analyses)."""
        return [fid for _t, fid, _s in self.entries]

    def __len__(self) -> int:
        return len(self.entries)


class HopTrace:
    """Per-hop latency decomposition for one flow along a port list.

    Subscribes to each port's transmit-complete hook and records, per
    packet (keyed by uid), the completion time at every hop. The
    decomposition then gives, for each hop, the time the packet spent
    from the previous hop's completion (or creation) to this hop's —
    i.e. queueing + serialisation + upstream propagation — which is how
    the end-to-end bounds' per-node terms are checked empirically.
    """

    def __init__(self, ports, flow_id: Hashable) -> None:
        self.ports = list(ports)
        self.flow_id = flow_id
        #: packet uid -> list of per-hop completion times (path order).
        self._times: Dict[int, List[Optional[float]]] = {}
        self._created: Dict[int, float] = {}
        for index, port in enumerate(self.ports):
            port.on_transmit.append(self._make_hook(index))

    def _make_hook(self, index: int):
        def hook(now: float, packet: Packet) -> None:
            if packet.flow_id != self.flow_id:
                return
            times = self._times.get(packet.uid)
            if times is None:
                times = self._times[packet.uid] = [None] * len(self.ports)
                self._created[packet.uid] = packet.created_at
            times[index] = now

        return hook

    def per_hop_delays(self) -> List[List[float]]:
        """For each fully traced packet: per-hop elapsed times (seconds).

        Element ``[k]`` is the time from the previous hop's completion
        (hop 0: from packet creation) to hop ``k``'s completion.
        """
        rows: List[List[float]] = []
        for uid, times in self._times.items():
            if any(t is None for t in times):
                continue  # still in flight
            previous = self._created[uid]
            row = []
            for t in times:
                row.append(t - previous)  # type: ignore[operator]
                previous = t  # type: ignore[assignment]
            rows.append(row)
        return rows

    def worst_per_hop(self) -> List[float]:
        """Max per-hop elapsed time over traced packets (path order)."""
        rows = self.per_hop_delays()
        if not rows:
            return [0.0] * len(self.ports)
        return [max(row[k] for row in rows) for k in range(len(self.ports))]


class _PeriodicSampler:
    """Self-rescheduling sampler with a stop switch and an optional horizon.

    Without either, a sampler keeps one future event in the simulator's
    queue forever, so ``Simulator.run()`` *without* ``until=`` would spin
    on sampling ticks long after the traffic sources went quiet. Passing
    ``horizon`` bounds the sampling to ``[start, horizon]``; calling
    :meth:`stop` cancels the pending tick immediately. Either way the
    event queue drains and an open-ended run terminates.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        start: float,
        horizon: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.sim = sim
        self.interval = interval
        self.horizon = horizon
        self._stopped = False
        self._pending = sim.schedule(start, self._tick)

    def _tick(self) -> None:
        self._pending = None
        if self._stopped:
            return
        self._sample()
        nxt = self.sim.now + self.interval
        if self.horizon is not None and nxt > self.horizon:
            return
        self._pending = self.sim.schedule(self.interval, self._tick)

    def _sample(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def stop(self) -> None:
        """Stop sampling: cancel the pending tick (idempotent)."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    @property
    def stopped(self) -> bool:
        return self._stopped


class BacklogMonitor(_PeriodicSampler):
    """Samples a port's queued-packet count every ``interval`` seconds.

    ``horizon`` (absolute simulation time) bounds the sampling so runs
    without ``until=`` still terminate; ``stop()`` halts it early.
    """

    def __init__(
        self,
        sim: Simulator,
        port: OutputPort,
        interval: float = 0.01,
        *,
        horizon: Optional[float] = None,
    ) -> None:
        self.port = port
        self.samples: List[Tuple[float, int]] = []
        super().__init__(sim, interval, start=0.0, horizon=horizon)

    def _sample(self) -> None:
        self.samples.append((self.sim.now, self.port.backlog))

    @property
    def max_backlog(self) -> int:
        return max((b for _t, b in self.samples), default=0)

    @property
    def mean_backlog(self) -> float:
        if not self.samples:
            return 0.0
        return sum(b for _t, b in self.samples) / len(self.samples)


class ThroughputMonitor(_PeriodicSampler):
    """Per-flow delivered-bytes-per-interval series from a sink registry.

    ``horizon``/``stop()`` bound the self-rescheduling exactly as for
    :class:`BacklogMonitor`.
    """

    def __init__(
        self,
        sim: Simulator,
        sink_registry,
        interval: float = 0.1,
        *,
        horizon: Optional[float] = None,
    ) -> None:
        self.sinks = sink_registry
        self._last: Dict[Hashable, int] = {}
        #: flow_id -> list of (window_end_time, bits_per_second).
        self.series: Dict[Hashable, List[Tuple[float, float]]] = {}
        super().__init__(sim, interval, start=interval, horizon=horizon)

    def _sample(self) -> None:
        now = self.sim.now
        for fid, rec in self.sinks.flows.items():
            prev = self._last.get(fid, 0)
            delta = rec.bytes - prev
            self._last[fid] = rec.bytes
            self.series.setdefault(fid, []).append(
                (now, delta * 8.0 / self.interval)
            )

    def rates(self, flow_id: Hashable) -> List[float]:
        """The bps series for ``flow_id`` (empty if never seen)."""
        return [r for _t, r in self.series.get(flow_id, [])]
