"""Measurement probes: service traces, backlog and throughput sampling.

The fairness indices of :mod:`repro.analysis.fairness` are defined over a
*service trace* — the timestamped sequence of (flow, bytes) transmissions
at one output port. :class:`ServiceTrace` hooks a port's transmit-complete
callback and accumulates exactly that. The sampling monitors poll state on
a fixed period using the simulator's own event queue.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Hashable, List, Optional, Tuple

from ..core.packet import Packet
from .engine import Simulator
from .port import OutputPort

__all__ = ["ServiceTrace", "BacklogMonitor", "ThroughputMonitor", "HopTrace"]


class ServiceTrace:
    """Per-port transmission log: ``(completion_time, flow_id, size)``."""

    def __init__(self, port: OutputPort) -> None:
        self.port = port
        self.entries: List[Tuple[float, Hashable, int]] = []
        port.on_transmit.append(self._record)

    def _record(self, now: float, packet: Packet) -> None:
        self.entries.append((now, packet.flow_id, packet.size))

    def flows(self) -> List[Hashable]:
        """Distinct flows observed, in first-seen order."""
        seen = {}
        for _t, fid, _s in self.entries:
            seen.setdefault(fid, None)
        return list(seen)

    def service_curve(self, flow_id: Hashable) -> List[Tuple[float, int]]:
        """Cumulative bytes served to ``flow_id`` as (time, total) steps."""
        total = 0
        curve = []
        for t, fid, size in self.entries:
            if fid == flow_id:
                total += size
                curve.append((t, total))
        return curve

    def service_in_window(
        self, flow_id: Hashable, t0: float, t1: float
    ) -> int:
        """Bytes served to ``flow_id`` with completion time in ``[t0, t1)``."""
        times = [t for t, _f, _s in self.entries]
        lo = bisect_left(times, t0)
        hi = bisect_right(times, t1)
        return sum(
            size
            for t, fid, size in self.entries[lo:hi]
            if fid == flow_id and t0 <= t < t1
        )

    def slot_sequence(self) -> List[Hashable]:
        """Just the flow-id order of transmissions (smoothness analyses)."""
        return [fid for _t, fid, _s in self.entries]

    def __len__(self) -> int:
        return len(self.entries)


class HopTrace:
    """Per-hop latency decomposition for one flow along a port list.

    Subscribes to each port's transmit-complete hook and records, per
    packet (keyed by uid), the completion time at every hop. The
    decomposition then gives, for each hop, the time the packet spent
    from the previous hop's completion (or creation) to this hop's —
    i.e. queueing + serialisation + upstream propagation — which is how
    the end-to-end bounds' per-node terms are checked empirically.
    """

    def __init__(self, ports, flow_id: Hashable) -> None:
        self.ports = list(ports)
        self.flow_id = flow_id
        #: packet uid -> list of per-hop completion times (path order).
        self._times: Dict[int, List[Optional[float]]] = {}
        self._created: Dict[int, float] = {}
        for index, port in enumerate(self.ports):
            port.on_transmit.append(self._make_hook(index))

    def _make_hook(self, index: int):
        def hook(now: float, packet: Packet) -> None:
            if packet.flow_id != self.flow_id:
                return
            times = self._times.get(packet.uid)
            if times is None:
                times = self._times[packet.uid] = [None] * len(self.ports)
                self._created[packet.uid] = packet.created_at
            times[index] = now

        return hook

    def per_hop_delays(self) -> List[List[float]]:
        """For each fully traced packet: per-hop elapsed times (seconds).

        Element ``[k]`` is the time from the previous hop's completion
        (hop 0: from packet creation) to hop ``k``'s completion.
        """
        rows: List[List[float]] = []
        for uid, times in self._times.items():
            if any(t is None for t in times):
                continue  # still in flight
            previous = self._created[uid]
            row = []
            for t in times:
                row.append(t - previous)  # type: ignore[operator]
                previous = t  # type: ignore[assignment]
            rows.append(row)
        return rows

    def worst_per_hop(self) -> List[float]:
        """Max per-hop elapsed time over traced packets (path order)."""
        rows = self.per_hop_delays()
        if not rows:
            return [0.0] * len(self.ports)
        return [max(row[k] for row in rows) for k in range(len(self.ports))]


class BacklogMonitor:
    """Samples a port's queued-packet count every ``interval`` seconds."""

    def __init__(
        self, sim: Simulator, port: OutputPort, interval: float = 0.01
    ) -> None:
        self.sim = sim
        self.port = port
        self.interval = interval
        self.samples: List[Tuple[float, int]] = []
        sim.schedule(0.0, self._sample)

    def _sample(self) -> None:
        self.samples.append((self.sim.now, self.port.backlog))
        self.sim.schedule(self.interval, self._sample)

    @property
    def max_backlog(self) -> int:
        return max((b for _t, b in self.samples), default=0)

    @property
    def mean_backlog(self) -> float:
        if not self.samples:
            return 0.0
        return sum(b for _t, b in self.samples) / len(self.samples)


class ThroughputMonitor:
    """Per-flow delivered-bytes-per-interval series from a sink registry."""

    def __init__(self, sim: Simulator, sink_registry, interval: float = 0.1) -> None:
        self.sim = sim
        self.sinks = sink_registry
        self.interval = interval
        self._last: Dict[Hashable, int] = {}
        #: flow_id -> list of (window_end_time, bits_per_second).
        self.series: Dict[Hashable, List[Tuple[float, float]]] = {}
        sim.schedule(interval, self._sample)

    def _sample(self) -> None:
        now = self.sim.now
        for fid, rec in self.sinks.flows.items():
            prev = self._last.get(fid, 0)
            delta = rec.bytes - prev
            self._last[fid] = rec.bytes
            self.series.setdefault(fid, []).append(
                (now, delta * 8.0 / self.interval)
            )
        self.sim.schedule(self.interval, self._sample)

    def rates(self, flow_id: Hashable) -> List[float]:
        """The bps series for ``flow_id`` (empty if never seen)."""
        return [r for _t, r in self.series.get(flow_id, [])]
