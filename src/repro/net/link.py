"""Point-to-point link parameters.

A :class:`Link` is a unidirectional transmission resource: a serialisation
rate in bits/s and a propagation delay in seconds, exactly ns-2's duplex
link halves. The queueing/scheduling happens in the upstream
:class:`~repro.net.port.OutputPort`; the link itself only converts packet
sizes to transmission times.
"""

from __future__ import annotations

from ..core.errors import CapacityError

__all__ = ["Link"]


class Link:
    """Unidirectional link: ``rate_bps`` bits/s, ``delay`` seconds.

    ``up`` models link availability for fault injection: a downed link
    stops the upstream port's transmit loop (queued packets wait or are
    dropped per the port's policy) until the link comes back up.
    """

    __slots__ = ("rate_bps", "delay", "up", "boundary")

    def __init__(
        self, rate_bps: float, delay: float = 0.0, *, boundary: bool = False
    ) -> None:
        if rate_bps <= 0:
            raise CapacityError(f"link rate must be positive, got {rate_bps}")
        if delay < 0:
            raise CapacityError(f"propagation delay must be >= 0, got {delay}")
        if boundary and delay <= 0:
            # The sharded engine's conservative window is bounded by the
            # smallest boundary delay; a zero-delay boundary link would
            # make every window empty.
            raise CapacityError(
                "a cross-shard (boundary) link needs a positive "
                f"propagation delay, got {delay}"
            )
        self.rate_bps = float(rate_bps)
        self.delay = float(delay)
        self.up = True
        #: True when this link direction crosses a shard boundary (set by
        #: the shard builder; the propagation leg then runs in the peer
        #: shard's simulator rather than this one).
        self.boundary = boundary

    def serialization_time(self, size_bytes: int) -> float:
        """Seconds needed to clock ``size_bytes`` onto the wire."""
        return size_bytes * 8.0 / self.rate_bps

    def __repr__(self) -> str:
        state = "" if self.up else ", DOWN"
        return (
            f"Link(rate={self.rate_bps / 1e6:g}Mb/s, "
            f"delay={self.delay * 1e3:g}ms{state})"
        )
