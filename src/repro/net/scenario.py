"""The Network builder: topology + schedulers + flows + sources in one place.

This is the ns-2 "Tcl script" replacement. Typical use::

    net = Network(default_scheduler="srr")
    net.add_node("h0"); net.add_node("r0"); net.add_node("d0")
    net.add_link("h0", "r0", rate_bps=100e6, delay=0.001)
    net.add_link("r0", "d0", rate_bps=10e6, delay=0.010)
    net.add_flow("f1", "h0", "d0", weight=2)
    net.attach_source("f1", CBRSource(rate_bps=32_000, packet_size=200))
    net.run(until=30.0)
    delays = net.sinks.delays("f1")

Scheduler selection: a registry name (plus kwargs) per network, optionally
overridden per link. Each *direction* of each link gets its own scheduler
instance. Flows are registered (flow id + weight) at every output port on
their path, exactly as a signalling protocol/CAC would install state.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Tuple

from ..core.errors import ConfigurationError, DuplicateFlowError
from ..core.interfaces import PacketScheduler
from ..core.packet import Packet
from ..schedulers.registry import create_scheduler
from .engine import Simulator
from .link import Link
from .node import Node
from .port import OutputPort
from .routing import compute_next_hops, shortest_path
from .shaping import TokenBucketShaper
from .sinks import SinkRegistry
from .sources import TrafficSource

__all__ = ["FlowSpec", "Network"]

SchedulerSpec = Tuple[str, Dict]


class FlowSpec:
    """Bookkeeping for one registered flow."""

    __slots__ = ("flow_id", "src", "dst", "weight", "path", "ports", "sources", "shaper")

    def __init__(
        self,
        flow_id: Hashable,
        src: str,
        dst: str,
        weight: float,
        path: List[str],
        ports: List[OutputPort],
    ) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.weight = weight
        self.path = path
        self.ports = ports
        self.sources: List[TrafficSource] = []
        self.shaper: Optional[TokenBucketShaper] = None


class Network:
    """A simulated packet network with pluggable per-port schedulers."""

    def __init__(
        self,
        default_scheduler: str = "drr",
        default_scheduler_kwargs: Optional[Dict] = None,
        *,
        engine: Optional[str] = None,
    ) -> None:
        self.sim = Simulator(queue=engine)
        self.nodes: Dict[str, Node] = {}
        self.adjacency: Dict[str, List[Tuple[str, float]]] = {}
        self.sinks = SinkRegistry(self.sim)
        self.default_scheduler = default_scheduler
        self.default_scheduler_kwargs = dict(default_scheduler_kwargs or {})
        self.flows: Dict[Hashable, FlowSpec] = {}
        self._routes_current = False
        self._seq: Dict[Hashable, int] = {}

    # -- topology ----------------------------------------------------------

    def add_node(self, name: str) -> Node:
        """Create a node (host or router — same thing here)."""
        if name in self.nodes:
            raise ConfigurationError(f"node {name!r} already exists")
        node = Node(name, deliver=self.sinks.record)
        self.nodes[name] = node
        self.adjacency[name] = []
        return node

    def add_link(
        self,
        a: str,
        b: str,
        rate_bps: float,
        delay: float = 0.0,
        *,
        scheduler: Optional[str] = None,
        scheduler_kwargs: Optional[Dict] = None,
        cost: float = 1.0,
        bidirectional: bool = True,
        buffer_packets: Optional[int] = None,
    ) -> None:
        """Connect ``a`` and ``b``; each direction gets its own scheduler.

        ``scheduler``/``scheduler_kwargs`` override the network default
        for this link (e.g. a G-3 bottleneck with an explicit capacity);
        ``buffer_packets`` caps the shared drop-tail buffer per direction.
        """
        self._add_direction(a, b, rate_bps, delay, scheduler,
                            scheduler_kwargs, cost, buffer_packets)
        if bidirectional:
            self._add_direction(b, a, rate_bps, delay, scheduler,
                                scheduler_kwargs, cost, buffer_packets)

    def _add_direction(
        self,
        src: str,
        dst: str,
        rate_bps: float,
        delay: float,
        scheduler: Optional[str],
        scheduler_kwargs: Optional[Dict],
        cost: float,
        buffer_packets: Optional[int] = None,
    ) -> None:
        for name in (src, dst):
            if name not in self.nodes:
                raise ConfigurationError(f"unknown node {name!r}")
        if dst in self.nodes[src].ports:
            raise ConfigurationError(f"link {src!r}->{dst!r} already exists")
        sched = self._make_scheduler(scheduler, scheduler_kwargs)
        port = OutputPort(
            self.sim,
            Link(rate_bps, delay),
            sched,
            self.nodes[dst],
            name=f"{src}->{dst}",
            buffer_packets=buffer_packets,
        )
        self.nodes[src].ports[dst] = port
        self.adjacency[src].append((dst, cost))
        self._routes_current = False

    def _make_scheduler(
        self, name: Optional[str], kwargs: Optional[Dict]
    ) -> PacketScheduler:
        if name is None:
            name = self.default_scheduler
            merged = dict(self.default_scheduler_kwargs)
        else:
            merged = {}
        merged.update(kwargs or {})
        if callable(name):
            # A factory (e.g. a pre-configured HierarchicalScheduler
            # builder) instead of a registry name.
            return name(**merged)
        return create_scheduler(name, **merged)

    def port(self, src: str, dst: str) -> OutputPort:
        """The output port of the ``src -> dst`` link direction."""
        try:
            return self.nodes[src].ports[dst]
        except KeyError:
            raise ConfigurationError(f"no link {src!r}->{dst!r}") from None

    def compute_routes(self) -> None:
        """(Re)build every node's next-hop table."""
        tables = compute_next_hops(self.adjacency)
        for name, node in self.nodes.items():
            node.routes = tables.get(name, {})
        self._routes_current = True

    # -- flows -------------------------------------------------------------

    def add_flow(
        self,
        flow_id: Hashable,
        src: str,
        dst: str,
        weight: float = 1,
        *,
        max_queue: Optional[int] = None,
        flow_kwargs: Optional[Dict] = None,
    ) -> FlowSpec:
        """Register a flow on every output port along its route.

        ``weight`` is passed to each port's scheduler verbatim — integer
        slot/weight units for the round-robin family, any positive real
        for the timestamp family, 0 for best-effort under G-3/RRR.
        ``flow_kwargs`` are forwarded to every port scheduler's
        ``add_flow`` (e.g. ``{"class_id": "voice"}`` for hierarchical
        ports).
        """
        if flow_id in self.flows:
            raise DuplicateFlowError(flow_id)
        if not self._routes_current:
            self.compute_routes()
        path = shortest_path(self.adjacency, src, dst)
        ports: List[OutputPort] = []
        extra = flow_kwargs or {}
        try:
            for here, nxt in zip(path, path[1:]):
                port = self.nodes[here].ports[nxt]
                port_weight = weight
                if weight == 0 and not port.scheduler.supports_zero_weight:
                    # Best-effort class: schedulers without an explicit f0
                    # class carry the flow at minimal weight instead (work
                    # conservation hands it the residual bandwidth anyway).
                    port_weight = 1
                try:
                    port.scheduler.add_flow(
                        flow_id, port_weight, max_queue=max_queue, **extra
                    )
                except TypeError:
                    # This port's discipline does not take the extra
                    # kwargs (e.g. class_id on a FIFO access port):
                    # register plainly.
                    port.scheduler.add_flow(
                        flow_id, port_weight, max_queue=max_queue
                    )
                ports.append(port)
        except Exception:
            # Roll back the partial install: a flow rejected at port k
            # must not stay registered at ports 0..k-1, or a later
            # re-add/release would leak or double-count state there.
            for port in ports:
                if port.scheduler.has_flow(flow_id):
                    port.scheduler.remove_flow(flow_id)
            raise
        spec = FlowSpec(flow_id, src, dst, weight, path, ports)
        self.flows[flow_id] = spec
        self._seq[flow_id] = 0
        return spec

    def remove_flow(self, flow_id: Hashable) -> None:
        """Tear a flow's state out of every port on its path.

        Attached sources are stopped first so a removed flow cannot keep
        injecting packets that every downstream port would then reject as
        unknown.
        """
        spec = self.flows.pop(flow_id, None)
        if spec is None:
            raise ConfigurationError(f"unknown flow {flow_id!r}")
        for source in spec.sources:
            if hasattr(source, "stop_at"):
                source.stop_at = self.sim.now
        for port in spec.ports:
            if port.scheduler.has_flow(flow_id):
                port.scheduler.remove_flow(flow_id)

    # -- fault injection ----------------------------------------------------

    def set_link_state(
        self, a: str, b: str, *, up: bool, drop_queued: bool = False
    ) -> int:
        """Take the ``a -> b`` direction down or back up.

        Returns packets dropped (nonzero only for down + ``drop_queued``).
        """
        port = self.port(a, b)
        if up:
            port.link_up()
            return 0
        return port.link_down(drop_queued=drop_queued)

    def attach_source(
        self,
        flow_id: Hashable,
        source: TrafficSource,
        *,
        shaper: Optional[TokenBucketShaper] = None,
    ) -> TrafficSource:
        """Bind a traffic source (optionally behind a leaky bucket) to a
        flow and schedule its start."""
        spec = self.flows.get(flow_id)
        if spec is None:
            raise ConfigurationError(
                f"add_flow({flow_id!r}, ...) before attaching a source"
            )
        inject = self.nodes[spec.src].inject
        if shaper is not None:
            shaper.bind(self.sim, inject)
            spec.shaper = shaper
            deliver: Callable[[Packet], None] = shaper.offer
        else:
            deliver = inject

        def emit(size: int) -> None:
            seq = self._seq[flow_id]
            self._seq[flow_id] = seq + 1
            packet = Packet(
                flow_id,
                size,
                created_at=self.sim.now,
                seq=seq,
                src=spec.src,
                dst=spec.dst,
            )
            deliver(packet)

        source.bind(self.sim, emit)
        if getattr(source, "wants_feedback", False):
            source.bind_feedback(flow_id, self.sinks)
        source.start()
        spec.sources.append(source)
        return source

    # -- execution ---------------------------------------------------------

    def run(self, until: float) -> int:
        """Advance the simulation to ``until`` seconds."""
        if not self._routes_current:
            self.compute_routes()
        return self.sim.run(until=until)

    def engine_stats(self) -> Dict[str, float]:
        """The simulator's observability counters (see ``Simulator.stats``)."""
        return self.sim.stats()

    def total_backlog(self) -> int:
        """Packets queued across every port (conservation checks)."""
        return sum(
            port.backlog
            for node in self.nodes.values()
            for port in node.ports.values()
        )

    def __repr__(self) -> str:
        return (
            f"Network(nodes={len(self.nodes)}, flows={len(self.flows)}, "
            f"t={self.sim.now:.3f}s)"
        )
