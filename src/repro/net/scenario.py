"""The Network builder: topology + schedulers + flows + sources in one place.

This is the ns-2 "Tcl script" replacement. Typical use::

    net = Network(default_scheduler="srr")
    net.add_node("h0"); net.add_node("r0"); net.add_node("d0")
    net.add_link("h0", "r0", rate_bps=100e6, delay=0.001)
    net.add_link("r0", "d0", rate_bps=10e6, delay=0.010)
    net.add_flow("f1", "h0", "d0", weight=2)
    net.attach_source("f1", CBRSource(rate_bps=32_000, packet_size=200))
    net.run(until=30.0)
    delays = net.sinks.delays("f1")

Scheduler selection: a registry name (plus kwargs) per network, optionally
overridden per link. Each *direction* of each link gets its own scheduler
instance. Flows are registered (flow id + weight) at every output port on
their path, exactly as a signalling protocol/CAC would install state.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Tuple

from ..core.errors import ConfigurationError, DuplicateFlowError
from ..core.interfaces import PacketScheduler
from ..core.packet import Packet
from ..schedulers.registry import create_scheduler
from ..shard.topology import (
    FlowDecl,
    LinkSpec,
    NodeSpec,
    SourceDecl,
    TopologySpec,
)
from .engine import Simulator
from .link import Link
from .node import Node
from .port import OutputPort
from .routing import compute_next_hops, shortest_path
from .shaping import TokenBucketShaper
from .sinks import SinkRegistry
from .sources import TrafficSource

__all__ = [
    "FlowSpec",
    "Network",
    "dumbbell_of_dumbbells",
    "fat_tree",
]

SchedulerSpec = Tuple[str, Dict]


class FlowSpec:
    """Bookkeeping for one registered flow."""

    __slots__ = ("flow_id", "src", "dst", "weight", "path", "ports", "sources", "shaper")

    def __init__(
        self,
        flow_id: Hashable,
        src: str,
        dst: str,
        weight: float,
        path: List[str],
        ports: List[OutputPort],
    ) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.weight = weight
        self.path = path
        self.ports = ports
        self.sources: List[TrafficSource] = []
        self.shaper: Optional[TokenBucketShaper] = None


class Network:
    """A simulated packet network with pluggable per-port schedulers."""

    def __init__(
        self,
        default_scheduler: str = "drr",
        default_scheduler_kwargs: Optional[Dict] = None,
        *,
        engine: Optional[str] = None,
    ) -> None:
        self.sim = Simulator(queue=engine)
        self.nodes: Dict[str, Node] = {}
        self.adjacency: Dict[str, List[Tuple[str, float]]] = {}
        self.sinks = SinkRegistry(self.sim)
        self.default_scheduler = default_scheduler
        self.default_scheduler_kwargs = dict(default_scheduler_kwargs or {})
        self.flows: Dict[Hashable, FlowSpec] = {}
        self._routes_current = False
        self._seq: Dict[Hashable, int] = {}

    # -- topology ----------------------------------------------------------

    def add_node(self, name: str) -> Node:
        """Create a node (host or router — same thing here)."""
        if name in self.nodes:
            raise ConfigurationError(f"node {name!r} already exists")
        node = Node(name, deliver=self.sinks.record)
        self.nodes[name] = node
        self.adjacency[name] = []
        return node

    def add_link(
        self,
        a: str,
        b: str,
        rate_bps: float,
        delay: float = 0.0,
        *,
        scheduler: Optional[str] = None,
        scheduler_kwargs: Optional[Dict] = None,
        cost: float = 1.0,
        bidirectional: bool = True,
        buffer_packets: Optional[int] = None,
    ) -> None:
        """Connect ``a`` and ``b``; each direction gets its own scheduler.

        ``scheduler``/``scheduler_kwargs`` override the network default
        for this link (e.g. a G-3 bottleneck with an explicit capacity);
        ``buffer_packets`` caps the shared drop-tail buffer per direction.
        """
        self._add_direction(a, b, rate_bps, delay, scheduler,
                            scheduler_kwargs, cost, buffer_packets)
        if bidirectional:
            self._add_direction(b, a, rate_bps, delay, scheduler,
                                scheduler_kwargs, cost, buffer_packets)

    def _add_direction(
        self,
        src: str,
        dst: str,
        rate_bps: float,
        delay: float,
        scheduler: Optional[str],
        scheduler_kwargs: Optional[Dict],
        cost: float,
        buffer_packets: Optional[int] = None,
    ) -> None:
        for name in (src, dst):
            if name not in self.nodes:
                raise ConfigurationError(f"unknown node {name!r}")
        if dst in self.nodes[src].ports:
            raise ConfigurationError(f"link {src!r}->{dst!r} already exists")
        sched = self._make_scheduler(scheduler, scheduler_kwargs)
        port = OutputPort(
            self.sim,
            Link(rate_bps, delay),
            sched,
            self.nodes[dst],
            name=f"{src}->{dst}",
            buffer_packets=buffer_packets,
        )
        self.nodes[src].ports[dst] = port
        self.adjacency[src].append((dst, cost))
        self._routes_current = False

    def _make_scheduler(
        self, name: Optional[str], kwargs: Optional[Dict]
    ) -> PacketScheduler:
        if name is None:
            name = self.default_scheduler
            merged = dict(self.default_scheduler_kwargs)
        else:
            merged = {}
        merged.update(kwargs or {})
        if callable(name):
            # A factory (e.g. a pre-configured HierarchicalScheduler
            # builder) instead of a registry name.
            return name(**merged)
        return create_scheduler(name, **merged)

    def port(self, src: str, dst: str) -> OutputPort:
        """The output port of the ``src -> dst`` link direction."""
        try:
            return self.nodes[src].ports[dst]
        except KeyError:
            raise ConfigurationError(f"no link {src!r}->{dst!r}") from None

    def compute_routes(self) -> None:
        """(Re)build every node's next-hop table."""
        tables = compute_next_hops(self.adjacency)
        for name, node in self.nodes.items():
            node.routes = tables.get(name, {})
        self._routes_current = True

    # -- flows -------------------------------------------------------------

    def add_flow(
        self,
        flow_id: Hashable,
        src: str,
        dst: str,
        weight: float = 1,
        *,
        max_queue: Optional[int] = None,
        flow_kwargs: Optional[Dict] = None,
    ) -> FlowSpec:
        """Register a flow on every output port along its route.

        ``weight`` is passed to each port's scheduler verbatim — integer
        slot/weight units for the round-robin family, any positive real
        for the timestamp family, 0 for best-effort under G-3/RRR.
        ``flow_kwargs`` are forwarded to every port scheduler's
        ``add_flow`` (e.g. ``{"class_id": "voice"}`` for hierarchical
        ports).
        """
        if flow_id in self.flows:
            raise DuplicateFlowError(flow_id)
        if not self._routes_current:
            self.compute_routes()
        path = shortest_path(self.adjacency, src, dst)
        ports: List[OutputPort] = []
        extra = flow_kwargs or {}
        try:
            for port in self._flow_hop_ports(path):
                port_weight = weight
                if weight == 0 and not port.scheduler.supports_zero_weight:
                    # Best-effort class: schedulers without an explicit f0
                    # class carry the flow at minimal weight instead (work
                    # conservation hands it the residual bandwidth anyway).
                    port_weight = 1
                try:
                    port.scheduler.add_flow(
                        flow_id, port_weight, max_queue=max_queue, **extra
                    )
                except TypeError:
                    # This port's discipline does not take the extra
                    # kwargs (e.g. class_id on a FIFO access port):
                    # register plainly.
                    port.scheduler.add_flow(
                        flow_id, port_weight, max_queue=max_queue
                    )
                ports.append(port)
        except Exception:
            # Roll back the partial install: a flow rejected at port k
            # must not stay registered at ports 0..k-1, or a later
            # re-add/release would leak or double-count state there.
            for port in ports:
                if port.scheduler.has_flow(flow_id):
                    port.scheduler.remove_flow(flow_id)
            raise
        spec = FlowSpec(flow_id, src, dst, weight, path, ports)
        self.flows[flow_id] = spec
        self._seq[flow_id] = 0
        return spec

    def _flow_hop_ports(self, path: List[str]) -> List[OutputPort]:
        """The output ports a flow on ``path`` registers at — every hop.

        The sharded builder (:class:`repro.shard.build.ShardNetwork`)
        overrides this to the hops whose transmitting node it owns, so
        ``add_flow`` keeps one copy of the install/rollback semantics.
        """
        return [
            self.nodes[here].ports[nxt]
            for here, nxt in zip(path, path[1:])
        ]

    def remove_flow(self, flow_id: Hashable) -> None:
        """Tear a flow's state out of every port on its path.

        Attached sources are stopped first so a removed flow cannot keep
        injecting packets that every downstream port would then reject as
        unknown.
        """
        spec = self.flows.pop(flow_id, None)
        if spec is None:
            raise ConfigurationError(f"unknown flow {flow_id!r}")
        for source in spec.sources:
            if hasattr(source, "stop_at"):
                source.stop_at = self.sim.now
        for port in spec.ports:
            if port.scheduler.has_flow(flow_id):
                port.scheduler.remove_flow(flow_id)

    # -- fault injection ----------------------------------------------------

    def set_link_state(
        self, a: str, b: str, *, up: bool, drop_queued: bool = False
    ) -> int:
        """Take the ``a -> b`` direction down or back up.

        Returns packets dropped (nonzero only for down + ``drop_queued``).
        """
        port = self.port(a, b)
        if up:
            port.link_up()
            return 0
        return port.link_down(drop_queued=drop_queued)

    def attach_source(
        self,
        flow_id: Hashable,
        source: TrafficSource,
        *,
        shaper: Optional[TokenBucketShaper] = None,
    ) -> TrafficSource:
        """Bind a traffic source (optionally behind a leaky bucket) to a
        flow and schedule its start."""
        spec = self.flows.get(flow_id)
        if spec is None:
            raise ConfigurationError(
                f"add_flow({flow_id!r}, ...) before attaching a source"
            )
        inject = self.nodes[spec.src].inject
        if shaper is not None:
            shaper.bind(self.sim, inject)
            spec.shaper = shaper
            deliver: Callable[[Packet], None] = shaper.offer
        else:
            deliver = inject

        def emit(size: int) -> None:
            seq = self._seq[flow_id]
            self._seq[flow_id] = seq + 1
            packet = Packet(
                flow_id,
                size,
                created_at=self.sim.now,
                seq=seq,
                src=spec.src,
                dst=spec.dst,
            )
            deliver(packet)

        source.bind(self.sim, emit)
        if getattr(source, "wants_feedback", False):
            source.bind_feedback(flow_id, self.sinks)
        source.start()
        spec.sources.append(source)
        return source

    # -- execution ---------------------------------------------------------

    def run(self, until: float) -> int:
        """Advance the simulation to ``until`` seconds."""
        if not self._routes_current:
            self.compute_routes()
        return self.sim.run(until=until)

    def engine_stats(self) -> Dict[str, float]:
        """The simulator's observability counters (see ``Simulator.stats``)."""
        return self.sim.stats()

    def total_backlog(self) -> int:
        """Packets queued across every port (conservation checks)."""
        return sum(
            port.backlog
            for node in self.nodes.values()
            for port in node.ports.values()
        )

    def __repr__(self) -> str:
        return (
            f"Network(nodes={len(self.nodes)}, flows={len(self.flows)}, "
            f"t={self.sim.now:.3f}s)"
        )


# ---------------------------------------------------------------------------
# Multi-hop topology generators (TopologySpec producers)
# ---------------------------------------------------------------------------
#
# These return pure-data TopologySpec values (repro.shard.topology), not
# live Networks: the same spec drives the single-process reference build
# and every shard worker's slice (repro.shard.build), which is what makes
# the sharded-vs-single digest equivalence well-defined. Group labels
# follow the "router group" partition unit: everything hanging off one
# router pair (or one fat-tree pod) shares a group, so intra-group links
# never cross a shard boundary.
#
# Tie hygiene: bit-identical sharding needs cross-boundary event-time
# *ties* to be absent (see docs/sharding.md#determinism) — two packets
# from different shards landing on one port at the same instant would be
# ordered by engine seq, which sharding re-allocates. Both generators
# therefore stagger per-flow CBR rates and start offsets by flow index,
# so no two flows share an emission grid.


def _cbr_decl(
    flow_id: str, flow_index: int, rate_bps: float, packet_size: int
) -> SourceDecl:
    """A CBR source whose rate and start offset are unique per flow.

    Pairwise-distinct rates (linear in the flow index) plus staggered
    starts keep any two flows' emission instants from coinciding — the
    tie-freedom the sharded engine's bit-identical digests rest on. The
    increment is small enough that even a 512-flow fat-tree stays inside
    aggregate capacity (max multiplier ~1.7x at index 511).
    """
    rate = rate_bps * (1.0 + 0.00131 * flow_index)
    start = 0.00173 * (flow_index + 1)
    return SourceDecl(
        flow_id=flow_id,
        kind="cbr",
        params=(
            ("rate_bps", rate),
            ("packet_size", packet_size),
            ("start_at", start),
        ),
    )


def dumbbell_of_dumbbells(
    groups: int = 2,
    hosts_per_group: int = 2,
    *,
    scheduler: str = "srr",
    access_bps: float = 20e6,
    bottleneck_bps: float = 2e6,
    trunk_bps: float = 10e6,
    local_delay: float = 0.0003,
    bottleneck_delay: float = 0.001,
    trunk_delay: float = 0.004,
    rate_bps: float = 96_000.0,
    packet_size: int = 200,
) -> TopologySpec:
    """A chain of dumbbells: one classic dumbbell per router group.

    Group ``g`` is hosts ``g{g}h*`` -> router ``g{g}L`` -> bottleneck ->
    router ``g{g}R`` -> sinks ``g{g}d*``; trunk links ``g{g}R -- g{g+1}L``
    chain the groups. Trunks carry slightly distinct delays (the minimum,
    ``trunk_delay``, is the lookahead window) so boundary-latency
    diversity is exercised. Each host drives one intra-group flow and one
    flow into the next group (the last group's wraps back across the
    whole chain).
    """
    if groups < 1 or hosts_per_group < 1:
        raise ConfigurationError(
            "need at least one group and one host per group"
        )
    nodes: List[NodeSpec] = []
    links: List[LinkSpec] = []
    flows: List[FlowDecl] = []
    sources: List[SourceDecl] = []
    for g in range(groups):
        nodes.append(NodeSpec(f"g{g}L", group=g))
        nodes.append(NodeSpec(f"g{g}R", group=g))
        links.append(LinkSpec(
            f"g{g}L", f"g{g}R", rate_bps=bottleneck_bps,
            delay=bottleneck_delay,
        ))
        for i in range(hosts_per_group):
            nodes.append(NodeSpec(f"g{g}h{i}", group=g))
            nodes.append(NodeSpec(f"g{g}d{i}", group=g))
            links.append(LinkSpec(
                f"g{g}h{i}", f"g{g}L", rate_bps=access_bps,
                delay=local_delay,
            ))
            links.append(LinkSpec(
                f"g{g}R", f"g{g}d{i}", rate_bps=access_bps,
                delay=local_delay,
            ))
    for g in range(groups - 1):
        links.append(LinkSpec(
            f"g{g}R", f"g{g + 1}L", rate_bps=trunk_bps,
            delay=trunk_delay * (1.0 + g / 8.0),
        ))
    index = 0
    for g in range(groups):
        for i in range(hosts_per_group):
            local = FlowDecl(
                f"fg{g}l{i}", f"g{g}h{i}", f"g{g}d{i}", weight=i + 1
            )
            flows.append(local)
            sources.append(
                _cbr_decl(local.flow_id, index, rate_bps, packet_size)
            )
            index += 1
            if groups > 1:
                cross = FlowDecl(
                    f"fg{g}x{i}", f"g{g}h{i}",
                    f"g{(g + 1) % groups}d{i}", weight=i + 1,
                )
                flows.append(cross)
                sources.append(
                    _cbr_decl(cross.flow_id, index, rate_bps, packet_size)
                )
                index += 1
    return TopologySpec(
        name=f"dumbbell2[g{groups}xh{hosts_per_group}]",
        nodes=tuple(nodes),
        links=tuple(links),
        flows=tuple(flows),
        sources=tuple(sources),
        default_scheduler=scheduler,
    )


def fat_tree(
    k: int = 4,
    *,
    scheduler: str = "srr",
    host_bps: float = 40e6,
    edge_bps: float = 40e6,
    core_bps: float = 20e6,
    host_delay: float = 0.0002,
    agg_delay: float = 0.0005,
    core_delay: float = 0.002,
    rate_bps: float = 128_000.0,
    packet_size: int = 200,
    flows_per_host: int = 1,
) -> TopologySpec:
    """A k-ary fat-tree: k pods of (k/2 edge + k/2 agg) switches,
    (k/2)^2 cores, k^3/4 hosts.

    Pod ``p`` is router group ``p``; core ``x`` joins group ``x % k``
    (round-robin), so at ``--shards k`` every pod is a shard and the only
    boundary links are agg<->core — all at ``core_delay``, which is
    therefore the lookahead window. Every host sends ``flows_per_host``
    flows to its positional mirror in the following pods.
    """
    if k < 2 or k % 2:
        raise ConfigurationError(f"fat-tree arity must be even >= 2, got {k}")
    if not 1 <= flows_per_host <= k - 1:
        raise ConfigurationError(
            f"flows_per_host must be in 1..{k - 1}, got {flows_per_host}"
        )
    half = k // 2
    nodes: List[NodeSpec] = []
    links: List[LinkSpec] = []
    for p in range(k):
        for j in range(half):
            nodes.append(NodeSpec(f"p{p}e{j}", group=p))
            nodes.append(NodeSpec(f"p{p}a{j}", group=p))
            for m in range(half):
                nodes.append(NodeSpec(f"p{p}e{j}h{m}", group=p))
    for x in range(half * half):
        nodes.append(NodeSpec(f"c{x}", group=x % k))
    for p in range(k):
        for j in range(half):
            for m in range(half):
                links.append(LinkSpec(
                    f"p{p}e{j}h{m}", f"p{p}e{j}", rate_bps=host_bps,
                    delay=host_delay,
                ))
            for jj in range(half):
                links.append(LinkSpec(
                    f"p{p}e{j}", f"p{p}a{jj}", rate_bps=edge_bps,
                    delay=agg_delay,
                ))
            for r in range(half):
                links.append(LinkSpec(
                    f"p{p}a{j}", f"c{j * half + r}", rate_bps=core_bps,
                    delay=core_delay,
                ))
    flows: List[FlowDecl] = []
    sources: List[SourceDecl] = []
    index = 0
    for p in range(k):
        for j in range(half):
            for m in range(half):
                for f in range(flows_per_host):
                    q = (p + 1 + f) % k
                    flow = FlowDecl(
                        f"f_p{p}e{j}h{m}_q{q}",
                        f"p{p}e{j}h{m}", f"p{q}e{j}h{m}",
                        weight=1 + (j + m) % 3,
                    )
                    flows.append(flow)
                    sources.append(_cbr_decl(
                        flow.flow_id, index, rate_bps, packet_size
                    ))
                    index += 1
    return TopologySpec(
        name=f"fat_tree[k{k}]",
        nodes=tuple(nodes),
        links=tuple(links),
        flows=tuple(flows),
        sources=tuple(sources),
        default_scheduler=scheduler,
    )
