"""Pluggable event-queue backends for the simulation engine.

The :class:`~repro.net.engine.Simulator` hot loop is one queue pop per
event, so the queue's constant factors dominate every experiment's wall
time. Two interchangeable backends are provided:

:class:`HeapQueue`
    The seed behaviour: a binary heap (:mod:`heapq`) of
    :class:`~repro.net.engine.Event` objects. O(log n) per operation,
    and — the real cost in CPython — every sift comparison is a Python
    ``Event.__lt__`` call.

:class:`CalendarQueue`
    The default: a calendar queue in the spirit of Brown's O(1) priority
    queue (CACM 1988), the structure ns-2 itself uses for its event
    list — the event-engine analogue of the paper's O(1) scheduling
    story. Events are hashed by time into width-``w`` buckets ("days");
    the current bucket is sorted once (a C-level sort of plain tuples)
    and drained by index, so the steady-state cost per event is one list
    append plus an amortised share of one C sort — no per-comparison
    Python calls at all. The bucket width adapts automatically to the
    observed event density (see below).

Determinism contract
--------------------
Both backends dequeue in exactly ``(time, seq)`` order: earlier times
first, and ties broken by scheduling order. The equivalence is
property-tested (random times, ties, cancellations, mid-run inserts) and
asserted end-to-end: experiment artifacts are bit-identical under
``--engine heap`` and ``--engine calendar``.

Calendar internals
------------------
Buckets are keyed by *epoch* ``int(time / width)`` in a dict, with a
small int-heap of occupied epochs, so sparse regions of the timeline
cost nothing (no empty-bucket scan, unlike the classic ring layout).
``pop`` drains a sorted "near" list (the promoted current epoch) by
index; events scheduled into the current epoch are placed by
``bisect.insort`` on plain ``(time, seq, event)`` tuples. Because float
division by a positive width is monotone, epoch assignment preserves
time order exactly, so the promoted minimum epoch always holds the
global minimum event.

Resizing: when a promoted bucket is oversized the width is recomputed
from that bucket's observed event density (one rebuild instead of
repeated halving); a long streak of near-empty promotions doubles the
width. Rebuilds only happen between epochs (the near list empty), which
is what keeps the near/far ordering invariant trivially true.
"""

from __future__ import annotations

import heapq
import os
from bisect import insort
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from .engine import Event

__all__ = [
    "QUEUE_KINDS",
    "DEFAULT_KIND",
    "ENGINE_ENV_VAR",
    "HeapQueue",
    "CalendarQueue",
    "make_queue",
    "default_kind",
]

#: Environment variable consulted for the process-default backend. Set by
#: the harness (``--engine``) before sweep pools spawn, so pool workers
#: build their Simulators on the same backend as the parent.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: The fast backend is the default; ``heap`` is the seed behaviour.
DEFAULT_KIND = "calendar"

#: Epoch used for times where ``int(time / width)`` overflows (inf). Must
#: sort after every finite epoch: the largest achievable one is
#: max_float / min_subnormal ~= 3.6e631 < 2^2100, so 2^2200 is safely
#: beyond it for any positive width.
_FAR_EPOCH = 1 << 2200


def default_kind() -> str:
    """The process-default backend kind (``REPRO_ENGINE`` or calendar)."""
    kind = os.environ.get(ENGINE_ENV_VAR, DEFAULT_KIND)
    if kind not in QUEUE_KINDS:
        raise ConfigurationError(
            f"{ENGINE_ENV_VAR}={kind!r} is not a queue kind; "
            f"choose from {sorted(QUEUE_KINDS)}"
        )
    return kind


class HeapQueue:
    """The seed backend: ``heapq`` over :class:`Event` objects."""

    kind = "heap"

    __slots__ = ("_heap", "size")

    def __init__(self) -> None:
        self._heap: List["Event"] = []
        self.size = 0

    def push(self, event: "Event") -> None:
        heapq.heappush(self._heap, event)
        self.size += 1

    def pop(self) -> "Event":
        event = heapq.heappop(self._heap)
        self.size -= 1
        return event

    def peek(self) -> Optional["Event"]:
        heap = self._heap
        return heap[0] if heap else None

    def peek_time(self) -> Optional[float]:
        """Earliest queued timestamp without popping (None when empty)."""
        heap = self._heap
        return heap[0].time if heap else None

    def __len__(self) -> int:
        return self.size

    def __bool__(self) -> bool:
        return self.size > 0

    def stats(self) -> Dict[str, float]:
        """Backend-specific observability counters."""
        return {}

    def __repr__(self) -> str:
        return f"HeapQueue(pending={self.size})"


class CalendarQueue:
    """Calendar queue: O(1) amortised enqueue/dequeue, width-adaptive.

    Args:
        width: Initial bucket width in seconds of simulated time. The
            width self-tunes, so the default only matters for the first
            few promotions.
        target_per_bucket: Desired events per bucket; the resize rules
            steer the observed bucket occupancy towards this.
        resize_hi: A promoted bucket larger than this triggers a width
            recomputation (shrink) from its measured density.
        widen_streak: This many consecutive near-empty promotions double
            the width.
        min_width / max_width: Clamps for the adaptive width.
    """

    kind = "calendar"

    __slots__ = (
        "_width", "_near", "_head", "_far", "_epochs", "_cur_epoch",
        "size", "resizes", "_target", "_hi", "_widen_streak",
        "_small_run", "_min_width", "_max_width",
    )

    def __init__(
        self,
        *,
        width: float = 0.01,
        target_per_bucket: int = 16,
        resize_hi: int = 512,
        widen_streak: int = 64,
        min_width: float = 1e-12,
        max_width: float = 1e6,
    ) -> None:
        if width <= 0:
            raise ConfigurationError(f"bucket width must be > 0, got {width}")
        if target_per_bucket < 1 or resize_hi < 2 * target_per_bucket:
            raise ConfigurationError(
                "need target_per_bucket >= 1 and "
                "resize_hi >= 2 * target_per_bucket"
            )
        self._width = float(width)
        #: Sorted (time, seq, event) tuples of the current epoch,
        #: consumed from ``_head`` (index-pop; no O(n) list shifts).
        self._near: List[Tuple[float, int, "Event"]] = []
        self._head = 0
        #: epoch -> unsorted list of (time, seq, event) tuples.
        self._far: Dict[int, List[Tuple[float, int, "Event"]]] = {}
        #: Min-heap of occupied epochs (plain ints: C-speed sifts).
        self._epochs: List[int] = []
        #: Epoch covered by ``_near``; None until the first promotion.
        self._cur_epoch: Optional[int] = None
        self.size = 0
        #: Number of automatic width changes (observability).
        self.resizes = 0
        self._target = target_per_bucket
        self._hi = resize_hi
        self._widen_streak = widen_streak
        self._small_run = 0
        self._min_width = min_width
        self._max_width = max_width

    # -- core operations ----------------------------------------------------

    def push(self, event: "Event") -> None:
        t = event.time
        try:
            epoch = int(t / self._width)
        except (OverflowError, ValueError):
            epoch = _FAR_EPOCH
        cur = self._cur_epoch
        if cur is not None and epoch <= cur:
            # Lands in the epoch being drained: keep the remaining near
            # list sorted (C bisect on plain tuples; lo skips the
            # already-consumed prefix).
            insort(self._near, (t, event.seq, event), lo=self._head)
        else:
            bucket = self._far.get(epoch)
            if bucket is None:
                self._far[epoch] = bucket = [(t, event.seq, event)]
                heapq.heappush(self._epochs, epoch)
            else:
                bucket.append((t, event.seq, event))
        self.size += 1

    def pop(self) -> "Event":
        head = self._head
        if head >= len(self._near):
            self._promote()
            head = self._head
        item = self._near[head]
        head += 1
        # Compact the consumed prefix occasionally so a long-lived queue
        # does not pin every fired event's tuple.
        if head >= 1024 and head * 2 >= len(self._near):
            del self._near[:head]
            head = 0
        self._head = head
        self.size -= 1
        return item[2]

    def peek(self) -> Optional["Event"]:
        if self._head >= len(self._near):
            if not self._far:
                return None
            self._promote()
        return self._near[self._head][2]

    def peek_time(self) -> Optional[float]:
        """Earliest queued timestamp without popping (None when empty).

        May promote a bucket (like :meth:`peek`) but never reorders or
        consumes anything.
        """
        event = self.peek()
        return None if event is None else event.time

    def __len__(self) -> int:
        return self.size

    def __bool__(self) -> bool:
        return self.size > 0

    # -- bucket management --------------------------------------------------

    def _promote(self) -> None:
        """Install the earliest occupied epoch as the near list.

        Caller guarantees at least one far bucket exists. Resizes happen
        only here — the near list is empty, so rehashing every pending
        event cannot break the near/far time ordering.
        """
        epoch = heapq.heappop(self._epochs)
        bucket = self._far.pop(epoch)
        n = len(bucket)
        if n > self._hi:
            rewidth = self._density_width(bucket)
            if rewidth < self._width:
                self._rebuild(rewidth, bucket)
                epoch = heapq.heappop(self._epochs)
                bucket = self._far.pop(epoch)
                n = len(bucket)
        if n <= 2:
            self._small_run += 1
            if (
                self._small_run >= self._widen_streak
                and self._width < self._max_width
            ):
                self._rebuild(min(self._width * 2.0, self._max_width), bucket)
                epoch = heapq.heappop(self._epochs)
                bucket = self._far.pop(epoch)
        else:
            self._small_run = 0
        bucket.sort()
        self._near = bucket
        self._head = 0
        self._cur_epoch = epoch

    def _density_width(self, bucket: List[Tuple[float, int, "Event"]]) -> float:
        """Width putting ~``target_per_bucket`` of this bucket's density
        in one bucket; clamped to guarantee an actual shrink."""
        lo = min(bucket)[0]
        hi = max(bucket)[0]
        span = hi - lo
        if span <= 0.0:
            # Simultaneous events cannot be split by any width.
            return self._width
        width = span * self._target / len(bucket)
        return max(min(width, self._width / 2.0), self._min_width)

    def _rebuild(
        self, width: float, extra: List[Tuple[float, int, "Event"]]
    ) -> None:
        """Re-hash every pending far item (plus ``extra``) under ``width``."""
        items = extra
        for bucket in self._far.values():
            items += bucket
        self._width = width
        self._far = far = {}
        self._cur_epoch = None
        self.resizes += 1
        self._small_run = 0
        for item in items:
            try:
                epoch = int(item[0] / width)
            except (OverflowError, ValueError):
                epoch = _FAR_EPOCH
            bucket = far.get(epoch)
            if bucket is None:
                far[epoch] = [item]
            else:
                bucket.append(item)
        self._epochs = list(far)
        heapq.heapify(self._epochs)

    # -- observability ------------------------------------------------------

    @property
    def width(self) -> float:
        """Current bucket width in seconds."""
        return self._width

    def stats(self) -> Dict[str, float]:
        """Backend-specific observability counters."""
        return {"queue_resizes": self.resizes}

    def __repr__(self) -> str:
        return (
            f"CalendarQueue(pending={self.size}, width={self._width:.3g}, "
            f"buckets={len(self._far)}, resizes={self.resizes})"
        )


QUEUE_KINDS = {
    "heap": HeapQueue,
    "calendar": CalendarQueue,
}


def make_queue(kind: Optional[str] = None):
    """Build an event queue: ``"heap"``, ``"calendar"``, or the default.

    ``None`` resolves the process default (``REPRO_ENGINE`` environment
    variable, else ``calendar``).
    """
    if kind is None:
        kind = default_kind()
    try:
        factory = QUEUE_KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown event-queue kind {kind!r}; "
            f"choose from {sorted(QUEUE_KINDS)}"
        ) from None
    return factory()
