"""CLI for the sharded engine: run a generated topology, print the digest.

The CI digest-equivalence job drives this: two invocations differing only
in ``--shards`` must print the same ``digest`` field. ``--json`` emits
the machine-readable summary (single line) for that comparison.

Examples::

    python -m repro.shard --topology dumbbell2 --groups 4 --shards 4 \
        --until 0.5
    python -m repro.shard --topology fat_tree --k 4 --shards 1 \
        --engine calendar --until 0.2 --json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from ..core.errors import ReproError
from ..net.scenario import dumbbell_of_dumbbells, fat_tree
from .engine import DEFAULT_BARRIER_TIMEOUT_S, run_sharded


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shard",
        description="Run a multi-hop topology on N simulation shards.",
    )
    parser.add_argument(
        "--topology", choices=("dumbbell2", "fat_tree"),
        default="dumbbell2",
        help="generator: dumbbell-of-dumbbells or k-ary fat-tree",
    )
    parser.add_argument(
        "--groups", type=int, default=4,
        help="dumbbell2: number of chained dumbbell groups",
    )
    parser.add_argument(
        "--hosts", type=int, default=2,
        help="dumbbell2: hosts per group",
    )
    parser.add_argument(
        "--k", type=int, default=4, help="fat_tree: arity (even, >= 2)"
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="simulation processes (1 = single-process reference)",
    )
    parser.add_argument(
        "--until", type=float, default=0.5, help="simulated seconds"
    )
    parser.add_argument(
        "--engine", choices=("heap", "calendar"), default=None,
        help="event-queue backend (default: REPRO_ENGINE or heap)",
    )
    parser.add_argument(
        "--scheduler", default="srr",
        help="per-port scheduler (default srr)",
    )
    parser.add_argument(
        "--window", type=float, default=None,
        help="advance step in seconds (default: the computed lookahead)",
    )
    parser.add_argument(
        "--timeout", type=float, default=DEFAULT_BARRIER_TIMEOUT_S,
        help="per-barrier hang timeout in seconds (0 disables)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="root seed for per-shard child seeds",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the summary as one JSON line",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.topology == "dumbbell2":
            spec = dumbbell_of_dumbbells(
                groups=args.groups, hosts_per_group=args.hosts,
                scheduler=args.scheduler,
            )
        else:
            spec = fat_tree(k=args.k, scheduler=args.scheduler)
        result = run_sharded(
            spec,
            until=args.until,
            shards=args.shards,
            engine=args.engine,
            window=args.window,
            barrier_timeout=args.timeout or None,
            seed=args.seed,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps(result.summary(), sort_keys=True))
        return 0
    summary = result.summary()
    print(f"topology   {summary['spec']}  (signature {summary['spec_signature'][:12]})")
    print(f"shards     {result.n_shards}   engine {args.engine or 'default'}")
    print(
        f"simulated  {result.until:g}s in {result.windows} window(s), "
        f"lookahead {summary['lookahead'] or 'n/a'}"
    )
    print(
        f"delivered  {result.delivered_packets} packets / "
        f"{result.delivered_bytes} bytes over {len(result.flows)} flows"
    )
    print(
        f"events     {result.events}   boundary {result.boundary_packets}"
        f"   null-ratio {result.null_ratio:.2%}"
        f"   dropped-in-flight {result.in_flight_dropped}"
    )
    print(f"wall       {result.wall_time_s:.3f}s")
    print(f"digest     {result.digest}")
    if result.n_shards > 1:
        print("per-shard:")
        for stats in sorted(result.shard_stats, key=lambda s: s["shard"]):
            print(
                f"  s{stats['shard']}: events={stats['events']} "
                f"tx={stats['boundary_tx']} rx={stats['boundary_rx']} "
                f"null={stats['null_windows']}/{stats['windows']} "
                f"backlog={stats['backlog']}"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
