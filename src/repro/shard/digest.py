"""Delivery-stream digests: the sharded-vs-single equivalence oracle.

The digest is a sha256 over every flow's ordered per-packet delivery
stream — ``(seq, size, created_at, delivered_at)`` per delivered packet,
flows visited in sorted order. Floats are hashed through ``repr`` (exact
shortest round-trip form), so two runs digest equal iff their delivery
records are bit-identical, the same standard the conformance fuzzer's
``check_seed`` holds heap-vs-calendar runs to.

``Packet.uid`` is deliberately excluded: it is a process-global counter,
so a packet created in shard 3's worker and "the same" packet in the
single-process run carry different uids while being semantically
identical. Everything the analyses consume (delay, throughput, ordering)
is a function of the hashed fields.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

__all__ = ["DeliveryStream", "delivery_digest", "network_delivery_digest"]

#: One delivered packet, reduced to the digest-relevant fields.
DeliveryStream = Sequence[Tuple[int, int, float, float]]


def delivery_digest(flows: Mapping[Hashable, DeliveryStream]) -> str:
    """sha256 hex digest of per-flow delivery streams.

    Flows are visited in sorted-by-repr order (flow ids may be ints or
    strings), records in the given (delivery) order.
    """
    h = hashlib.sha256()
    for flow_id in sorted(flows, key=repr):
        h.update(repr(flow_id).encode())
        for record in flows[flow_id]:
            h.update(repr(tuple(record)).encode())
    return h.hexdigest()


def delivery_streams(net) -> Dict[Hashable, List[Tuple[int, int, float, float]]]:
    """Extract the digestable streams from a live Network's sinks."""
    return {
        flow_id: [
            (r.seq, r.size, r.created_at, r.delivered_at)
            for r in flow.records
        ]
        for flow_id, flow in net.sinks.flows.items()
        if flow.records
    }


def network_delivery_digest(net) -> str:
    """Digest of everything a live Network has delivered so far."""
    return delivery_digest(delivery_streams(net))
