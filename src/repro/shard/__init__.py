"""repro.shard: multi-process sharded simulation with conservative lookahead.

Partition a multi-hop topology (:class:`~repro.shard.topology.TopologySpec`,
built by the generators in :mod:`repro.net.scenario`) into one shard per
router group, run each shard on its own :class:`~repro.net.engine.Simulator`
in its own process, and exchange boundary packets over ``multiprocessing``
pipes under barrier-synchronised windows equal to the minimum inter-shard
link latency. See ``docs/sharding.md`` for the protocol and determinism
rules.

Submodules are imported lazily (PEP 562) so that pure-data layers —
``repro.shard.topology`` is imported by ``repro.net.scenario`` for the
topology generators — never drag the engine/build machinery (which itself
imports ``repro.net``) into an import cycle.
"""

from __future__ import annotations

__all__ = [
    "TopologySpec",
    "NodeSpec",
    "LinkSpec",
    "FlowDecl",
    "SourceDecl",
    "ShardPlan",
    "partition_topology",
    "ShardNetwork",
    "build_network",
    "build_shard_network",
    "ShardError",
    "ShardRunResult",
    "run_sharded",
    "delivery_digest",
    "network_delivery_digest",
]

_EXPORTS = {
    "TopologySpec": "topology",
    "NodeSpec": "topology",
    "LinkSpec": "topology",
    "FlowDecl": "topology",
    "SourceDecl": "topology",
    "ShardPlan": "partition",
    "partition_topology": "partition",
    "ShardNetwork": "build",
    "build_network": "build",
    "build_shard_network": "build",
    "ShardError": "engine",
    "ShardRunResult": "engine",
    "run_sharded": "engine",
    "delivery_digest": "digest",
    "network_delivery_digest": "digest",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
