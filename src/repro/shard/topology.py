"""Pure-data topology specifications for the sharded engine.

A :class:`TopologySpec` is the picklable, process-portable description of
a whole experiment scenario: nodes (each labelled with a *router group*),
links, flows and traffic sources. It deliberately imports nothing from
:mod:`repro.net` — every shard worker receives the spec over a pipe and
materialises its own :class:`~repro.net.scenario.Network` slice from it
(:mod:`repro.shard.build`), and the single-process reference build uses
the very same spec, which is what makes the sharded-vs-single digest
equivalence a meaningful statement.

Determinism contract: a spec is an *ordered* value. Nodes, links, flows
and sources are tuples, and every builder iterates them in spec order,
so two builds of the same spec allocate engine sequence numbers and
scheduler state in exactly the same order. :meth:`TopologySpec.signature`
hashes that ordered content — artifact provenance for sharded runs, the
same role :func:`FaultPlan.signature` plays for fault schedules.

Source declarations are data, not live objects: ``SourceDecl(kind,
params)`` names a :mod:`repro.net.sources` class by registry key with
its constructor kwargs (seeds included), so a spec carries its entire
randomness budget explicitly and a shard worker can rebuild byte-equal
sources without the parent pickling bound callbacks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.errors import ConfigurationError

__all__ = [
    "NodeSpec",
    "LinkSpec",
    "FlowDecl",
    "SourceDecl",
    "TopologySpec",
    "SOURCE_KINDS",
]

#: Source registry keys a :class:`SourceDecl` may name, mapped to the
#: class names in :mod:`repro.net.sources` (resolved lazily by the
#: builder; this module never imports repro.net). ``WindowSource`` is
#: deliberately absent: a closed-loop source needs same-process delivery
#: feedback, which a cross-shard path cannot provide — see
#: ``docs/sharding.md`` ("when not to shard").
SOURCE_KINDS: Dict[str, str] = {
    "cbr": "CBRSource",
    "poisson": "PoissonSource",
    "pareto": "ParetoOnOffSource",
    "expoo": "ExponentialOnOffSource",
    "burst": "BurstSource",
}


@dataclass(frozen=True)
class NodeSpec:
    """One node; ``group`` is the partitioner's placement label.

    Nodes sharing a group are guaranteed to land in the same shard, so a
    group should be a router plus everything directly attached to it
    (the classic "router group" PDES partition): links *inside* a group
    never cross a shard boundary regardless of the shard count.
    """

    name: str
    group: int = 0


@dataclass(frozen=True)
class LinkSpec:
    """One (by default bidirectional) link, network-default scheduler
    unless overridden per link."""

    a: str
    b: str
    rate_bps: float
    delay: float = 0.0
    scheduler: Optional[str] = None
    scheduler_kwargs: Tuple[Tuple[str, object], ...] = ()
    cost: float = 1.0
    bidirectional: bool = True
    buffer_packets: Optional[int] = None


@dataclass(frozen=True)
class FlowDecl:
    """One flow installed along its shortest path, as ``add_flow`` does."""

    flow_id: str
    src: str
    dst: str
    weight: float = 1.0
    max_queue: Optional[int] = None


@dataclass(frozen=True)
class SourceDecl:
    """One traffic source attached to a flow: registry kind + kwargs."""

    flow_id: str
    kind: str
    params: Tuple[Tuple[str, object], ...] = ()

    def kwargs(self) -> Dict[str, object]:
        return dict(self.params)


@dataclass(frozen=True)
class TopologySpec:
    """A complete, ordered, picklable scenario description."""

    name: str
    nodes: Tuple[NodeSpec, ...]
    links: Tuple[LinkSpec, ...]
    flows: Tuple[FlowDecl, ...] = ()
    sources: Tuple[SourceDecl, ...] = ()
    default_scheduler: str = "srr"
    default_scheduler_kwargs: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate node names in spec {self.name!r}")
        known = set(names)
        for link in self.links:
            for end in (link.a, link.b):
                if end not in known:
                    raise ConfigurationError(
                        f"link {link.a!r}-{link.b!r} references unknown "
                        f"node {end!r}"
                    )
        flow_ids = set()
        for flow in self.flows:
            if flow.flow_id in flow_ids:
                raise ConfigurationError(f"duplicate flow id {flow.flow_id!r}")
            flow_ids.add(flow.flow_id)
            for end in (flow.src, flow.dst):
                if end not in known:
                    raise ConfigurationError(
                        f"flow {flow.flow_id!r} references unknown "
                        f"node {end!r}"
                    )
        for source in self.sources:
            if source.flow_id not in flow_ids:
                raise ConfigurationError(
                    f"source for unknown flow {source.flow_id!r}"
                )
            if source.kind not in SOURCE_KINDS:
                raise ConfigurationError(
                    f"unknown source kind {source.kind!r}; choose from "
                    f"{sorted(SOURCE_KINDS)}"
                )

    @property
    def n_groups(self) -> int:
        """Number of distinct router groups."""
        return len({n.group for n in self.nodes})

    def groups(self) -> Tuple[int, ...]:
        """The distinct group labels, sorted."""
        return tuple(sorted({n.group for n in self.nodes}))

    def group_of(self) -> Dict[str, int]:
        """node name -> group label."""
        return {n.name: n.group for n in self.nodes}

    def signature(self) -> str:
        """Content hash of the ordered spec (artifact provenance)."""
        h = hashlib.sha256()
        for part in (
            self.name, self.default_scheduler,
            self.default_scheduler_kwargs, self.nodes, self.links,
            self.flows, self.sources,
        ):
            h.update(repr(part).encode())
        return h.hexdigest()

    def __repr__(self) -> str:
        return (
            f"TopologySpec({self.name!r}, nodes={len(self.nodes)}, "
            f"links={len(self.links)}, flows={len(self.flows)}, "
            f"groups={self.n_groups})"
        )
