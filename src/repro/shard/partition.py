"""Topology partitioner: router groups -> shards, plus the lookahead.

The conservative-lookahead protocol (:mod:`repro.shard.engine`) is only
correct if every cross-shard packet spends at least one lookahead window
``L`` in flight: a packet transmitted during window ``[kL, (k+1)L)``
then arrives at ``depart + delay >= kL + L = (k+1)L``, i.e. never before
the barrier at which it is exchanged. That is exactly the condition
``L <= min(delay of every boundary link direction)``, so the partitioner
computes ``L`` as that minimum and refuses partitions with a zero-delay
boundary edge (no positive window could be conservative).

Placement is deliberately simple and deterministic: group ``g`` lands on
shard ``g % n_shards`` (groups are the unit of placement — see
:class:`~repro.shard.topology.NodeSpec`). Every edge therefore touches
at most two shards ("crosses at most one boundary"), a property
:func:`validate_plan` asserts structurally and the partition tests pin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.errors import ConfigurationError
from .topology import TopologySpec

__all__ = ["BoundaryEdge", "ShardPlan", "partition_topology", "validate_plan"]


@dataclass(frozen=True)
class BoundaryEdge:
    """One directed link direction whose endpoints live on different
    shards; the transmitting shard owns the port, the receiving shard
    gets the packet at the next barrier."""

    src: str
    dst: str
    src_shard: int
    dst_shard: int
    delay: float


@dataclass(frozen=True)
class ShardPlan:
    """A complete placement: who owns which node, and the safe window."""

    spec: TopologySpec
    n_shards: int
    #: node name -> shard id.
    shard_of: Dict[str, int]
    #: Every directed cross-shard link direction.
    boundary: Tuple[BoundaryEdge, ...]
    #: The conservative window: min boundary delay (``inf`` when the
    #: partition has no boundary, i.e. n_shards == 1).
    lookahead: float

    def nodes_of(self, shard_id: int) -> List[str]:
        """Node names owned by ``shard_id``, in spec order."""
        return [
            n.name for n in self.spec.nodes
            if self.shard_of[n.name] == shard_id
        ]

    def __repr__(self) -> str:
        return (
            f"ShardPlan({self.spec.name!r}, shards={self.n_shards}, "
            f"boundary_edges={len(self.boundary)}, "
            f"lookahead={self.lookahead:g})"
        )


def partition_topology(spec: TopologySpec, n_shards: int) -> ShardPlan:
    """Place router groups onto ``n_shards`` shards.

    Raises :class:`~repro.core.errors.ConfigurationError` when the shard
    count exceeds the group count (a shard with no nodes can never make
    progress) or when a boundary edge has zero propagation delay (no
    conservative window exists).
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    groups = spec.groups()
    if n_shards > len(groups):
        raise ConfigurationError(
            f"cannot split {len(groups)} router group(s) of "
            f"{spec.name!r} across {n_shards} shards; add groups or "
            "lower --shards"
        )
    group_shard = {g: i % n_shards for i, g in enumerate(groups)}
    shard_of = {n.name: group_shard[n.group] for n in spec.nodes}
    boundary: List[BoundaryEdge] = []
    for link in spec.links:
        directions = [(link.a, link.b)]
        if link.bidirectional:
            directions.append((link.b, link.a))
        for src, dst in directions:
            s, d = shard_of[src], shard_of[dst]
            if s == d:
                continue
            if link.delay <= 0.0:
                raise ConfigurationError(
                    f"boundary link {src!r}->{dst!r} has zero propagation "
                    "delay: no conservative lookahead window exists; give "
                    "inter-group links a positive delay or co-locate the "
                    "groups"
                )
            boundary.append(BoundaryEdge(src, dst, s, d, link.delay))
    lookahead = min((e.delay for e in boundary), default=math.inf)
    plan = ShardPlan(
        spec=spec,
        n_shards=n_shards,
        shard_of=shard_of,
        boundary=tuple(boundary),
        lookahead=lookahead,
    )
    validate_plan(plan)
    return plan


def validate_plan(plan: ShardPlan) -> None:
    """Structural invariants every plan must satisfy.

    * every node is placed on a valid shard, and every shard owns at
      least one node;
    * nodes of one group share one shard (the placement unit);
    * every link touches at most two shards (equivalently: each directed
      edge crosses at most one boundary);
    * every boundary edge's latency >= the lookahead window.
    """
    spec = plan.spec
    owned: Dict[int, int] = {}
    for name, shard in plan.shard_of.items():
        if not 0 <= shard < plan.n_shards:
            raise ConfigurationError(
                f"node {name!r} placed on invalid shard {shard}"
            )
        owned[shard] = owned.get(shard, 0) + 1
    for shard in range(plan.n_shards):
        if not owned.get(shard):
            raise ConfigurationError(f"shard {shard} owns no nodes")
    group_shards: Dict[int, int] = {}
    for node in spec.nodes:
        shard = plan.shard_of[node.name]
        if group_shards.setdefault(node.group, shard) != shard:
            raise ConfigurationError(
                f"group {node.group} split across shards"
            )
    for link in spec.links:
        if len({plan.shard_of[link.a], plan.shard_of[link.b]}) > 2:
            raise ConfigurationError(  # pragma: no cover - 2 endpoints
                f"link {link.a!r}-{link.b!r} spans more than two shards"
            )
    for edge in plan.boundary:
        if edge.delay < plan.lookahead:
            raise ConfigurationError(
                f"boundary edge {edge.src!r}->{edge.dst!r} latency "
                f"{edge.delay:g} < lookahead {plan.lookahead:g}"
            )
    if plan.n_shards == 1 and plan.boundary:
        raise ConfigurationError(
            "a 1-shard partition must have no boundary edges"
        )
