"""Materialise a TopologySpec: full reference build, or one shard's slice.

:func:`build_network` is the single-process reference: a plain
:class:`~repro.net.scenario.Network` with every node, link, flow and
source from the spec, added in spec order (the ordering IS the
determinism contract — engine sequence numbers are allocated in add
order).

:class:`ShardNetwork` builds one shard's slice of the same spec. Every
*node* exists as an object (global routing tables are computed from the
full adjacency, so a shard routes packets toward destinations it does
not own), but transmit machinery is instantiated only where this shard
owns the transmitting node:

* local -> local directions build normal ports;
* local -> remote directions build a *boundary port*: a real scheduler
  and transmitter whose peer is a :class:`~repro.net.port.BoundaryPeer`
  proxy and whose :attr:`~repro.net.port.OutputPort.remote_receive`
  hook banks departures into :attr:`ShardNetwork.boundary_out` for the
  next barrier exchange;
* remote -> anything contributes only an adjacency edge (routing
  knowledge costs a tuple, not a scheduler).

Flows register only at locally-owned hops (the
``Network._flow_hop_ports`` override), and sources attach only when this
shard owns the flow's source host. A 1-shard plan therefore builds the
identity: every direction is local -> local, no proxy ports exist, and
the result is indistinguishable from :func:`build_network` — the
partitioner tests pin this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.errors import ConfigurationError
from ..core.packet import Packet
from ..net import sources as _sources
from ..net.link import Link
from ..net.port import BoundaryPeer, OutputPort
from ..net.scenario import Network
from .partition import ShardPlan
from .topology import SOURCE_KINDS, TopologySpec

__all__ = [
    "BoundaryRecord",
    "ShardNetwork",
    "build_network",
    "build_shard_network",
    "make_source",
]

#: One cross-shard departure, banked between barriers:
#: (dest_shard, arrival_time, depart_time, origin_shard, egress_seq,
#:  dst_node, packet). Receivers sort arrivals by (depart_time,
#: origin_shard, egress_seq) — the deterministic cross-shard tie-break.
BoundaryRecord = Tuple[int, float, float, int, int, str, Packet]


def make_source(kind: str, params: Dict[str, object]):
    """Instantiate a :mod:`repro.net.sources` class from a SourceDecl."""
    try:
        cls = getattr(_sources, SOURCE_KINDS[kind])
    except KeyError:
        raise ConfigurationError(
            f"unknown source kind {kind!r}; choose from "
            f"{sorted(SOURCE_KINDS)}"
        ) from None
    return cls(**params)


def _populate(net: Network, spec: TopologySpec) -> None:
    """Add the spec's content to ``net`` in spec order."""
    for node in spec.nodes:
        net.add_node(node.name)
    for link in spec.links:
        net.add_link(
            link.a, link.b, rate_bps=link.rate_bps, delay=link.delay,
            scheduler=link.scheduler,
            scheduler_kwargs=dict(link.scheduler_kwargs) or None,
            cost=link.cost, bidirectional=link.bidirectional,
            buffer_packets=link.buffer_packets,
        )
    net.compute_routes()
    for flow in spec.flows:
        net.add_flow(
            flow.flow_id, flow.src, flow.dst, weight=flow.weight,
            max_queue=flow.max_queue,
        )
    for decl in spec.sources:
        net.attach_source(decl.flow_id, make_source(decl.kind, decl.kwargs()))


def build_network(
    spec: TopologySpec, *, engine: Optional[str] = None
) -> Network:
    """The single-process reference build of ``spec``."""
    net = Network(
        default_scheduler=spec.default_scheduler,
        default_scheduler_kwargs=dict(spec.default_scheduler_kwargs),
        engine=engine,
    )
    _populate(net, spec)
    return net


class ShardNetwork(Network):
    """One shard's slice of a partitioned topology."""

    def __init__(
        self,
        plan: ShardPlan,
        shard_id: int,
        *,
        engine: Optional[str] = None,
    ) -> None:
        if not 0 <= shard_id < plan.n_shards:
            raise ConfigurationError(
                f"shard_id {shard_id} outside 0..{plan.n_shards - 1}"
            )
        super().__init__(
            default_scheduler=plan.spec.default_scheduler,
            default_scheduler_kwargs=dict(plan.spec.default_scheduler_kwargs),
            engine=engine,
        )
        self.plan = plan
        self.shard_id = shard_id
        #: Departures towards other shards since the last drain.
        self.boundary_out: List[BoundaryRecord] = []
        #: Boundary ports owned by this shard (observability/tests).
        self.boundary_ports: List[OutputPort] = []
        # Per-shard egress counter: the third cross-shard tie-break key,
        # mirroring the order the single-process engine would have
        # allocated propagation-event seqs at this transmitter.
        self._egress_seq = 0
        _populate(self, plan.spec)

    # -- construction overrides ---------------------------------------------

    def _is_local(self, name: str) -> bool:
        return self.plan.shard_of[name] == self.shard_id

    def _add_direction(
        self,
        src: str,
        dst: str,
        rate_bps: float,
        delay: float,
        scheduler,
        scheduler_kwargs,
        cost: float,
        buffer_packets: Optional[int] = None,
    ) -> None:
        if not self._is_local(src):
            # Remote transmitter: the edge matters for (global) routing,
            # nothing else.
            for name in (src, dst):
                if name not in self.nodes:
                    raise ConfigurationError(f"unknown node {name!r}")
            self.adjacency[src].append((dst, cost))
            self._routes_current = False
            return
        if self._is_local(dst):
            super()._add_direction(
                src, dst, rate_bps, delay, scheduler, scheduler_kwargs,
                cost, buffer_packets,
            )
            return
        # Boundary direction: local scheduler + transmitter, remote
        # receiver. The Link is flagged so its propagation leg is known
        # to run in the peer shard.
        for name in (src, dst):
            if name not in self.nodes:
                raise ConfigurationError(f"unknown node {name!r}")
        if dst in self.nodes[src].ports:
            raise ConfigurationError(f"link {src!r}->{dst!r} already exists")
        sched = self._make_scheduler(scheduler, scheduler_kwargs)
        port = OutputPort(
            self.sim,
            Link(rate_bps, delay, boundary=True),
            sched,
            BoundaryPeer(dst),
            name=f"{src}->{dst}",
            buffer_packets=buffer_packets,
        )
        port.remote_receive = self._egress_fn(dst)
        self.nodes[src].ports[dst] = port
        self.boundary_ports.append(port)
        self.adjacency[src].append((dst, cost))
        self._routes_current = False

    def _egress_fn(self, dst: str):
        dest_shard = self.plan.shard_of[dst]
        origin = self.shard_id

        def egress(arrival_time: float, packet: Packet) -> None:
            seq = self._egress_seq
            self._egress_seq = seq + 1
            self.boundary_out.append((
                dest_shard, arrival_time, self.sim.now, origin, seq,
                dst, packet,
            ))

        return egress

    def _flow_hop_ports(self, path: List[str]) -> List[OutputPort]:
        # Only hops whose transmitting node this shard owns carry
        # scheduler state here; the rest of the path is other shards'
        # business (each installs its own hops from the same spec).
        return [
            self.nodes[here].ports[nxt]
            for here, nxt in zip(path, path[1:])
            if self._is_local(here)
        ]

    def attach_source(self, flow_id, source, *, shaper=None):
        spec = self.flows.get(flow_id)
        if spec is None:
            raise ConfigurationError(
                f"add_flow({flow_id!r}, ...) before attaching a source"
            )
        if not self._is_local(spec.src):
            # Remote ingress: the shard owning the source host drives it.
            return source
        return super().attach_source(flow_id, source, shaper=shaper)

    # -- barrier-side API ----------------------------------------------------

    def drain_boundary(self) -> List[BoundaryRecord]:
        """Take (and clear) the departures banked since the last drain."""
        out = self.boundary_out
        self.boundary_out = []
        return out

    def inject_arrivals(
        self, arrivals: List[BoundaryRecord]
    ) -> int:
        """Schedule cross-shard arrivals received at a barrier.

        Sorted by (depart_time, origin_shard, egress_seq) before
        scheduling — the deterministic tie-break that mirrors the order
        the single-process engine allocated these propagation events.
        Arrival events are scheduled *before* the window runs, so among
        same-timestamp events they fire before anything the window
        schedules later (matching single-process, where the propagation
        event predates the window too).
        """
        arrivals.sort(key=lambda r: (r[2], r[3], r[4]))
        schedule_at = self.sim.schedule_at
        nodes = self.nodes
        for _, arrival_time, _, _, _, dst, packet in arrivals:
            schedule_at(arrival_time, nodes[dst].receive, packet)
        return len(arrivals)

    def __repr__(self) -> str:
        return (
            f"ShardNetwork(shard={self.shard_id}/{self.plan.n_shards}, "
            f"nodes={len(self.nodes)}, "
            f"boundary_ports={len(self.boundary_ports)}, "
            f"t={self.sim.now:.3f}s)"
        )


def build_shard_network(
    plan: ShardPlan, shard_id: int, *, engine: Optional[str] = None
) -> ShardNetwork:
    """Build shard ``shard_id``'s slice of ``plan``."""
    return ShardNetwork(plan, shard_id, engine=engine)
