"""The sharded run: barrier-synchronised conservative-lookahead windows.

Protocol (classic conservative PDES, specialised to a star of pipes):

1. The coordinator partitions the spec (:mod:`repro.shard.partition`)
   and spawns one worker process per shard; each builds its
   :class:`~repro.shard.build.ShardNetwork` slice.
2. Time advances in windows of the lookahead ``L`` (the minimum
   boundary-link delay). For window ``k`` the coordinator sends every
   worker ``("advance", horizon=(k+1)L, ...)`` together with the
   cross-shard arrivals banked at the previous barrier; the worker
   injects the arrivals, runs its simulator over the half-open window
   ``[kL, (k+1)L)`` (``Simulator.run(horizon, inclusive=False)``), and
   replies with the departures its boundary ports banked. A window with
   no payload in either direction is this protocol's *null message* —
   pure synchronisation — and is counted as such.
3. Conservativeness: a packet finishing transmission at ``t`` in window
   ``k`` arrives at ``t + delay >= kL + L = (k+1)L`` — never inside any
   window already executed, so no shard ever sees a straggler. The final
   window runs inclusive at ``until`` (matching ``Network.run``), then
   flush rounds deliver cross-shard arrivals landing at exactly
   ``until``.

Determinism: cross-shard arrivals are injected at the barrier, sorted by
``(depart_time, origin_shard, egress_seq)``, *before* the window runs —
so they take engine sequence numbers below anything the window itself
schedules, mirroring the single-process run where those propagation
events were scheduled one window earlier. See
``docs/sharding.md#determinism`` for the tie rules this rests on.

Failure containment: a worker that dies (pipe EOF) or hangs past the
barrier timeout surfaces as a structured :class:`ShardError` — shard id,
horizon, window, pending boundary packets — and every other worker is
reaped, never deadlocking the barrier. Workers conversely exit on pipe
EOF, so a coordinator killed by the sweep reaper (the PR 3 timeout
path) cannot orphan its shard children.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import Pipe, Process, connection
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..core.errors import ConfigurationError, ReproError
from ..harness.sweep import child_seed
from ..net.eventq import ENGINE_ENV_VAR
from ..obs.flight import FLIGHT_ENV_VAR
from ..obs.telemetry import TELEMETRY_ENV_VAR, get_telemetry
from .build import BoundaryRecord, build_network, build_shard_network
from .digest import delivery_digest, delivery_streams
from .partition import ShardPlan, partition_topology
from .topology import TopologySpec

__all__ = [
    "CHAOS_ENV_VAR",
    "DEFAULT_BARRIER_TIMEOUT_S",
    "ShardError",
    "ShardRunResult",
    "run_sharded",
]

#: Fault injection for the hardening tests: ``"<shard>:<window>:<mode>"``
#: with mode ``die`` (hard exit mid-window) or ``hang`` (sleep past any
#: barrier timeout). Read by each worker from its own environment.
CHAOS_ENV_VAR = "REPRO_SHARD_CHAOS"

#: Per-barrier default patience before a silent shard is declared hung.
DEFAULT_BARRIER_TIMEOUT_S = 120.0

#: Environment threaded to every shard worker, exactly the set sweep()
#: pool workers inherit: engine backend, flight-recorder arming, and the
#: telemetry sink (workers append to the same JSONL file, line-atomic).
_WORKER_ENV_VARS = (ENGINE_ENV_VAR, FLIGHT_ENV_VAR, TELEMETRY_ENV_VAR)


class ShardError(ReproError):
    """A shard failed mid-run; structured for the failures="collect" path."""

    def __init__(
        self,
        message: str,
        *,
        shard_id: Optional[int] = None,
        horizon: Optional[float] = None,
        window: Optional[int] = None,
        pending_boundary: int = 0,
        reason: str = "failed",
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.horizon = horizon
        self.window = window
        self.pending_boundary = pending_boundary
        self.reason = reason


def _shard_error(
    *,
    shard_id: int,
    horizon: float,
    window: int,
    pending_boundary: int,
    reason: str,
    detail: str = "",
) -> ShardError:
    message = (
        f"shard {shard_id} {reason} at window {window} "
        f"(horizon {horizon:g}s, {pending_boundary} boundary packet(s) "
        f"pending for it)"
    )
    if detail:
        message += f": {detail}"
    return ShardError(
        message, shard_id=shard_id, horizon=horizon, window=window,
        pending_boundary=pending_boundary, reason=reason,
    )


@dataclass
class ShardRunResult:
    """Everything a sharded (or 1-shard reference) run produced."""

    spec_name: str
    spec_signature: str
    n_shards: int
    until: float
    lookahead: float
    windows: int
    digest: str
    #: flow id -> ordered (seq, size, created_at, delivered_at) stream.
    flows: Dict[Hashable, List[Tuple[int, int, float, float]]]
    delivered_packets: int
    delivered_bytes: int
    events: int
    boundary_packets: int
    null_windows: int
    in_flight_dropped: int
    wall_time_s: float
    shard_stats: List[Dict[str, Any]] = field(default_factory=list)
    child_seeds: List[int] = field(default_factory=list)

    @property
    def null_ratio(self) -> float:
        """Fraction of (shard, window) advances that moved no payload."""
        total = self.windows * self.n_shards
        return self.null_windows / total if total else 0.0

    def summary(self) -> Dict[str, Any]:
        """The artifact-friendly scalar view (no per-packet streams)."""
        return {
            "spec": self.spec_name,
            "spec_signature": self.spec_signature,
            "n_shards": self.n_shards,
            "until": self.until,
            "lookahead": (
                None if self.lookahead == float("inf") else self.lookahead
            ),
            "windows": self.windows,
            "digest": self.digest,
            "delivered_packets": self.delivered_packets,
            "delivered_bytes": self.delivered_bytes,
            "events": self.events,
            "boundary_packets": self.boundary_packets,
            "null_ratio": round(self.null_ratio, 4),
            "in_flight_dropped": self.in_flight_dropped,
            "wall_time_s": self.wall_time_s,
            "child_seeds": list(self.child_seeds),
        }


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _snapshot_env() -> Dict[str, Optional[str]]:
    return {var: os.environ.get(var) for var in _WORKER_ENV_VARS}


def _apply_env(env: Dict[str, Optional[str]]) -> None:
    for var, value in env.items():
        if value is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = value


def _parse_chaos(shard_id: int) -> Optional[Tuple[int, str]]:
    """(window, mode) when this shard is the chaos target, else None."""
    raw = os.environ.get(CHAOS_ENV_VAR)
    if not raw:
        return None
    try:
        shard_s, window_s, mode = raw.split(":")
        if int(shard_s) != shard_id:
            return None
        if mode not in ("die", "hang"):
            raise ValueError(mode)
        return int(window_s), mode
    except ValueError:
        raise ConfigurationError(
            f"{CHAOS_ENV_VAR}={raw!r} is not '<shard>:<window>:die|hang'"
        ) from None


def _shard_worker(
    conn,
    plan: ShardPlan,
    shard_id: int,
    engine: Optional[str],
    env: Dict[str, Optional[str]],
    seed: Optional[int],
) -> None:
    """One shard's process: build the slice, then serve barrier messages."""
    try:
        _apply_env(env)
        tele = get_telemetry()
        chaos = _parse_chaos(shard_id)
        net = build_shard_network(plan, shard_id, engine=engine)
        sim = net.sim
        windows = 0
        null_windows = 0
        boundary_tx = 0
        boundary_rx = 0
        last_horizon: Optional[float] = None
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                # The coordinator is gone (crashed, or reaped by the
                # sweep timeout path): exit instead of lingering as an
                # orphan blocked on a dead pipe.
                return
            op = msg[0]
            if op == "advance":
                _, horizon, inclusive, arrivals = msg
                last_horizon = horizon
                if chaos is not None and chaos[0] == windows:
                    if chaos[1] == "die":
                        os._exit(3)
                    time.sleep(3600.0)  # "hang": outlive any timeout
                boundary_rx += net.inject_arrivals(arrivals)
                sim.run(until=horizon, inclusive=inclusive)
                outbound = net.drain_boundary()
                boundary_tx += len(outbound)
                windows += 1
                if not arrivals and not outbound:
                    null_windows += 1
                stats = {
                    "shard": shard_id,
                    "window": windows - 1,
                    "horizon": horizon,
                    "events": sim.events_processed,
                    "null_windows": null_windows,
                    "boundary_tx": boundary_tx,
                    "boundary_rx": boundary_rx,
                }
                if tele is not None:
                    tele.heartbeat(
                        kind="shard",
                        sim_time=sim.now,
                        boundary=boundary_tx + boundary_rx,
                        windows=windows,
                        **stats,
                    )
                conn.send(("window", shard_id, outbound, stats))
            elif op == "collect":
                payload = {
                    "shard": shard_id,
                    "seed": seed,
                    "flows": delivery_streams(net),
                    "events": sim.events_processed,
                    "engine": net.engine_stats(),
                    "delivered_packets": net.sinks.total_packets,
                    "delivered_bytes": net.sinks.total_bytes,
                    "windows": windows,
                    "null_windows": null_windows,
                    "boundary_tx": boundary_tx,
                    "boundary_rx": boundary_rx,
                    "backlog": net.total_backlog(),
                    "next_event_time": sim.next_event_time(),
                }
                if tele is not None:
                    tele.frame(
                        "shard_end",
                        shard=shard_id,
                        window=windows - 1,
                        horizon=last_horizon,
                        events=sim.events_processed,
                        sim_time=sim.now,
                        windows=windows,
                        null_windows=null_windows,
                        boundary=boundary_tx + boundary_rx,
                    )
                conn.send(("result", shard_id, payload))
            elif op == "stop":
                return
            else:  # pragma: no cover - protocol misuse
                raise ConfigurationError(f"unknown shard op {op!r}")
    except Exception:
        try:
            conn.send(("error", shard_id, traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


def _single_process(
    spec: TopologySpec,
    *,
    until: float,
    engine: Optional[str],
    seed: Optional[int],
) -> ShardRunResult:
    """The --shards 1 reference: one Network, one run() call."""
    wall0 = time.perf_counter()
    net = build_network(spec, engine=engine)
    net.run(until=until)
    flows = delivery_streams(net)
    return ShardRunResult(
        spec_name=spec.name,
        spec_signature=spec.signature(),
        n_shards=1,
        until=until,
        lookahead=float("inf"),
        windows=1,
        digest=delivery_digest(flows),
        flows=flows,
        delivered_packets=net.sinks.total_packets,
        delivered_bytes=net.sinks.total_bytes,
        events=net.sim.events_processed,
        boundary_packets=0,
        null_windows=0,
        in_flight_dropped=0,
        wall_time_s=time.perf_counter() - wall0,
        shard_stats=[{
            "shard": 0,
            "seed": seed,
            "events": net.sim.events_processed,
            "engine": net.engine_stats(),
            "backlog": net.total_backlog(),
        }],
        child_seeds=[] if seed is None else [child_seed(seed, 0)],
    )


class _Barrier:
    """Coordinator-side gather with death/hang detection and reaping."""

    def __init__(
        self,
        conns: List,
        procs: List[Process],
        timeout: Optional[float],
    ) -> None:
        self.conns = conns
        self.procs = procs
        self.timeout = timeout

    def gather(
        self,
        expect: str,
        *,
        horizon: float,
        window: int,
        pending_for: List[int],
    ) -> List[Tuple]:
        """One reply per shard, or a ShardError naming the culprit."""
        n = len(self.conns)
        replies: List[Optional[Tuple]] = [None] * n
        pending = set(range(n))
        deadline = (
            None if self.timeout is None
            else time.monotonic() + self.timeout
        )
        by_conn = {id(c): i for i, c in enumerate(self.conns)}
        while pending:
            remain = None
            if deadline is not None:
                remain = deadline - time.monotonic()
                if remain <= 0:
                    shard = min(pending)
                    raise _shard_error(
                        shard_id=shard, horizon=horizon, window=window,
                        pending_boundary=pending_for[shard],
                        reason="hung (barrier timeout "
                               f"{self.timeout:g}s)",
                    )
            ready = connection.wait(
                [self.conns[i] for i in pending], remain
            )
            for conn in ready:
                i = by_conn[id(conn)]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    # Reap first so exitcode is populated (EOF races the
                    # OS-level process teardown).
                    self.procs[i].join(timeout=1.0)
                    code = self.procs[i].exitcode
                    raise _shard_error(
                        shard_id=i, horizon=horizon, window=window,
                        pending_boundary=pending_for[i],
                        reason="died",
                        detail=f"exit code {code}",
                    ) from None
                if msg[0] == "error":
                    raise _shard_error(
                        shard_id=msg[1], horizon=horizon, window=window,
                        pending_boundary=pending_for[msg[1]],
                        reason="raised",
                        detail=msg[2].strip().splitlines()[-1],
                    )
                if msg[0] != expect:  # pragma: no cover - protocol misuse
                    raise ShardError(
                        f"shard {i} sent {msg[0]!r}, expected {expect!r}"
                    )
                replies[i] = msg
                pending.discard(i)
        return replies  # type: ignore[return-value]


def _send_to_worker(conn, msg: Tuple) -> None:
    """Send, tolerating a broken pipe: a worker that died or errored out
    closes its pipe end before the coordinator's next send, and the
    *gather* that follows owns turning the buffered traceback (or the
    EOF) into a structured :class:`ShardError` naming the culprit."""
    try:
        conn.send(msg)
    except (BrokenPipeError, OSError):
        pass


def run_sharded(
    spec: TopologySpec,
    *,
    until: float,
    shards: int = 1,
    engine: Optional[str] = None,
    window: Optional[float] = None,
    barrier_timeout: Optional[float] = DEFAULT_BARRIER_TIMEOUT_S,
    seed: Optional[int] = None,
) -> ShardRunResult:
    """Run ``spec`` to ``until`` on ``shards`` processes.

    ``window`` optionally narrows the advance step below the computed
    lookahead (never above — that would be non-conservative). ``seed``
    derives per-shard child seeds exactly as ``sweep()`` derives worker
    seeds; today's shards are deterministic given the spec, so the seeds
    are recorded plumbing, not behaviour. Results are bit-identical to
    ``shards=1`` on tie-free topologies — the digest is the proof.
    """
    if until <= 0:
        raise ConfigurationError(f"until must be positive, got {until}")
    if shards == 1:
        return _single_process(
            spec, until=until, engine=engine, seed=seed,
        )
    plan = partition_topology(spec, shards)
    lookahead = plan.lookahead
    step = lookahead if window is None else window
    if step <= 0 or step > lookahead:
        raise ConfigurationError(
            f"window {step:g} must be in (0, lookahead {lookahead:g}]"
        )
    wall0 = time.perf_counter()
    env = _snapshot_env()
    seeds = (
        [] if seed is None
        else [child_seed(seed, s) for s in range(shards)]
    )
    conns: List = []
    procs: List[Process] = []
    try:
        for s in range(shards):
            parent, child = Pipe()
            proc = Process(
                target=_shard_worker,
                args=(
                    child, plan, s, engine, env,
                    seeds[s] if seeds else None,
                ),
                daemon=True,
                name=f"repro-shard-{s}",
            )
            proc.start()
            child.close()
            conns.append(parent)
            procs.append(proc)
        barrier = _Barrier(conns, procs, barrier_timeout)
        inbox: List[List[BoundaryRecord]] = [[] for _ in range(shards)]
        boundary_packets = 0
        null_windows = 0
        in_flight_dropped = 0
        windows = 0
        k = 0
        final_done = False
        while True:
            if not final_done:
                horizon = min((k + 1) * step, until)
                final = horizon >= until
            else:
                # Flush round: deliveries landing at exactly ``until``
                # that the final window's departures produced.
                horizon = until
                final = True
            outgoing, inbox = inbox, [[] for _ in range(shards)]
            pending_counts = [len(box) for box in outgoing]
            for s in range(shards):
                _send_to_worker(
                    conns[s], ("advance", horizon, final, outgoing[s])
                )
            replies = barrier.gather(
                "window", horizon=horizon, window=windows,
                pending_for=pending_counts,
            )
            windows += 1
            k += 1
            moved = False
            for _, shard_id, outbound, stats in replies:
                if not outbound and not outgoing[shard_id]:
                    null_windows += 1
                for record in outbound:
                    arrival_time = record[1]
                    if arrival_time > until:
                        # In flight past the end of simulated time: the
                        # single-process run never fires this propagation
                        # event either.
                        in_flight_dropped += 1
                        continue
                    inbox[record[0]].append(record)
                    boundary_packets += 1
                    moved = True
            if final_done or final:
                final_done = True
                if not moved:
                    break
        for s in range(shards):
            _send_to_worker(conns[s], ("collect",))
        results = barrier.gather(
            "result", horizon=until, window=windows,
            pending_for=[0] * shards,
        )
        for s in range(shards):
            _send_to_worker(conns[s], ("stop",))
        flows: Dict[Hashable, List[Tuple[int, int, float, float]]] = {}
        shard_stats: List[Dict[str, Any]] = []
        events = 0
        delivered_packets = 0
        delivered_bytes = 0
        for _, shard_id, payload in results:
            for flow_id, stream in payload.pop("flows").items():
                # Each flow terminates in exactly one shard, so this is
                # an insert, not a merge.
                flows.setdefault(flow_id, []).extend(stream)
            events += payload["events"]
            delivered_packets += payload["delivered_packets"]
            delivered_bytes += payload["delivered_bytes"]
            shard_stats.append(payload)
        return ShardRunResult(
            spec_name=spec.name,
            spec_signature=spec.signature(),
            n_shards=shards,
            until=until,
            lookahead=lookahead,
            windows=windows,
            digest=delivery_digest(flows),
            flows=flows,
            delivered_packets=delivered_packets,
            delivered_bytes=delivered_bytes,
            events=events,
            boundary_packets=boundary_packets,
            null_windows=null_windows,
            in_flight_dropped=in_flight_dropped,
            wall_time_s=time.perf_counter() - wall0,
            shard_stats=shard_stats,
            child_seeds=seeds,
        )
    finally:
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - terminate refused
                proc.kill()
                proc.join(timeout=5.0)
