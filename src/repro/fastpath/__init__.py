"""Flat array-of-struct scheduler cores (the dequeue fastpath).

Everything in this package re-implements existing disciplines on flat
per-flow columns (:mod:`repro.fastpath.state`) instead of per-flow /
per-packet heap objects:

========================  =============================================
``repro.fastpath.state``  :class:`FlowLanes` SoA columns + ring FIFOs
``repro.fastpath.base``   :class:`FastScheduler` (flow table, datapaths)
``repro.fastpath.srr``    ``srr:fast`` — SRR, flat weight matrix + WSS
``repro.fastpath.roundrobin``  ``drr:fast`` / ``wrr:fast`` / ``iwrr:fast`` / ``rr:fast``
``repro.fastpath.netloop``     lean object-free bottleneck simulation
========================  =============================================

The fast cores are drop-in :class:`~repro.core.interfaces.PacketScheduler`
implementations — ``create_scheduler("srr:fast")`` works anywhere the
object core's name does, including inside :class:`~repro.net.scenario.Network`
— and are held bit-identical to their object twins by the differential
conformance corpus (``python -m repro.conformance --core fast``). The
object core remains the reference implementation; see ``docs/fastpath.md``
for the layout, core-selection guidance, and PyPy notes.
"""

from __future__ import annotations

from .base import FastScheduler
from .roundrobin import (
    FastDRRScheduler,
    FastIWRRScheduler,
    FastRRScheduler,
    FastWRRScheduler,
)
from .srr import FastSRRScheduler
from .state import FlowLanes, FlowView

__all__ = [
    "FastScheduler",
    "FlowLanes",
    "FlowView",
    "FastSRRScheduler",
    "FastDRRScheduler",
    "FastIWRRScheduler",
    "FastWRRScheduler",
    "FastRRScheduler",
    "FAST_CORES",
    "register_fastpath_schedulers",
]

#: Object-core name -> fast twin. The conformance ``--core fast`` switch
#: and the benchmark harness both key off this mapping.
FAST_CORES = {
    "srr": FastSRRScheduler,
    "drr": FastDRRScheduler,
    "wrr": FastWRRScheduler,
    "iwrr": FastIWRRScheduler,
    "rr": FastRRScheduler,
}


def register_fastpath_schedulers() -> None:
    """Register the ``<name>:fast`` factories (idempotent).

    Called lazily by :func:`repro.schedulers.registry.create_scheduler`,
    mirroring how the extensions package self-registers.
    """
    from ..schedulers.registry import register_scheduler

    for cls in FAST_CORES.values():
        register_scheduler(cls.name, cls)
