"""Flat array-of-struct flow state — the fastpath's data plane.

The object core (:mod:`repro.core.flow`) keeps one :class:`FlowState`
instance per flow, a ``deque`` of :class:`~repro.core.packet.Packet`
objects per queue, and one :class:`ColumnNode` object per set weight bit.
At a few hundred thousand packets per second the attribute loads and
per-packet heap objects dominate the constant-time algorithms they
implement. :class:`FlowLanes` replaces all of it with *columns*: parallel
Python lists indexed by a small integer **slot**, one column per field::

    slot         0      1      2      3   ...
    weight    [  2,     7,     1,    64, ...]   # configured weight
    deficit   [  0.0,  133.0,  0.0,  0.0, ...]  # DRR/deficit credit
    q_head    [  3,     0,     5,     0, ...]   # ring cursor
    q_count   [  1,    12,     0,     4, ...]   # queued packets
    q_bytes   [200,  4100,     0,  800, ...]    # queued bytes
    q_size    [ring, ring,  ring,  ring, ...]   # per-flow size ring
    q_ref     [ring, ring,  ring,  ring, ...]   # per-flow payload ring

Per-flow FIFOs are preallocated power-of-two ring buffers: ``q_size`` is
a flat list of ints (``head_size()`` is two list reads, no attribute
chase), and ``q_ref`` carries an opaque payload slot for each packet —
the :class:`~repro.core.packet.Packet` object on the registry-compatible
datapath, or a bare scalar (e.g. the creation timestamp) on the
object-free scalar datapath, where no packet object ever exists and one
is materialised only at trace/sink boundaries.

Slots are recycled through a free list so long churny runs do not grow
the columns without bound; a freed slot keeps its (cleared) rings and
hands them to the next flow.

Everything here is plain CPython-and-PyPy-clean Python — lists, ints and
floats, no ctypes/numpy — so the same code JITs well under PyPy (see
``docs/fastpath.md``).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..core.errors import UnknownFlowError

__all__ = ["FlowLanes", "FlowView", "MIN_RING_CAPACITY"]

#: Initial per-flow ring capacity (power of two). Rings double on demand,
#: so this only sets the floor; 8 slots cover most conformance scenarios
#: without a single growth copy.
MIN_RING_CAPACITY = 8


class FlowLanes:
    """SoA per-flow scheduler state: columns indexed by flow slot.

    The class is a data plane, not a scheduler: disciplines own one
    instance, cache the column lists as locals in their hot loops, and
    implement service order on top of ``push``/``pop``/``head_size``.
    """

    def __init__(self) -> None:
        # fid <-> slot mapping. ``fids[slot]`` is None while a slot sits
        # on the free list.
        self.slot_of: Dict[Hashable, int] = {}
        self.fids: List[Optional[Hashable]] = []
        self._free: List[int] = []
        # Per-flow configuration columns.
        self.weight: List[float] = []
        self.max_queue: List[int] = []        # -1 = unbounded
        # Service-discipline scratch columns (deficit credit is shared by
        # DRR and SRR's deficit mode; other disciplines leave it 0).
        self.deficit: List[float] = []
        # Ring cursors + storage.
        self.q_head: List[int] = []
        self.q_count: List[int] = []
        self.q_cap: List[int] = []
        self.q_bytes: List[int] = []
        self.q_size: List[List[int]] = []
        self.q_ref: List[List[Any]] = []
        # Running service statistics (the fairness analyses and the
        # observability layer read these straight from the columns).
        self.packets_sent: List[int] = []
        self.bytes_sent: List[int] = []
        self.packets_dropped: List[int] = []
        #: Total ring growths performed (observability / ring tests).
        self.ring_growths = 0
        #: Slots handed out from the free list (churn reuse, not growth).
        self.slot_recycles = 0
        #: High-water mark of any single flow ring's occupancy.
        self.max_ring_occupancy = 0

    # -- slot lifecycle ----------------------------------------------------

    def alloc(
        self,
        fid: Hashable,
        weight: float,
        *,
        max_queue: Optional[int] = None,
    ) -> int:
        """Register ``fid`` and return its slot (recycled when possible)."""
        limit = -1 if max_queue is None else max_queue
        if self._free:
            slot = self._free.pop()
            self.slot_recycles += 1
            self.fids[slot] = fid
            self.weight[slot] = weight
            self.max_queue[slot] = limit
            self.deficit[slot] = 0
            self.packets_sent[slot] = 0
            self.bytes_sent[slot] = 0
            self.packets_dropped[slot] = 0
            # Rings were cleared by free(); cursors are already zero.
        else:
            slot = len(self.fids)
            self.fids.append(fid)
            self.weight.append(weight)
            self.max_queue.append(limit)
            self.deficit.append(0)
            self.q_head.append(0)
            self.q_count.append(0)
            self.q_cap.append(MIN_RING_CAPACITY)
            self.q_bytes.append(0)
            self.q_size.append([0] * MIN_RING_CAPACITY)
            self.q_ref.append([None] * MIN_RING_CAPACITY)
            self.packets_sent.append(0)
            self.bytes_sent.append(0)
            self.packets_dropped.append(0)
        self.slot_of[fid] = slot
        return slot

    def free(self, slot: int) -> int:
        """Release ``slot`` (dropping its queue); returns packets dropped."""
        fid = self.fids[slot]
        del self.slot_of[fid]
        self.fids[slot] = None
        dropped = self.q_count[slot]
        # Clear payload references so freed packets are collectable; the
        # ring storage itself is kept for the next tenant.
        refs = self.q_ref[slot]
        for i in range(len(refs)):
            refs[i] = None
        self.q_head[slot] = 0
        self.q_count[slot] = 0
        self.q_bytes[slot] = 0
        self.deficit[slot] = 0
        self._free.append(slot)
        return dropped

    def lookup(self, fid: Hashable) -> int:
        """Slot for ``fid``; raises :class:`UnknownFlowError` if absent."""
        try:
            return self.slot_of[fid]
        except KeyError:
            raise UnknownFlowError(fid) from None

    @property
    def flow_count(self) -> int:
        return len(self.slot_of)

    @property
    def free_depth(self) -> int:
        """Slots currently parked on the free list."""
        return len(self._free)

    def observe(self, registry: Any, **labels: Any) -> None:
        """Export the data-plane counters into a metrics registry.

        Fast-core runs have no per-flow objects for the object-core
        observability hooks to read, so without this the metrics block
        of a ``--core fast`` run is silently empty. Counter values are
        cumulative totals (registry merge adds); high-water marks go
        through ``set_max`` gauges so parallel shards merge correctly.
        """
        registry.counter("lanes_ring_growths_total", **labels).inc(
            self.ring_growths
        )
        registry.counter("lanes_slot_recycles_total", **labels).inc(
            self.slot_recycles
        )
        registry.gauge("lanes_max_ring_occupancy", **labels).set_max(
            self.max_ring_occupancy
        )
        registry.gauge("lanes_free_depth", **labels).set_max(self.free_depth)
        registry.gauge("lanes_slots", **labels).set_max(len(self.fids))
        registry.gauge("lanes_live_flows", **labels).set_max(
            len(self.slot_of)
        )

    def live_slots(self) -> List[int]:
        """Currently allocated slots (iteration order = slot order)."""
        return [s for s, fid in enumerate(self.fids) if fid is not None]

    # -- ring operations ---------------------------------------------------

    def push(self, slot: int, size: int, ref: Any) -> bool:
        """Append one packet to ``slot``'s FIFO; False (and drop-count)
        when the flow's queue limit is reached."""
        count = self.q_count[slot]
        limit = self.max_queue[slot]
        if limit >= 0 and count >= limit:
            self.packets_dropped[slot] += 1
            return False
        cap = self.q_cap[slot]
        if count == cap:
            self._grow(slot)
            cap = self.q_cap[slot]
        tail = (self.q_head[slot] + count) & (cap - 1)
        self.q_size[slot][tail] = size
        self.q_ref[slot][tail] = ref
        count += 1
        self.q_count[slot] = count
        self.q_bytes[slot] += size
        if count > self.max_ring_occupancy:
            self.max_ring_occupancy = count
        return True

    def pop(self, slot: int) -> Tuple[int, Any]:
        """Pop and account the head-of-line packet (queue non-empty)."""
        head = self.q_head[slot]
        sizes = self.q_size[slot]
        refs = self.q_ref[slot]
        size = sizes[head]
        ref = refs[head]
        refs[head] = None
        self.q_head[slot] = (head + 1) & (self.q_cap[slot] - 1)
        self.q_count[slot] -= 1
        self.q_bytes[slot] -= size
        self.packets_sent[slot] += 1
        self.bytes_sent[slot] += size
        return size, ref

    def head_size(self, slot: int) -> int:
        """Size in bytes of the head-of-line packet (queue non-empty)."""
        return self.q_size[slot][self.q_head[slot]]

    def _grow(self, slot: int) -> None:
        """Double ``slot``'s ring, unrolling the wrap into a fresh ring."""
        cap = self.q_cap[slot]
        head = self.q_head[slot]
        count = self.q_count[slot]
        old_sizes = self.q_size[slot]
        old_refs = self.q_ref[slot]
        new_cap = cap * 2
        sizes = [0] * new_cap
        refs: List[Any] = [None] * new_cap
        mask = cap - 1
        for i in range(count):
            j = (head + i) & mask
            sizes[i] = old_sizes[j]
            refs[i] = old_refs[j]
        self.q_size[slot] = sizes
        self.q_ref[slot] = refs
        self.q_cap[slot] = new_cap
        self.q_head[slot] = 0
        self.ring_growths += 1

    def queue_refs(self, slot: int) -> List[Any]:
        """The queued payloads in FIFO order (copies; boundary use only)."""
        head = self.q_head[slot]
        mask = self.q_cap[slot] - 1
        refs = self.q_ref[slot]
        return [refs[(head + i) & mask] for i in range(self.q_count[slot])]

    def check_ring(self, slot: int) -> None:
        """Ring invariants for one slot (test helper)."""
        cap = self.q_cap[slot]
        if cap & (cap - 1):
            raise AssertionError(f"slot {slot}: capacity {cap} not a power of 2")
        count = self.q_count[slot]
        if not 0 <= count <= cap:
            raise AssertionError(f"slot {slot}: count {count} outside 0..{cap}")
        head = self.q_head[slot]
        if not 0 <= head < cap:
            raise AssertionError(f"slot {slot}: head {head} outside ring")
        total = sum(
            self.q_size[slot][(head + i) & (cap - 1)] for i in range(count)
        )
        if total != self.q_bytes[slot]:
            raise AssertionError(
                f"slot {slot}: q_bytes {self.q_bytes[slot]} != ring sum {total}"
            )
        # Vacant ring positions must not pin payloads.
        mask = cap - 1
        occupied = {(head + i) & mask for i in range(count)}
        refs = self.q_ref[slot]
        for i in range(cap):
            if i not in occupied and refs[i] is not None:
                raise AssertionError(f"slot {slot}: leaked ref at ring[{i}]")

    def __repr__(self) -> str:
        return (
            f"FlowLanes(flows={len(self.slot_of)}, "
            f"slots={len(self.fids)}, free={len(self._free)})"
        )


class FlowView:
    """Read-mostly :class:`~repro.core.flow.FlowState`-compatible view of
    one slot, materialised on demand for boundary code (conformance
    bookkeeping, diagnostics) — the hot path never builds one."""

    __slots__ = ("_lanes", "_slot")

    def __init__(self, lanes: FlowLanes, slot: int) -> None:
        self._lanes = lanes
        self._slot = slot

    @property
    def slot(self) -> int:
        return self._slot

    @property
    def flow_id(self) -> Hashable:
        return self._lanes.fids[self._slot]

    @property
    def weight(self) -> float:
        return self._lanes.weight[self._slot]

    @property
    def deficit(self) -> float:
        return self._lanes.deficit[self._slot]

    @property
    def queue(self) -> List[Any]:
        return self._lanes.queue_refs(self._slot)

    @property
    def backlogged(self) -> bool:
        return self._lanes.q_count[self._slot] > 0

    @property
    def backlog_bytes(self) -> int:
        return self._lanes.q_bytes[self._slot]

    @property
    def packets_sent(self) -> int:
        return self._lanes.packets_sent[self._slot]

    @property
    def bytes_sent(self) -> int:
        return self._lanes.bytes_sent[self._slot]

    @property
    def packets_dropped(self) -> int:
        return self._lanes.packets_dropped[self._slot]

    @property
    def max_queue(self) -> Optional[int]:
        limit = self._lanes.max_queue[self._slot]
        return None if limit < 0 else limit

    def head_size(self) -> int:
        return self._lanes.head_size(self._slot)

    def __repr__(self) -> str:
        return (
            f"FlowView(id={self.flow_id!r}, weight={self.weight}, "
            f"queued={self._lanes.q_count[self._slot]})"
        )
