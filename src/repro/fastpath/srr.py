"""SRR on the flat core: weight matrix and WSS scan as plain int arrays.

Same algorithm, same service order, same elementary-op profile as
:class:`~repro.core.srr.SRRScheduler` — the differential conformance
corpus runs bit-identical across the two implementations — but every
piece of mutable state is a machine integer in a flat list:

* **Weight matrix**: the object core's per-column intrusive linked lists
  of :class:`~repro.core.flow.ColumnNode` objects become three parallel
  int arrays ``nx`` / ``pv`` / ``nslot`` over small node ids. Column
  ``j``'s sentinels are node ids ``2j`` (head) and ``2j + 1`` (tail);
  flow nodes are allocated past the sentinels, one per set weight bit,
  and recycled through a free list on flow removal. Link/unlink is the
  same O(1) pointer surgery, with list stores instead of attribute
  writes.
* **WSS**: the scan is two integer cursors (order, 1-based position).
  Terms come from the closed form ``v2(position) + 1`` by default, or —
  ``wss_storage="materialized"`` — from the process-wide memoised flat
  term table of :mod:`repro.core.wss` (the paper's stored-array
  strategy), one list read per term.
* **Departure batching**: :meth:`pull_batch` serves a whole WSS column
  visit per iteration of a fused loop — one Python call per *batch*
  instead of one per packet, with identical service order (the loop
  walks the live column linkage, so mid-batch unlinks behave exactly as
  in repeated single pulls).

Both service modes are provided: ``packet`` (the paper's one-packet
visit) and ``deficit`` (DRR-style byte credit, the multi-service
variant).
"""

from __future__ import annotations

from typing import Any, ClassVar, Dict, List, Optional, Tuple

from ..core.errors import ConfigurationError
from ..core.opcount import NULL_COUNTER, OpCounter
from ..core.wss import _materialized
from ..obs.flight import KIND_PULL
from .base import FastScheduler

__all__ = ["FastSRRScheduler"]


class FastSRRScheduler(FastScheduler):
    """Smoothed Round Robin on flat columns (``srr:fast``).

    Accepts the same constructor arguments as the object core
    (:class:`~repro.core.srr.SRRScheduler`); see that class and the
    module docstring for the algorithm.
    """

    name: ClassVar[str] = "srr:fast"
    requires_integer_weights: ClassVar[bool] = True

    def __init__(
        self,
        *,
        max_order: int = 62,
        mode: str = "packet",
        quantum: int = 1500,
        wss_storage: str = "closed",
        order_change: str = "restart",
        op_counter: OpCounter = NULL_COUNTER,
    ) -> None:
        super().__init__(op_counter=op_counter)
        if not 1 <= max_order <= 62:
            raise ConfigurationError(
                f"max_order must be in 1..62, got {max_order}"
            )
        if mode not in ("packet", "deficit"):
            raise ConfigurationError(
                f"mode must be 'packet' or 'deficit', got {mode!r}"
            )
        if mode == "deficit" and quantum < 1:
            raise ConfigurationError(f"quantum must be >= 1, got {quantum}")
        if wss_storage not in ("closed", "materialized"):
            raise ConfigurationError(
                "wss_storage must be 'closed' or 'materialized', "
                f"got {wss_storage!r}"
            )
        if order_change not in ("restart", "continue"):
            raise ConfigurationError(
                "order_change must be 'restart' or 'continue', "
                f"got {order_change!r}"
            )
        self.max_order = max_order
        self.mode = mode
        self.quantum = quantum
        self.wss_storage = wss_storage
        self.order_change = order_change
        # Flat node store. Ids 2j / 2j+1 are column j's head/tail
        # sentinels; every id past 2*max_order is a flow node. -1 is the
        # universal "no link" / "sentinel" marker.
        n_sent = 2 * max_order
        self.nx: List[int] = [-1] * n_sent
        self.pv: List[int] = [-1] * n_sent
        self.nslot: List[int] = [-1] * n_sent
        self.ncol: List[int] = [0] * n_sent
        for j in range(max_order):
            head, tail = 2 * j, 2 * j + 1
            self.nx[head] = tail
            self.pv[tail] = head
            self.ncol[head] = self.ncol[tail] = j
        self._free_nodes: List[int] = []
        # slot -> this flow's node ids (one per set weight bit), or None.
        self._slot_nodes: List[Optional[List[int]]] = []
        self._in_matrix: List[bool] = []
        self.col_size: List[int] = [0] * max_order
        self._nonempty_mask = 0
        # WSS scan state, mirroring the object core exactly.
        self._order = 0
        self._position = 0
        self._cursor = -1           # node id; -1 = no column selected
        self._stuck = -1            # deficit mode: slot mid-burst, or -1
        #: Cumulative WSS terms examined (profiling reads this; the
        #: object core exposes the identical counter).
        self.terms_scanned = 0
        # order -> flat term table (shared memoised lists from core.wss).
        self._wss_tables: Dict[int, List[int]] = {}

    # -- slot hooks --------------------------------------------------------

    def _on_slot_added(self, slot: int) -> None:
        lanes = self.lanes
        weight = int(lanes.weight[slot])
        if weight.bit_length() > self.max_order:
            raise ConfigurationError(
                f"weight {weight} needs {weight.bit_length()} weight-matrix "
                f"columns, scheduler was built with max_order={self.max_order}"
            )
        while len(self._slot_nodes) <= slot:
            self._slot_nodes.append(None)
            self._in_matrix.append(False)
        nodes: List[int] = []
        bits = weight
        while bits:
            low = bits & -bits
            bit = low.bit_length() - 1
            bits ^= low
            nodes.append(self._alloc_node(slot, bit))
        self._slot_nodes[slot] = nodes
        self._in_matrix[slot] = False

    def _on_slot_removed(self, slot: int) -> None:
        if self._in_matrix[slot]:
            self._unlink(slot)
        if self._stuck == slot:
            self._stuck = -1
        self.lanes.deficit[slot] = 0
        for node in self._slot_nodes[slot]:
            self.nslot[node] = -1
            self._free_nodes.append(node)
        self._slot_nodes[slot] = None

    def _on_backlogged_slot(self, slot: int) -> None:
        # Empty -> backlogged: (re)enter the matrix at the column tails
        # (identical pickup semantics to the object core's insert).
        nx, pv = self.nx, self.pv
        bump = self._ops.bump
        mask = self._nonempty_mask
        col_size = self.col_size
        for node in self._slot_nodes[slot]:
            col = self.ncol[node]
            tail = 2 * col + 1
            last = pv[tail]
            nx[last] = node
            pv[node] = last
            nx[node] = tail
            pv[tail] = node
            col_size[col] += 1
            mask |= 1 << col
            bump()
        self._nonempty_mask = mask
        self._in_matrix[slot] = True

    # -- node allocation ---------------------------------------------------

    def _alloc_node(self, slot: int, col: int) -> int:
        if self._free_nodes:
            node = self._free_nodes.pop()
            self.nslot[node] = slot
            self.ncol[node] = col
            self.nx[node] = self.pv[node] = -1
            return node
        node = len(self.nx)
        self.nx.append(-1)
        self.pv.append(-1)
        self.nslot.append(slot)
        self.ncol.append(col)
        return node

    def _unlink(self, slot: int) -> None:
        """Take ``slot`` out of the matrix, keeping the cursor valid."""
        cursor = self._cursor
        if cursor >= 0 and self.nslot[cursor] == slot:
            self._cursor = self.nx[cursor]
        nx, pv = self.nx, self.pv
        bump = self._ops.bump
        mask = self._nonempty_mask
        col_size = self.col_size
        for node in self._slot_nodes[slot]:
            p, n = pv[node], nx[node]
            nx[p] = n
            pv[n] = p
            nx[node] = pv[node] = -1
            col = self.ncol[node]
            col_size[col] -= 1
            if not col_size[col]:
                mask &= ~(1 << col)
            bump()
        self._nonempty_mask = mask
        self._in_matrix[slot] = False

    # -- scheduling --------------------------------------------------------

    def pull(self) -> Optional[Tuple[int, int, Any]]:
        """Serve the next packet in O(1) as ``(slot, size, ref)``."""
        if self.mode == "packet":
            return self._pull_packet_mode()
        return self._pull_deficit_mode()

    def _pull_packet_mode(self) -> Optional[Tuple[int, int, Any]]:
        ops = self._ops
        nslot = self.nslot
        lanes = self.lanes
        q_count = lanes.q_count
        while True:
            node = self._cursor
            if node >= 0:
                slot = nslot[node]
                if slot >= 0:
                    # Serve this flow once and advance within the column.
                    self._cursor = self.nx[node]
                    ops.bump()
                    size, ref = lanes.pop(slot)
                    if not q_count[slot]:
                        self._unlink(slot)
                    self._departed(size)
                    return slot, size, ref
            # Column exhausted (or no column yet): advance the WSS scan.
            if not self._advance_term():
                return None

    def _pull_deficit_mode(self) -> Optional[Tuple[int, int, Any]]:
        ops = self._ops
        nslot = self.nslot
        lanes = self.lanes
        q_count = lanes.q_count
        deficit = lanes.deficit
        quantum = self.quantum
        # A flow with leftover credit keeps the link until the credit no
        # longer covers its head-of-line packet.
        stuck = self._stuck
        if stuck >= 0:
            self._stuck = -1
            if q_count[stuck] and lanes.head_size(stuck) <= deficit[stuck]:
                return self._send_with_deficit(stuck)
        while True:
            node = self._cursor
            if node >= 0:
                slot = nslot[node]
                if slot >= 0:
                    self._cursor = self.nx[node]
                    ops.bump()
                    deficit[slot] += quantum
                    if lanes.head_size(slot) <= deficit[slot]:
                        return self._send_with_deficit(slot)
                    # Credit too small for the head packet: skip this
                    # visit, carrying the credit (DRR semantics).
                    continue
            if not self._advance_term():
                return None

    def _send_with_deficit(self, slot: int) -> Tuple[int, int, Any]:
        lanes = self.lanes
        size, ref = lanes.pop(slot)
        lanes.deficit[slot] -= size
        if not lanes.q_count[slot]:
            # DRR-style rule: credit does not survive idling.
            lanes.deficit[slot] = 0
            self._unlink(slot)
        elif lanes.head_size(slot) <= lanes.deficit[slot]:
            self._stuck = slot
        self._departed(size)
        return slot, size, ref

    def _advance_term(self) -> bool:
        """Advance the WSS scan one term; False when the matrix is empty.

        Exactly the object core's :meth:`~repro.core.srr.SRRScheduler._advance_term`,
        with the cursor as a node id and the materialised table as a flat
        int list.
        """
        mask = self._nonempty_mask
        if not mask:
            self._order = 0
            self._position = 0
            self._cursor = -1
            return False
        order = mask.bit_length()
        if order != self._order:
            self._order = order
            if self.order_change == "restart":
                self._position = 0
            else:
                self._position %= (1 << order) - 1
        position = self._position + 1
        if position > (1 << order) - 1:
            position = 1
        self._position = position
        if self.wss_storage == "closed":
            # Closed-form WSS term: v2(position) + 1.
            value = (position & -position).bit_length()
        else:
            table = self._wss_tables.get(order)
            if table is None:
                # Process-wide memoised flat term array (paper strategy).
                table = self._wss_tables[order] = _materialized(order)
            value = table[position - 1]
        # Column order-value's first real node (or its tail sentinel).
        self._cursor = self.nx[2 * (order - value)]
        self.terms_scanned += 1
        self._ops.bump()
        return True

    def pull_batch(self, budget: int) -> List[Tuple[int, int, Any]]:
        """Serve up to ``budget`` packets, batching per WSS column visit.

        One fused loop per call: within a selected column the serve step
        runs without re-entering Python call machinery per packet. The
        service order is identical to repeated :meth:`pull` calls.
        """
        if self.mode != "packet":
            return super().pull_batch(budget)
        out: List[Tuple[int, int, Any]] = []
        append = out.append
        ops = self._ops
        nslot, nx = self.nslot, self.nx
        lanes = self.lanes
        q_count = lanes.q_count
        pop = lanes.pop
        advance = self._advance_term
        n = 0
        while n < budget:
            node = self._cursor
            if node >= 0:
                slot = nslot[node]
                if slot >= 0:
                    self._cursor = nx[node]
                    ops.bump()
                    size, ref = pop(slot)
                    if not q_count[slot]:
                        self._unlink(slot)
                    self._departed(size)
                    append((slot, size, ref))
                    n += 1
                    continue
            if not advance():
                break
        return out

    # -- observability arming ----------------------------------------------

    def _observed_pull_batch(self, budget: int) -> List[Tuple[int, int, Any]]:
        """The fused batch loop with flight sampling.

        Becomes the armed twin class's ``pull_batch`` (see
        :func:`repro.fastpath.base._flight_twin`); never called unarmed.

        Identical service order to :meth:`pull_batch` at identical
        per-item cost: the batch is served in *chunks* that run the
        bare fused loop up to the next sampled index (``limit`` replaces
        ``budget`` as the loop bound — zero extra work per unsampled
        item), then one item is served with ops/terms baselines captured
        immediately before it — so a sampled record's deltas cover
        exactly one packet, including the inter-packet WSS advances,
        matching what a single instrumented ``pull`` measures.
        """
        recorder = self._flight
        if self.mode != "packet":
            return FastScheduler.pull_batch(self, budget)
        out: List[Tuple[int, int, Any]] = []
        append = out.append
        ops = self._ops
        nslot, nx = self.nslot, self.nx
        lanes = self.lanes
        q_count = lanes.q_count
        deficit = lanes.deficit
        pop = lanes.pop
        advance = self._advance_term
        tracer = self._tracer
        mask = recorder.mask
        # 0-based index (within this batch) of the next sampled item.
        target = mask - (recorder.n & mask)
        n = 0
        empty = False
        while n < budget and not empty:
            limit = target if target < budget else budget
            while n < limit:
                node = self._cursor
                if node >= 0:
                    slot = nslot[node]
                    if slot >= 0:
                        self._cursor = nx[node]
                        ops.bump()
                        size, ref = pop(slot)
                        if not q_count[slot]:
                            self._unlink(slot)
                        self._departed(size)
                        append((slot, size, ref))
                        n += 1
                        continue
                if not advance():
                    empty = True
                    break
            if empty or n >= budget:
                break
            # n == target: serve exactly one sampled, instrumented item.
            ops_base = ops.count
            terms_base = self.terms_scanned
            while True:
                node = self._cursor
                if node >= 0:
                    slot = nslot[node]
                    if slot >= 0:
                        self._cursor = nx[node]
                        ops.bump()
                        size, ref = pop(slot)
                        if not q_count[slot]:
                            self._unlink(slot)
                        self._departed(size)
                        append((slot, size, ref))
                        n += 1
                        recorder.record(
                            KIND_PULL, slot, size, ops.count - ops_base,
                            self.terms_scanned - terms_base, deficit[slot],
                            q_count[slot],
                        )
                        if tracer is not None:
                            tracer.emit(
                                "dequeue", recorder.now,
                                flow=lanes.fids[slot], slot=slot, size=size,
                                core="fast",
                            )
                        target += mask + 1
                        break
                if not advance():
                    empty = True
                    break
        recorder.n += n
        return out

    # -- introspection -----------------------------------------------------

    @property
    def order(self) -> int:
        """Current weight-matrix order (0 when no flow is backlogged)."""
        return self._nonempty_mask.bit_length()

    @property
    def scan_position(self) -> int:
        """1-based WSS position of the most recent term (0 before start)."""
        return self._position

    def column_populations(self) -> List[int]:
        """``y_j`` counts per column up to the current order (diagnostics)."""
        return list(self.col_size[: self.order])

    def check_invariants(self) -> None:
        """Verify matrix linkage consistency (test helper; O(nodes))."""
        mask = 0
        for j in range(self.max_order):
            head, tail = 2 * j, 2 * j + 1
            n = 0
            node = self.nx[head]
            prev = head
            while node != tail:
                if node < 0:
                    raise AssertionError(f"column {j}: broken next chain")
                if self.pv[node] != prev:
                    raise AssertionError(f"column {j}: broken prev link")
                if self.nslot[node] < 0:
                    raise AssertionError(f"column {j}: sentinel mid-list")
                prev, node = node, self.nx[node]
                n += 1
            if n != self.col_size[j]:
                raise AssertionError(
                    f"column {j}: size {self.col_size[j]} but {n} nodes"
                )
            if n:
                mask |= 1 << j
        if mask != self._nonempty_mask:
            raise AssertionError(
                f"nonempty mask {self._nonempty_mask:b} != recomputed {mask:b}"
            )

    def __repr__(self) -> str:
        return (
            f"FastSRRScheduler(mode={self.mode!r}, order={self.order}, "
            f"flows={self.lanes.flow_count}, backlog={self.backlog})"
        )
