"""DRR / WRR / plain RR on the flat core.

The object baselines keep a ``deque`` of :class:`~repro.core.flow.FlowState`
objects plus a mirror set for membership. Here the active list is a
circular doubly-linked list threaded through two int columns (``_nxt`` /
``_prv``, indexed by flow slot) with a single head pointer:

* ``append``  = splice before the head (the circular list's tail),
* ``popleft`` = unlink the head and advance it,
* ``rotate(-1)`` = advance the head pointer — O(1), no data movement,
* mid-list removal (flow deletion) = O(1) splice, versus the deque's
  O(N) ``remove``.

Service order and per-visit elementary-op counts are identical to the
object implementations (:mod:`repro.schedulers.drr` / ``wrr`` / ``rr``) —
the conformance corpus runs bit-identical across cores.
"""

from __future__ import annotations

from typing import Any, ClassVar, List, Optional, Tuple

from ..core.errors import ConfigurationError
from ..core.opcount import NULL_COUNTER, OpCounter
from ..schedulers.drr import MIN_VISIT_CREDIT
from .base import FastScheduler

__all__ = [
    "FastDRRScheduler",
    "FastWRRScheduler",
    "FastIWRRScheduler",
    "FastRRScheduler",
]


class _ActiveListScheduler(FastScheduler):
    """Shared circular active list over slots (head = next flow to serve)."""

    def __init__(self, *, op_counter: OpCounter = NULL_COUNTER) -> None:
        super().__init__(op_counter=op_counter)
        self._nxt: List[int] = []
        self._prv: List[int] = []
        self._in_active: List[bool] = []
        self._head = -1

    def _on_slot_added(self, slot: int) -> None:
        while len(self._nxt) <= slot:
            self._nxt.append(-1)
            self._prv.append(-1)
            self._in_active.append(False)

    def _activate(self, slot: int) -> None:
        """Append ``slot`` at the tail of the active ring."""
        head = self._head
        if head < 0:
            self._nxt[slot] = self._prv[slot] = slot
            self._head = slot
        else:
            tail = self._prv[head]
            self._nxt[tail] = slot
            self._prv[slot] = tail
            self._nxt[slot] = head
            self._prv[head] = slot
        self._in_active[slot] = True

    def _deactivate(self, slot: int) -> None:
        """Unlink ``slot``; advances the head if it pointed here."""
        nxt = self._nxt[slot]
        if nxt == slot:
            self._head = -1
        else:
            prv = self._prv[slot]
            self._nxt[prv] = nxt
            self._prv[nxt] = prv
            if self._head == slot:
                self._head = nxt
        self._nxt[slot] = self._prv[slot] = -1
        self._in_active[slot] = False

    def active_slots(self) -> List[int]:
        """Active slots in service order, head first (diagnostics/tests)."""
        out: List[int] = []
        slot = self._head
        if slot < 0:
            return out
        while True:
            out.append(slot)
            slot = self._nxt[slot]
            if slot == self._head:
                return out


class FastDRRScheduler(_ActiveListScheduler):
    """Deficit Round Robin on flat columns (``drr:fast``).

    See :class:`~repro.schedulers.drr.DRRScheduler` for the algorithm and
    the exact-float credit rationale; the flat twin reproduces both.
    """

    name: ClassVar[str] = "drr:fast"

    def __init__(
        self, *, quantum: int = 1500, op_counter: OpCounter = NULL_COUNTER
    ) -> None:
        super().__init__(op_counter=op_counter)
        if quantum < 1:
            raise ConfigurationError(f"quantum must be >= 1, got {quantum}")
        self.quantum = quantum
        # True while the head flow has already been granted this round's
        # credit (it is mid-burst across pull() calls).
        self._head_charged = False

    def _on_slot_added(self, slot: int) -> None:
        super()._on_slot_added(slot)
        lanes = self.lanes
        if lanes.weight[slot] * self.quantum < MIN_VISIT_CREDIT:
            raise ConfigurationError(
                f"flow {lanes.fids[slot]!r}: per-visit credit "
                f"{lanes.weight[slot]} * {self.quantum} is below "
                f"MIN_VISIT_CREDIT={MIN_VISIT_CREDIT}; raise the weight or "
                f"the quantum"
            )

    def _on_backlogged_slot(self, slot: int) -> None:
        if not self._in_active[slot]:
            self.lanes.deficit[slot] = 0
            self._activate(slot)

    def _on_slot_removed(self, slot: int) -> None:
        if self._in_active[slot]:
            if self._head == slot:
                self._head_charged = False
            self._deactivate(slot)

    def pull(self) -> Optional[Tuple[int, int, Any]]:
        ops = self._ops
        lanes = self.lanes
        deficit = lanes.deficit
        weight = lanes.weight
        q_count = lanes.q_count
        quantum = self.quantum
        while self._head >= 0:
            ops.bump()
            slot = self._head
            if not self._head_charged:
                # Exact (possibly fractional) credit — identical float
                # arithmetic to the object core.
                deficit[slot] += weight[slot] * quantum
                self._head_charged = True
            if lanes.head_size(slot) <= deficit[slot]:
                size, ref = lanes.pop(slot)
                deficit[slot] -= size
                if not q_count[slot]:
                    # Shreedhar-Varghese: leaving the active list resets
                    # the deficit — credit must not survive idling.
                    deficit[slot] = 0
                    self._deactivate(slot)
                    self._head_charged = False
                self._departed(size)
                return slot, size, ref
            # Credit exhausted for this round: rotate, keep the deficit.
            self._head = self._nxt[slot]
            self._head_charged = False
        return None


class FastWRRScheduler(_ActiveListScheduler):
    """Weighted Round Robin on flat columns (``wrr:fast``)."""

    name: ClassVar[str] = "wrr:fast"
    requires_integer_weights: ClassVar[bool] = True

    def __init__(self, *, op_counter: OpCounter = NULL_COUNTER) -> None:
        super().__init__(op_counter=op_counter)
        # Packets still owed to the flow at the head of the round.
        self._credit = 0

    def _on_backlogged_slot(self, slot: int) -> None:
        if not self._in_active[slot]:
            self._activate(slot)

    def _on_slot_removed(self, slot: int) -> None:
        if self._in_active[slot]:
            if self._head == slot:
                self._credit = 0
            self._deactivate(slot)

    def pull(self) -> Optional[Tuple[int, int, Any]]:
        ops = self._ops
        lanes = self.lanes
        q_count = lanes.q_count
        while self._head >= 0:
            ops.bump()
            slot = self._head
            if self._credit == 0:
                self._credit = int(lanes.weight[slot])
            size, ref = lanes.pop(slot)
            self._credit -= 1
            if not q_count[slot]:
                # Drained mid-burst: forfeit remaining credit.
                self._deactivate(slot)
                self._credit = 0
            elif self._credit == 0:
                # Burst complete: rotate to the tail.
                self._head = self._nxt[slot]
            self._departed(size)
            return slot, size, ref
        return None


class FastIWRRScheduler(FastScheduler):
    """Interleaved WRR on flat columns (``iwrr:fast``).

    The object twin (:class:`~repro.schedulers.iwrr.IWRRScheduler`)
    keeps two deques — the running round's flows and the next round's.
    Here both are circular doubly-linked lists threaded through one
    shared ``_nxt``/``_prv`` column pair (a slot lives in at most one
    ring at a time, tracked by ``_ring``), with per-slot integer credits
    in their own column. Service order and per-visit op counts are
    bit-identical to the object implementation.
    """

    name: ClassVar[str] = "iwrr:fast"
    requires_integer_weights: ClassVar[bool] = True

    _NONE, _CURRENT, _PENDING = 0, 1, 2

    def __init__(self, *, op_counter: OpCounter = NULL_COUNTER) -> None:
        super().__init__(op_counter=op_counter)
        self._nxt: List[int] = []
        self._prv: List[int] = []
        self._ring: List[int] = []    # _NONE | _CURRENT | _PENDING
        self._credit: List[int] = []
        self._cur_head = -1
        self._pend_head = -1

    def _on_slot_added(self, slot: int) -> None:
        while len(self._nxt) <= slot:
            self._nxt.append(-1)
            self._prv.append(-1)
            self._ring.append(self._NONE)
            self._credit.append(0)

    def _splice_tail(self, head: int, slot: int) -> int:
        """Append ``slot`` before ``head`` (= the ring's tail); new head."""
        if head < 0:
            self._nxt[slot] = self._prv[slot] = slot
            return slot
        tail = self._prv[head]
        self._nxt[tail] = slot
        self._prv[slot] = tail
        self._nxt[slot] = head
        self._prv[head] = slot
        return head

    def _unlink(self, head: int, slot: int) -> int:
        """Remove ``slot`` from its ring; returns the new head."""
        nxt = self._nxt[slot]
        if nxt == slot:
            new_head = -1
        else:
            prv = self._prv[slot]
            self._nxt[prv] = nxt
            self._prv[nxt] = prv
            new_head = nxt if head == slot else head
        self._nxt[slot] = self._prv[slot] = -1
        return new_head

    def _on_backlogged_slot(self, slot: int) -> None:
        if self._ring[slot] == self._NONE:
            self._ring[slot] = self._CURRENT
            self._credit[slot] = int(self.lanes.weight[slot])
            self._cur_head = self._splice_tail(self._cur_head, slot)

    def _on_slot_removed(self, slot: int) -> None:
        ring = self._ring[slot]
        if ring == self._CURRENT:
            self._cur_head = self._unlink(self._cur_head, slot)
        elif ring == self._PENDING:
            self._pend_head = self._unlink(self._pend_head, slot)
        self._ring[slot] = self._NONE
        self._credit[slot] = 0

    def pull(self) -> Optional[Tuple[int, int, Any]]:
        ops = self._ops
        lanes = self.lanes
        q_count = lanes.q_count
        weight = lanes.weight
        ring = self._ring
        credits = self._credit
        while self._cur_head >= 0 or self._pend_head >= 0:
            if self._cur_head < 0:
                # Round boundary: pending flows re-enter in order with
                # fresh credit (mirrors the object deque swap).
                while self._pend_head >= 0:
                    ops.bump()
                    slot = self._pend_head
                    self._pend_head = self._unlink(self._pend_head, slot)
                    credits[slot] = int(weight[slot])
                    ring[slot] = self._CURRENT
                    self._cur_head = self._splice_tail(self._cur_head, slot)
            ops.bump()
            slot = self._cur_head
            size, ref = lanes.pop(slot)
            credit = credits[slot] - 1
            credits[slot] = credit
            if not q_count[slot]:
                # Drained mid-round: forfeit the remaining credit.
                self._cur_head = self._unlink(self._cur_head, slot)
                ring[slot] = self._NONE
                credits[slot] = 0
            elif credit == 0:
                # Allocation spent: move to the pending ring's tail.
                self._cur_head = self._unlink(self._cur_head, slot)
                ring[slot] = self._PENDING
                self._pend_head = self._splice_tail(self._pend_head, slot)
            else:
                # One packet per cycle: advance the head (rotate(-1)).
                self._cur_head = self._nxt[slot]
            self._departed(size)
            return slot, size, ref
        return None


class FastRRScheduler(_ActiveListScheduler):
    """Plain round robin on flat columns (``rr:fast``)."""

    name: ClassVar[str] = "rr:fast"

    def _on_backlogged_slot(self, slot: int) -> None:
        if not self._in_active[slot]:
            self._activate(slot)

    def _on_slot_removed(self, slot: int) -> None:
        if self._in_active[slot]:
            self._deactivate(slot)

    def pull(self) -> Optional[Tuple[int, int, Any]]:
        ops = self._ops
        lanes = self.lanes
        q_count = lanes.q_count
        while self._head >= 0:
            ops.bump()
            # deque popleft + conditional re-append == serve the head and
            # advance; drop it from the ring when it drained.
            slot = self._head
            size, ref = lanes.pop(slot)
            if q_count[slot]:
                self._head = self._nxt[slot]
            else:
                self._deactivate(slot)
            self._departed(size)
            return slot, size, ref
        return None
