"""Lean object-free replay of the single-bottleneck benchmark scenario.

``python -m repro.perf``'s end-to-end benchmark historically spent most
of its wall time in the discrete-event machinery around the scheduler —
one :class:`~repro.net.engine.Event` per CBR emission, per serialization
completion, and per delivery, each carrying a heap-allocated
:class:`~repro.core.packet.Packet`. For the fixed-size CBR workload of
:func:`repro.bench.scenarios.single_bottleneck_network` none of that
generality is needed: every packet is ``packet_size`` bytes, so both
links have *constant* serialization times and the whole network reduces
to two exact tandem-queue recurrences:

* **access FIFO** (``src -> R``): arrivals in merged CBR-grid order;
  ``start = max(arrival, prev_finish)``; finish = start + ser_a; the
  packet reaches the bottleneck at finish + prop_a.
* **bottleneck port** (``R -> dst``): the flat-core scheduler under
  test, serving back-to-back — each serialization completion pulls the
  next packet at that instant. Between consecutive arrivals the loop
  serves whole batches through
  :meth:`~repro.fastpath.base.FastScheduler.pull_batch` (the WSS
  column-visit batching), so the per-packet Python overhead is a few
  list operations, with no Event or Packet objects anywhere.

Emission times use the same ``n * interval`` float grid as
:class:`~repro.net.sources.CBRSource` and the run-window cutoffs mirror
the event engine's ``run(until=...)`` semantics (an event at exactly
``until`` fires; later ones do not), so the replay is *semantically*
faithful: per-flow delivered packet and byte counts match the generic
:class:`~repro.net.scenario.Network` run exactly, and per-packet delays
match up to event tie-breaking at identical timestamps (asserted by
``tests/fastpath/test_netloop.py``).

This module is the benchmark backend for the ``>= 3x`` end-to-end
fastpath claim in ``BENCH_runtime.json``; it is not a general simulator.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.errors import ConfigurationError
from ..obs.flight import KIND_PULL, KIND_PUSH
from ..obs.trace import get_tracer
from ..schedulers.registry import create_scheduler
from .base import FastScheduler

__all__ = ["BottleneckRun", "run_single_bottleneck_fast"]


class BottleneckRun:
    """Per-flow delivery statistics of one lean bottleneck replay.

    Slot 0 is the tagged flow; slots ``1..n_flows`` are the background
    flows, matching ``"tag"`` / ``"bg<i>"`` in the generic scenario.
    """

    __slots__ = (
        "n_flows",
        "until",
        "emitted",
        "delivered",
        "delivered_bytes",
        "delay_sum",
        "delay_max",
        "forwarded",
        "terms_scanned",
    )

    def __init__(self, n_flows: int, until: float) -> None:
        self.n_flows = n_flows
        self.until = until
        self.emitted = [0] * (n_flows + 1)
        self.delivered = [0] * (n_flows + 1)
        self.delivered_bytes = [0] * (n_flows + 1)
        self.delay_sum = [0.0] * (n_flows + 1)
        self.delay_max = [0.0] * (n_flows + 1)
        #: Packets that finished serialising at the bottleneck (counts a
        #: final packet whose delivery lands past ``until``).
        self.forwarded = 0
        self.terms_scanned = 0

    @property
    def total_delivered(self) -> int:
        return sum(self.delivered)

    def mean_delay(self, slot: int) -> float:
        n = self.delivered[slot]
        return self.delay_sum[slot] / n if n else 0.0

    def __repr__(self) -> str:
        return (
            f"BottleneckRun(flows={self.n_flows}+tag, until={self.until}, "
            f"delivered={self.total_delivered})"
        )


def run_single_bottleneck_fast(
    n_flows: int,
    until: float,
    *,
    scheduler: str = "srr:fast",
    tagged_rate_bps: float = 32_000,
    background_rate_bps: float = 16_000,
    link_bps: float = 10_000_000,
    packet_size: int = 200,
    saturate: bool = True,
) -> BottleneckRun:
    """Replay ``single_bottleneck_network(scheduler, n_flows)`` leanly.

    Defaults mirror :func:`~repro.bench.scenarios.single_bottleneck_network`
    exactly (same rates, weights, link speeds, delays and overdrive).
    ``scheduler`` must resolve to a flat-core discipline — the loop runs
    entirely on the scalar ``push``/``pull_batch`` datapath.
    """
    reserved = tagged_rate_bps + n_flows * background_rate_bps
    if reserved > link_bps:
        raise ConfigurationError(
            f"reservations {reserved} exceed link {link_bps} bps"
        )
    if get_tracer() is not None:
        # No Packet objects and no per-hop events exist in this loop, so
        # a packet-lifecycle trace here could only ever be empty. Fail
        # loudly instead of silently producing no records.
        raise ConfigurationError(
            "packet tracing is not available in the lean fastpath loop: "
            "it has no per-hop events or Packet objects to trace. Run "
            "the scenario on the object engine for full traces, or use "
            "the flight recorder (repro.obs.flight / REPRO_FLIGHT) for "
            "sampled scheduler-boundary records on the fast core"
        )
    quantum_kwargs = (
        {"quantum": packet_size}
        if scheduler.partition(":")[0] in ("drr", "srr")
        else {}
    )
    sched = create_scheduler(scheduler, **quantum_kwargs)
    if not isinstance(sched, FastScheduler):
        raise ConfigurationError(
            f"{scheduler!r} is not a flat-core scheduler; the lean loop "
            "needs the scalar push/pull datapath"
        )
    unit = background_rate_bps  # the scenario's weight unit
    sched.add_flow("tag", max(1, round(tagged_rate_bps / unit)))
    for i in range(n_flows):
        sched.add_flow(f"bg{i}", 1)
    tag_slot = sched.slot_of("tag")
    bg_slots = [sched.slot_of(f"bg{i}") for i in range(n_flows)]

    run = BottleneckRun(n_flows, until)

    # CBR grids (identical float arithmetic to CBRSource: n * interval).
    bits = packet_size * 8.0
    tag_interval = bits / tagged_rate_bps
    overdrive = 1.15 if saturate else 1.0
    bg_interval = bits / (background_rate_bps * overdrive)

    # Link constants of the generic scenario.
    ser_a = bits / (10.0 * link_bps)     # access serialization
    prop_a = 0.0005                      # access propagation
    ser_b = bits / link_bps              # bottleneck serialization
    prop_b = 0.001                       # bottleneck propagation

    push = sched.push
    pull = sched.pull
    pull_batch = sched.pull_batch
    # When a flight recorder is armed, feed it the burst clock so its
    # records carry sim-time deltas (one attribute store per burst, not
    # per packet; None and untouched when recording is off). At sampling
    # shifts > 0 the loop also takes over push-side and batch-pull
    # sampling at *burst* granularity: arrivals come in known-size
    # bursts and back-to-back completions in known-size batches, so the
    # per-operation counter bump of the armed twin (~40ns x every
    # packet) is replaced by one counter jump per burst/batch against
    # the bare methods — zero per-packet cost, same 1-in-2**shift record
    # rate. Sampled batch items carry *call-averaged* ops/terms deltas
    # (monitoring fidelity); single pulls stay on the twin wrapper and
    # keep exact per-dequeue deltas. Exhaustive mode (shift 0) keeps the
    # fully instrumented twin paths, which E5's exact profiling depends
    # on.
    flight = sched._flight
    burst_sampling = flight is not None and flight.mask != 0
    if burst_sampling:
        base_cls = type(sched)._flight_base or type(sched)
        push = base_cls.push.__get__(sched)
        bare_pull = base_cls.pull.__get__(sched)
        pull_batch = base_cls.pull_batch.__get__(sched)
        flight_mask = flight.mask
        fast_ops = sched._ops
        lanes = sched.lanes
        q_count, lane_deficit = lanes.q_count, lanes.deficit
    emitted = run.emitted
    delivered = run.delivered
    delivered_bytes = run.delivered_bytes
    delay_sum = run.delay_sum
    delay_max = run.delay_max

    def deliver(slot: int, created: float, completed: float) -> None:
        at = completed + prop_b
        if at > until:
            return
        delivered[slot] += 1
        delivered_bytes[slot] += packet_size
        d = at - created
        delay_sum[slot] += d
        if d > delay_max[slot]:
            delay_max[slot] = d

    # Tandem state. Access FIFO: only its server-finish time matters
    # (order in == order out, constant size). Bottleneck: the packet on
    # the wire plus its completion time.
    access_free = 0.0
    busy = False
    wire_slot = -1
    wire_created = 0.0
    free_at = 0.0
    forwarded = 0

    # Merged arrival iteration: the tag grid against the shared
    # background grid (every bg point carries all n_flows packets, in
    # attach order — the same tie order the event engine produces).
    tag_n = 0
    tag_t: Optional[float] = 0.0
    bg_n = 0
    bg_t: Optional[float] = 0.0 if n_flows else None
    pending: List[Tuple[int, float]] = []  # (slot, emission time) burst

    while True:
        # Next emission instant and its packets (tag first on ties).
        if tag_t is None and bg_t is None:
            break
        pending.clear()
        if bg_t is None or (tag_t is not None and tag_t <= bg_t):
            t_emit = tag_t
            pending.append((tag_slot, t_emit))
            emitted[tag_slot] += 1
            tag_n += 1
            nxt = tag_n * tag_interval
            tag_t = nxt if nxt <= until else None
            if bg_t is not None and t_emit == bg_t:
                for s in bg_slots:
                    pending.append((s, t_emit))
                    emitted[s] += 1
                bg_n += 1
                nxt = bg_n * bg_interval
                bg_t = nxt if nxt <= until else None
        else:
            t_emit = bg_t
            for s in bg_slots:
                pending.append((s, t_emit))
                emitted[s] += 1
            bg_n += 1
            nxt = bg_n * bg_interval
            bg_t = nxt if nxt <= until else None

        if flight is not None:
            flight.now = t_emit
        skipped = 0
        sc = 0  # single pulls this burst (burst-mode bulk accounting)

        for slot, created in pending:
            # Access hop: FIFO serialization + propagation. The engine
            # only forwards the packet if both the completion and the
            # receive events land inside the run window.
            start = access_free if access_free > created else created
            fin = start + ser_a
            access_free = fin
            t = fin + prop_a
            if t > until:
                skipped += 1
                continue
            # Serve bottleneck completions up to the arrival instant.
            # Each completion delivers the wire packet and pulls the
            # next; runs of back-to-back completions go through one
            # batched pull (the WSS column-visit batching).
            while busy and free_at <= t:
                deliver(wire_slot, wire_created, free_at)
                forwarded += 1
                k = int((t - free_at) / ser_b)
                if k >= 1:
                    # The next k pulls complete at free_at + i*ser_b,
                    # all inside [free_at, t].
                    if burst_sampling:
                        # Bare batch call; account all its pulls in one
                        # counter jump and record any items that landed
                        # on a sampling point (lane state read
                        # post-batch, ops/terms averaged over the call
                        # — see docs/observability.md).
                        ops0 = fast_ops.count
                        terms0 = getattr(sched, "terms_scanned", 0)
                        batch = pull_batch(k)
                        nb = len(batch)
                        if nb:
                            n0 = flight.n
                            flight.n = n0 + nb
                            off = flight_mask - (n0 & flight_mask)
                            if off < nb:
                                ops_avg = (fast_ops.count - ops0) // nb
                                terms_avg = (
                                    getattr(sched, "terms_scanned", 0)
                                    - terms0
                                ) // nb
                                while off < nb:
                                    s, sz, _c = batch[off]
                                    flight.record(
                                        KIND_PULL, s, sz, ops_avg,
                                        terms_avg, lane_deficit[s],
                                        q_count[s],
                                    )
                                    off += flight_mask + 1
                    else:
                        batch = pull_batch(k)
                    for slot_i, _sz, created_i in batch:
                        free_at += ser_b
                        deliver(slot_i, created_i, free_at)
                        forwarded += 1
                    if len(batch) < k:
                        busy = False
                        break
                # The follow-up single pull is the hottest pull site;
                # in burst mode it runs the bare pull and is counted in
                # bulk once per burst (below) — no per-pull recorder
                # code at all. Sampled records then come only from
                # batch items and pushes, which carry ~90% of the
                # operation volume here. (The rare become-busy and
                # drain pulls stay on the twin wrapper and keep exact
                # per-dequeue sampling.)
                if burst_sampling:
                    sc += 1
                    nxt_p = bare_pull()
                else:
                    nxt_p = pull()
                if nxt_p is None:
                    busy = False
                else:
                    wire_slot, _sz, wire_created = nxt_p
                    free_at += ser_b
            push(slot, packet_size, created)
            if not busy:
                pulled = pull()
                # Just pushed, so the pull cannot come back empty.
                wire_slot, _sz, wire_created = pulled
                busy = True
                free_at = t + ser_b

        if burst_sampling:
            if sc:
                flight.n += sc
            # Account the whole burst's pushes in one counter jump, and
            # record the push(es) that landed on a sampling point. The
            # access FIFO preserves burst order and its finish times are
            # monotone, so skipped packets are always a suffix of
            # ``pending`` — the first ``pushed`` entries are exactly the
            # packets pushed above, in order. Lane state is read
            # post-burst (documented in docs/observability.md).
            pushed = len(pending) - skipped
            if pushed:
                n0 = flight.n
                flight.n = n0 + pushed
                off = flight_mask - (n0 & flight_mask)
                while off < pushed:
                    s = pending[off][0]
                    flight.record(
                        KIND_PUSH, s, packet_size, 0, 0,
                        lane_deficit[s], q_count[s],
                    )
                    off += flight_mask + 1

    # Post-arrival drain: completions keep firing while they land inside
    # the run window.
    while busy and free_at <= until:
        deliver(wire_slot, wire_created, free_at)
        forwarded += 1
        nxt_p = pull()
        if nxt_p is None:
            busy = False
        else:
            wire_slot, _sz, wire_created = nxt_p
            free_at += ser_b

    run.forwarded = forwarded
    run.terms_scanned = getattr(sched, "terms_scanned", 0)
    return run
