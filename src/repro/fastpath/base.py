"""Base class for flat-core schedulers.

:class:`FastScheduler` plays the role
:class:`~repro.core.interfaces.FlowTableScheduler` plays for the object
core: flow registration/validation, exact backlog accounting, and the
:class:`~repro.core.interfaces.PacketScheduler` contract — but all
per-flow state lives in :class:`~repro.fastpath.state.FlowLanes` columns
instead of per-flow objects.

Two datapaths share one implementation:

``enqueue(packet)`` / ``dequeue() -> Packet``
    The registry-compatible object datapath. The packet object rides the
    ring as the payload reference, so the very same object comes back out
    of ``dequeue`` — uids, timestamps and identities are preserved, which
    is what makes fast-vs-object conformance digests comparable and lets
    any :class:`~repro.net.port.OutputPort` adopt a fast core unchanged.

``push(slot, size, ref)`` / ``pull() -> (slot, size, ref)``
    The scalar datapath: no :class:`~repro.core.packet.Packet` exists at
    all. ``ref`` is whatever the caller wants back (a timestamp, a seq, a
    tuple, or ``None``); the lean bottleneck loop
    (:mod:`repro.fastpath.netloop`) and the object-free perf benchmarks
    live here, materialising packets only at trace/sink boundaries.

Subclasses implement ``pull`` plus three slot hooks mirroring the object
core's flow hooks (``_on_slot_added`` / ``_on_slot_removed`` /
``_on_backlogged_slot``) and keep elementary-op accounting via the same
:class:`~repro.core.opcount.OpCounter` protocol, bumping at the same
algorithmic steps as their object twins — so op-count profiles, livelock
watchdogs, and invariant guards read identically across cores.
"""

from __future__ import annotations

from typing import Any, ClassVar, Hashable, Iterable, List, Optional, Tuple

from ..core.errors import DuplicateFlowError, InvalidWeightError
from ..core.flow import check_weight
from ..core.interfaces import PacketScheduler
from ..core.opcount import NULL_COUNTER, OpCounter
from ..core.packet import Packet
from .state import FlowLanes, FlowView

__all__ = ["FastScheduler"]


class FastScheduler(PacketScheduler):
    """Column-backed scheduler base (see module docstring)."""

    name: ClassVar[str] = "fast"
    #: Marks flat-core schedulers for layers that special-case them.
    is_fastpath: ClassVar[bool] = True

    def __init__(self, *, op_counter: OpCounter = NULL_COUNTER) -> None:
        self.lanes = FlowLanes()
        self._backlog_packets = 0
        self._backlog_bytes = 0
        self._ops = op_counter

    # -- flow management ---------------------------------------------------

    def add_flow(
        self,
        flow_id: Hashable,
        weight: float = 1,
        *,
        max_queue: Optional[int] = None,
    ) -> None:
        if flow_id in self.lanes.slot_of:
            raise DuplicateFlowError(flow_id)
        if self.requires_integer_weights:
            weight = check_weight(weight)
        else:
            if isinstance(weight, bool) or not isinstance(weight, (int, float)):
                raise InvalidWeightError(f"weight must be numeric, got {weight!r}")
            if weight <= 0:
                raise InvalidWeightError(f"weight must be > 0, got {weight}")
            weight = float(weight)
        slot = self.lanes.alloc(flow_id, weight, max_queue=max_queue)
        try:
            self._on_slot_added(slot)
        except Exception:
            self.lanes.free(slot)
            raise

    def remove_flow(self, flow_id: Hashable) -> int:
        slot = self.lanes.lookup(flow_id)
        self._on_slot_removed(slot)
        dropped = self.lanes.q_count[slot]
        self._backlog_packets -= dropped
        self._backlog_bytes -= self.lanes.q_bytes[slot]
        self.lanes.free(slot)
        return dropped

    def has_flow(self, flow_id: Hashable) -> bool:
        return flow_id in self.lanes.slot_of

    def flow_ids(self) -> Iterable[Hashable]:
        return self.lanes.slot_of.keys()

    def flow_state(self, flow_id: Hashable) -> FlowView:
        """Column-backed stand-in for the object core's ``flow_state``."""
        return FlowView(self.lanes, self.lanes.lookup(flow_id))

    def slot_of(self, flow_id: Hashable) -> int:
        """The flow's column index (for the scalar datapath)."""
        return self.lanes.lookup(flow_id)

    @property
    def flow_count(self) -> int:
        return self.lanes.flow_count

    # -- object datapath ---------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        lanes = self.lanes
        slot = lanes.lookup(packet.flow_id)
        was_backlogged = lanes.q_count[slot] > 0
        if not lanes.push(slot, packet.size, packet):
            return False
        self._backlog_packets += 1
        self._backlog_bytes += packet.size
        if not was_backlogged:
            self._on_backlogged_slot(slot)
        return True

    def dequeue(self) -> Optional[Packet]:
        pulled = self.pull()
        if pulled is None:
            return None
        return pulled[2]

    # -- scalar datapath ---------------------------------------------------

    def push(self, slot: int, size: int, ref: Any = None) -> bool:
        """Scalar enqueue: no packet object, ``ref`` rides the ring."""
        lanes = self.lanes
        was_backlogged = lanes.q_count[slot] > 0
        if not lanes.push(slot, size, ref):
            return False
        self._backlog_packets += 1
        self._backlog_bytes += size
        if not was_backlogged:
            self._on_backlogged_slot(slot)
        return True

    def pull(self) -> Optional[Tuple[int, int, Any]]:
        """Serve the next packet as ``(slot, size, ref)`` (or ``None``)."""
        raise NotImplementedError

    def pull_batch(self, budget: int) -> List[Tuple[int, int, Any]]:
        """Serve up to ``budget`` packets in one call.

        Semantically identical to ``budget`` repeated :meth:`pull` calls
        (the loop walks the live structures, so interleaved arrivals are
        observed exactly as the object core would); subclasses override
        it with a fused loop that amortises per-call overhead across a
        whole service burst (e.g. one WSS column visit).
        """
        out: List[Tuple[int, int, Any]] = []
        pull = self.pull
        for _ in range(budget):
            pulled = pull()
            if pulled is None:
                break
            out.append(pulled)
        return out

    def _departed(self, size: int) -> None:
        """Account one departing packet (subclass pull() helper)."""
        self._backlog_packets -= 1
        self._backlog_bytes -= size

    # -- accounting --------------------------------------------------------

    @property
    def backlog(self) -> int:
        return self._backlog_packets

    @property
    def backlog_bytes(self) -> int:
        return self._backlog_bytes

    # -- subclass hooks ----------------------------------------------------

    def _on_slot_added(self, slot: int) -> None:
        """Hook: a flow landed in ``slot`` (default: nothing)."""

    def _on_slot_removed(self, slot: int) -> None:
        """Hook: ``slot`` is being torn down (columns still intact)."""

    def _on_backlogged_slot(self, slot: int) -> None:
        """Hook: ``slot`` went empty -> backlogged (default: nothing)."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(flows={self.lanes.flow_count}, "
            f"backlog={self._backlog_packets})"
        )
