"""Base class for flat-core schedulers.

:class:`FastScheduler` plays the role
:class:`~repro.core.interfaces.FlowTableScheduler` plays for the object
core: flow registration/validation, exact backlog accounting, and the
:class:`~repro.core.interfaces.PacketScheduler` contract — but all
per-flow state lives in :class:`~repro.fastpath.state.FlowLanes` columns
instead of per-flow objects.

Two datapaths share one implementation:

``enqueue(packet)`` / ``dequeue() -> Packet``
    The registry-compatible object datapath. The packet object rides the
    ring as the payload reference, so the very same object comes back out
    of ``dequeue`` — uids, timestamps and identities are preserved, which
    is what makes fast-vs-object conformance digests comparable and lets
    any :class:`~repro.net.port.OutputPort` adopt a fast core unchanged.

``push(slot, size, ref)`` / ``pull() -> (slot, size, ref)``
    The scalar datapath: no :class:`~repro.core.packet.Packet` exists at
    all. ``ref`` is whatever the caller wants back (a timestamp, a seq, a
    tuple, or ``None``); the lean bottleneck loop
    (:mod:`repro.fastpath.netloop`) and the object-free perf benchmarks
    live here, materialising packets only at trace/sink boundaries.

Subclasses implement ``pull`` plus three slot hooks mirroring the object
core's flow hooks (``_on_slot_added`` / ``_on_slot_removed`` /
``_on_backlogged_slot``) and keep elementary-op accounting via the same
:class:`~repro.core.opcount.OpCounter` protocol, bumping at the same
algorithmic steps as their object twins — so op-count profiles, livelock
watchdogs, and invariant guards read identically across cores.
"""

from __future__ import annotations

from typing import Any, ClassVar, Hashable, Iterable, List, Optional, Tuple

from ..core.errors import DuplicateFlowError, InvalidWeightError
from ..core.flow import check_weight
from ..core.interfaces import PacketScheduler
from ..core.opcount import NULL_COUNTER, OpCounter
from ..core.packet import Packet
from ..obs.flight import KIND_PULL, KIND_PUSH, get_flight_recorder
from ..obs.trace import get_tracer
from .state import FlowLanes, FlowView

__all__ = ["FastScheduler"]


class FastScheduler(PacketScheduler):
    """Column-backed scheduler base (see module docstring)."""

    name: ClassVar[str] = "fast"
    #: Marks flat-core schedulers for layers that special-case them.
    is_fastpath: ClassVar[bool] = True

    #: Flight recorder / boundary tracer, ``None`` as *class* attributes
    #: so the unarmed hot path pays nothing at all: arming a flight
    #: recorder swaps the instance onto a cached *armed twin* subclass
    #: (see :func:`_flight_twin`) whose ``push``/``pull``/``pull_batch``
    #: carry the sampling code. Instance-``__dict__`` method shadowing
    #: was measured to cost ~40ns on *every* ``self.x`` access of the
    #: shadowed instance (CPython 3.11 materialises the dict and drops
    #: out of the shared-keys/inline-cache fast path), which the class
    #: swap avoids entirely — the twin's methods specialise as well as
    #: the bare ones.
    _flight: ClassVar[Optional[Any]] = None
    _tracer: ClassVar[Optional[Any]] = None
    #: On armed twin classes, the bare class they were derived from
    #: (used by ``FlightRecorder.disarm`` to restore the instance).
    _flight_base: ClassVar[Optional[type]] = None

    def __new__(cls, *args: Any, **kwargs: Any) -> "FastScheduler":
        # When a process-global recorder is armed, instances are *born*
        # as the armed twin class: assigning __class__ after the fact
        # (like the post-hoc ``FlightRecorder.arm`` path does) makes
        # CPython materialise the instance dict, costing ~40ns on every
        # subsequent ``self.x`` access — far more than the sampling.
        if cls._flight_base is None and get_flight_recorder() is not None:
            cls = _flight_twin(cls)
        return super().__new__(cls)

    def __init__(self, *, op_counter: OpCounter = NULL_COUNTER) -> None:
        self.lanes = FlowLanes()
        self._backlog_packets = 0
        self._backlog_bytes = 0
        self._ops = op_counter
        tracer = get_tracer()
        recorder = get_flight_recorder()
        if tracer is not None:
            self._tracer = tracer
            self._trace_n = 0
            # Boundary records sample on the recorder's mask when one is
            # armed, else on every packet (the trace ring is bounded).
            self._trace_mask = recorder.mask if recorder is not None else 0
            self.push = self._observed_push
        if recorder is not None:
            self._arm_flight(recorder)
        elif tracer is not None:
            # Dequeue-side boundary records need the shadowed pull even
            # without a recorder; batches fall back to the per-pull loop
            # so every served packet crosses the traced boundary.
            self._bare_pull = type(self).pull.__get__(self)
            self.pull = self._observed_pull
            self.pull_batch = self._unfused_pull_batch

    # -- observability arming ----------------------------------------------

    def _arm_flight(self, recorder: Any) -> None:
        """Attach ``recorder`` by swapping onto the armed twin class.

        The twin (cached per bare class) carries the sampling variants of
        ``push``/``pull`` — and ``pull_batch`` when the class ships a
        fused ``_observed_pull_batch``. The instance ``__dict__`` gains
        exactly one data key (``_flight``), never a method shadow.
        """
        self._flight = recorder
        twin = _flight_twin(type(self))
        if twin is not type(self):
            self.__class__ = twin

    def _observed_pull(self) -> Optional[Tuple[int, int, Any]]:
        """``pull`` with boundary tracing (tracer-only arming).

        Bound over the class method as an instance attribute when a
        tracer is armed without a flight recorder; with a recorder the
        armed twin's ``pull`` emits the trace records instead.
        """
        pulled = self._bare_pull()
        if pulled is not None:
            self._trace_n = n = self._trace_n + 1
            if not n & self._trace_mask:
                slot = pulled[0]
                self._tracer.emit(
                    "dequeue", 0.0, flow=self.lanes.fids[slot], slot=slot,
                    size=pulled[1], core="fast",
                )
        return pulled

    def _unfused_pull_batch(self, budget: int) -> List[Tuple[int, int, Any]]:
        """The base per-pull batch loop, bound over a fused override."""
        return FastScheduler.pull_batch(self, budget)

    def observe_lanes(self, registry: Any, **labels: Any) -> None:
        """Export :class:`FlowLanes` counters into ``registry``.

        Labels default to the scheduler name so fast-core runs populate
        the same ``RunResult.obs`` metrics block object-core runs do.
        """
        labels.setdefault("scheduler", self.name)
        self.lanes.observe(registry, **labels)

    # -- flow management ---------------------------------------------------

    def add_flow(
        self,
        flow_id: Hashable,
        weight: float = 1,
        *,
        max_queue: Optional[int] = None,
    ) -> None:
        if flow_id in self.lanes.slot_of:
            raise DuplicateFlowError(flow_id)
        if self.requires_integer_weights:
            weight = check_weight(weight)
        else:
            if isinstance(weight, bool) or not isinstance(weight, (int, float)):
                raise InvalidWeightError(f"weight must be numeric, got {weight!r}")
            if weight <= 0:
                raise InvalidWeightError(f"weight must be > 0, got {weight}")
            weight = float(weight)
        slot = self.lanes.alloc(flow_id, weight, max_queue=max_queue)
        try:
            self._on_slot_added(slot)
        except Exception:
            self.lanes.free(slot)
            raise

    def remove_flow(self, flow_id: Hashable) -> int:
        slot = self.lanes.lookup(flow_id)
        self._on_slot_removed(slot)
        dropped = self.lanes.q_count[slot]
        self._backlog_packets -= dropped
        self._backlog_bytes -= self.lanes.q_bytes[slot]
        self.lanes.free(slot)
        return dropped

    def has_flow(self, flow_id: Hashable) -> bool:
        return flow_id in self.lanes.slot_of

    def flow_ids(self) -> Iterable[Hashable]:
        return self.lanes.slot_of.keys()

    def flow_state(self, flow_id: Hashable) -> FlowView:
        """Column-backed stand-in for the object core's ``flow_state``."""
        return FlowView(self.lanes, self.lanes.lookup(flow_id))

    def slot_of(self, flow_id: Hashable) -> int:
        """The flow's column index (for the scalar datapath)."""
        return self.lanes.lookup(flow_id)

    @property
    def flow_count(self) -> int:
        return self.lanes.flow_count

    # -- object datapath ---------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        lanes = self.lanes
        slot = lanes.lookup(packet.flow_id)
        was_backlogged = lanes.q_count[slot] > 0
        if not lanes.push(slot, packet.size, packet):
            return False
        self._backlog_packets += 1
        self._backlog_bytes += packet.size
        if not was_backlogged:
            self._on_backlogged_slot(slot)
        recorder = self._flight
        if recorder is not None:
            recorder.n = n = recorder.n + 1
            if not n & recorder.mask:
                recorder.record(
                    KIND_PUSH, slot, packet.size, 0, 0,
                    lanes.deficit[slot], lanes.q_count[slot],
                )
        tracer = self._tracer
        if tracer is not None:
            self._trace_n = n = self._trace_n + 1
            if not n & self._trace_mask:
                tracer.emit(
                    "enqueue", recorder.now if recorder is not None else 0.0,
                    flow=packet.flow_id, uid=packet.uid, slot=slot,
                    size=packet.size, core="fast",
                )
        return True

    def dequeue(self) -> Optional[Packet]:
        pulled = self.pull()
        if pulled is None:
            return None
        return pulled[2]

    # -- scalar datapath ---------------------------------------------------

    def push(self, slot: int, size: int, ref: Any = None) -> bool:
        """Scalar enqueue: no packet object, ``ref`` rides the ring.

        Carries no instrumentation at all — flight sampling lives in the
        armed twin's ``push`` (:func:`_flight_push`, kept in sync with
        this body) so the unarmed path pays nothing.
        """
        lanes = self.lanes
        was_backlogged = lanes.q_count[slot] > 0
        if not lanes.push(slot, size, ref):
            return False
        self._backlog_packets += 1
        self._backlog_bytes += size
        if not was_backlogged:
            self._on_backlogged_slot(slot)
        return True

    def _observed_push(self, slot: int, size: int, ref: Any = None) -> bool:
        """``push`` with boundary tracing, bound when a tracer is armed
        (keeps the bare ``push`` untouched when tracing is off).

        Dispatches through ``type(self).push`` so that on a flight-armed
        twin the sampled push still runs underneath the trace shim."""
        if not type(self).push(self, slot, size, ref):
            return False
        self._trace_n = n = self._trace_n + 1
        if not n & self._trace_mask:
            recorder = self._flight
            self._tracer.emit(
                "enqueue", recorder.now if recorder is not None else 0.0,
                flow=self.lanes.fids[slot], slot=slot, size=size,
                core="fast",
            )
        return True

    def pull(self) -> Optional[Tuple[int, int, Any]]:
        """Serve the next packet as ``(slot, size, ref)`` (or ``None``)."""
        raise NotImplementedError

    def pull_batch(self, budget: int) -> List[Tuple[int, int, Any]]:
        """Serve up to ``budget`` packets in one call.

        Semantically identical to ``budget`` repeated :meth:`pull` calls
        (the loop walks the live structures, so interleaved arrivals are
        observed exactly as the object core would); subclasses override
        it with a fused loop that amortises per-call overhead across a
        whole service burst (e.g. one WSS column visit).
        """
        out: List[Tuple[int, int, Any]] = []
        pull = self.pull
        for _ in range(budget):
            pulled = pull()
            if pulled is None:
                break
            out.append(pulled)
        return out

    def _departed(self, size: int) -> None:
        """Account one departing packet (subclass pull() helper)."""
        self._backlog_packets -= 1
        self._backlog_bytes -= size

    # -- accounting --------------------------------------------------------

    @property
    def backlog(self) -> int:
        return self._backlog_packets

    @property
    def backlog_bytes(self) -> int:
        return self._backlog_bytes

    # -- subclass hooks ----------------------------------------------------

    def _on_slot_added(self, slot: int) -> None:
        """Hook: a flow landed in ``slot`` (default: nothing)."""

    def _on_slot_removed(self, slot: int) -> None:
        """Hook: ``slot`` is being torn down (columns still intact)."""

    def _on_backlogged_slot(self, slot: int) -> None:
        """Hook: ``slot`` went empty -> backlogged (default: nothing)."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(flows={self.lanes.flow_count}, "
            f"backlog={self._backlog_packets})"
        )


# -- flight-armed twin classes -------------------------------------------------
#
# Arming a FlightRecorder must not slow down *anything else* about the
# instance. Binding instrumented methods into the instance __dict__ (the
# InvariantGuard trick) turned out to do exactly that: CPython 3.11
# materialises the instance dict when methods are shadowed, every
# ``self.x`` load on the instance falls off the shared-keys inline-cache
# fast path, and the armed scheduler pays ~40ns per attribute access —
# in *bare* code that never looks at the recorder. Swapping the
# instance's __class__ onto a cached subclass whose methods carry the
# sampling keeps the dict pristine and lets the twin's methods
# specialise exactly like the bare ones.

def _flight_push(self: "FastScheduler", slot: int, size: int,
                 ref: Any = None) -> bool:
    """``FastScheduler.push`` plus the sampling bump (armed twins only).

    A full copy of the bare body rather than a delegating wrapper: one
    extra Python-level call per push would cost more than the sampling
    itself. Keep in sync with :meth:`FastScheduler.push`.
    """
    lanes = self.lanes
    was_backlogged = lanes.q_count[slot] > 0
    if not lanes.push(slot, size, ref):
        return False
    self._backlog_packets += 1
    self._backlog_bytes += size
    if not was_backlogged:
        self._on_backlogged_slot(slot)
    recorder = self._flight
    recorder.n = n = recorder.n + 1
    if not n & recorder.mask:
        recorder.record(
            KIND_PUSH, slot, size, 0, 0,
            lanes.deficit[slot], lanes.q_count[slot],
        )
    return True


def _make_flight_pull(bare_pull: Any) -> Any:
    """Build the armed twin's ``pull`` over the bare class ``pull``."""

    def pull(self: "FastScheduler",
             _bare: Any = bare_pull) -> Optional[Tuple[int, int, Any]]:
        recorder = self._flight
        recorder.n = n = recorder.n + 1
        if n & recorder.mask:
            return _bare(self)
        ops = self._ops
        ops_before = ops.count
        terms_before = getattr(self, "terms_scanned", 0)
        pulled = _bare(self)
        if pulled is not None:
            slot = pulled[0]
            lanes = self.lanes
            recorder.record(
                KIND_PULL, slot, pulled[1], ops.count - ops_before,
                getattr(self, "terms_scanned", 0) - terms_before,
                lanes.deficit[slot], lanes.q_count[slot],
            )
            tracer = self._tracer
            if tracer is not None:
                tracer.emit(
                    "dequeue", recorder.now, flow=lanes.fids[slot],
                    slot=slot, size=pulled[1], core="fast",
                )
        return pulled

    pull.__doc__ = (
        "``pull`` with flight sampling: a counter bump and one mask test "
        "per call; a sampled call brackets the bare pull with op-count "
        "baselines and stores one record."
    )
    return pull


#: Cache of bare class -> armed twin (one twin per scheduler class).
_FLIGHT_TWINS: dict = {}


def _flight_twin(cls: type) -> type:
    """The flight-armed twin class for ``cls`` (cached; idempotent)."""
    if cls._flight_base is not None:
        return cls  # already a twin
    twin = _FLIGHT_TWINS.get(cls)
    if twin is None:
        ns: dict = {
            "_flight_base": cls,
            "push": _flight_push,
            "pull": _make_flight_pull(cls.pull),
            "__module__": cls.__module__,
        }
        # A class shipping a fused batch loop also ships its chunked
        # sampling variant; classes without one inherit the base
        # per-pull loop, which routes through the twin's pull.
        observed_batch = getattr(cls, "_observed_pull_batch", None)
        if observed_batch is not None:
            ns["pull_batch"] = observed_batch
        twin = type("_Flight" + cls.__name__, (cls,), ns)
        _FLIGHT_TWINS[cls] = twin
    return twin
