"""Differential conformance fuzzer for every registered scheduler.

Seeded random scenarios (:mod:`.scenario`) are driven through each
scheduler variant (:mod:`.runner`) and judged by three oracle families
(:mod:`.oracles`): conservation laws, fluid-reference lag bounds, and
metamorphic invariances. Failures are greedily shrunk (:mod:`.shrink`)
into minimal replayable repro artifacts (:mod:`.corpus`).

Entry point: ``python -m repro.conformance`` (see :mod:`.cli`).
"""

from .corpus import (
    DEFAULT_RESULTS_DIR,
    corpus_seeds,
    load_repro_artifact,
    write_repro_artifact,
)
from .oracles import Violation, check_scenario, fluid_lag, lag_bound
from .runner import (
    VARIANTS,
    Departure,
    LivelockError,
    ScenarioRun,
    Variant,
    run_scenario,
    variant_by_name,
)
from .scenario import FlowDef, Scenario, generate_scenario
from .shrink import shrink

__all__ = [
    "DEFAULT_RESULTS_DIR",
    "Departure",
    "FlowDef",
    "LivelockError",
    "Scenario",
    "ScenarioRun",
    "VARIANTS",
    "Variant",
    "Violation",
    "check_scenario",
    "corpus_seeds",
    "fluid_lag",
    "generate_scenario",
    "lag_bound",
    "load_repro_artifact",
    "run_scenario",
    "shrink",
    "variant_by_name",
    "write_repro_artifact",
]
