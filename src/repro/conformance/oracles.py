"""The three oracle families of the conformance fuzzer.

1. **Conservation laws** — properties every work-conserving packet
   scheduler must satisfy on any input: no livelock (progress per
   ``dequeue``), no idling with backlog, no service to flows with nothing
   queued (phantom packets), per-flow FIFO order, and exact byte
   accounting (accepted = dequeued + churn-dropped + residual, with zero
   residual after a full drain).

2. **Fluid-reference lag** — over the scenario's final drain (constant
   membership, no arrivals) each flow's cumulative service is compared to
   the GPS/weighted-fluid ideal computed by exact waterfilling over the
   same departure sequence. The maximum per-flow lag behind the fluid
   must stay under the discipline's analytic bound (SRR Lemma 2's
   one-round spread, the DRR frame bound of Stiliadis-Varma — the family
   Tabatabaee & Le Boudec's network-calculus analyses tightened — and the
   Parekh-Gallager constant for WFQ), expressed in the discipline's
   native service unit: *bytes* for byte-credit and timestamp schedulers,
   *packets* for the per-packet round-robin family. Virtual Clock is
   exempt: punishing a previously over-served flow without bound is its
   documented design, not a bug. FIFO is exempt because it provides no
   isolation at all (that is its point).

3. **Metamorphic invariances** — transformed replays that must agree
   with the original run: flow-ID relabeling (bit-identical service
   order), uniform weight doubling (bit-identical for normalised-share
   disciplines, bound-equivalent for frame-based ones), and the ``heap``
   vs ``calendar`` event-engine replay of a derived network scenario
   (bit-identical delivery records). ``--jobs 1`` vs ``--jobs N``
   identity is checked one level up, by the CLI, over result digests.

Bound constants carry a deliberate safety factor (they are upper
envelopes, not tight constants); the tuning notes next to each formula
record the maximum ratio observed across large randomized sweeps, so
future tightening has data to lean on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from .runner import (
    OP_BUDGET,
    ScenarioRun,
    Variant,
    run_scenario,
    variant_by_name,
)
from .scenario import FlowDef, Scenario

__all__ = [
    "Violation",
    "bounds_certification_run",
    "check_bounds",
    "check_conservation",
    "check_fluid_lag",
    "check_metamorphic",
    "check_engine_equivalence",
    "check_scenario",
    "fluid_lag",
    "lag_bound",
]


@dataclass(frozen=True)
class Violation:
    """One oracle failure, structured for artifacts and shrinking."""

    family: str          # "conservation" | "lag" | "metamorphic"
    check: str           # specific oracle, e.g. "livelock", "fifo_order"
    variant: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "check": self.check,
            "variant": self.variant,
            "message": self.message,
            "details": {k: repr(v) for k, v in self.details.items()},
        }


# ---------------------------------------------------------------------------
# Family 1: conservation laws
# ---------------------------------------------------------------------------

def check_conservation(
    variant: Variant, scenario: Scenario, run: ScenarioRun
) -> List[Violation]:
    out: List[Violation] = []

    def fail(check: str, message: str, **details: Any) -> None:
        out.append(Violation("conservation", check, variant.name,
                             message, details))

    if run.livelock_at is not None:
        fail(
            "livelock",
            f"dequeue() exceeded the op budget at op {run.livelock_at} "
            f"while backlog remained",
            op=run.livelock_at,
        )
        return out  # the run is truncated; downstream numbers are moot
    if run.idle_with_backlog is not None:
        fail(
            "work_conservation",
            f"dequeue() returned None with backlog > 0 at op "
            f"{run.idle_with_backlog}",
            op=run.idle_with_backlog,
        )
    # Phantom / duplicated service and per-flow FIFO order.
    served: Dict[int, int] = {}
    last_uid_by_flow: Dict[int, int] = {}
    for dep in run.departures:
        served[dep.uid] = served.get(dep.uid, 0) + 1
        expected = run.accepted_uids.get(dep.uid)
        if expected is None:
            fail(
                "phantom_service",
                f"departed packet uid={dep.uid} (flow index "
                f"{dep.flow_index}) was never accepted by the scheduler "
                f"(or belonged to a removed flow)",
                uid=dep.uid,
            )
            continue
        if expected != (dep.flow_index, dep.size):
            fail(
                "identity",
                f"departed packet uid={dep.uid} mutated: accepted as "
                f"{expected}, departed as {(dep.flow_index, dep.size)}",
                uid=dep.uid,
            )
        prev = last_uid_by_flow.get(dep.flow_index)
        if prev is not None and dep.uid < prev:
            fail(
                "fifo_order",
                f"flow index {dep.flow_index} served uid={dep.uid} after "
                f"uid={prev} (uids are per-flow monotone in enqueue order)",
                flow=dep.flow_index,
            )
        last_uid_by_flow[dep.flow_index] = dep.uid
    dupes = {uid: n for uid, n in served.items() if n > 1}
    if dupes:
        fail(
            "duplicate_service",
            f"{len(dupes)} packet uid(s) departed more than once",
            uids=sorted(dupes)[:8],
        )
    # Byte conservation over the whole run.
    expected_bytes = run.dequeued_bytes + run.dropped_bytes \
        + run.residual_backlog_bytes
    if run.accepted_bytes != expected_bytes:
        fail(
            "byte_conservation",
            f"accepted {run.accepted_bytes}B != dequeued "
            f"{run.dequeued_bytes}B + churn-dropped {run.dropped_bytes}B "
            f"+ residual {run.residual_backlog_bytes}B",
        )
    if run.residual_backlog_packets or run.residual_backlog_bytes:
        fail(
            "drain_residual",
            f"scheduler reports backlog "
            f"{run.residual_backlog_packets}p/"
            f"{run.residual_backlog_bytes}B after a full drain",
        )
    if run.residual_backlog_packets < 0 or run.residual_backlog_bytes < 0:
        fail("negative_backlog", "backlog accounting went negative")
    return out


# ---------------------------------------------------------------------------
# Family 2: fluid-reference lag
# ---------------------------------------------------------------------------

#: Variants measured in packets (per-packet round robin) vs bytes
#: (byte-credit / timestamp). Absent => exempt from the lag oracle.
_LAG_UNIT: Dict[str, str] = {
    "srr": "packets",
    "wrr": "packets",
    "iwrr": "packets",
    "rr": "packets",
    "rrr": "packets",
    "g3": "packets",
    "srr:deficit": "bytes",
    "drr": "bytes",
    "wfq": "bytes",
    "wf2q+": "bytes",
    "scfq": "bytes",
    "stfq": "bytes",
    "strr": "bytes",
    # "vc": exempt — unbounded punishment of previously over-served
    #        flows is Virtual Clock's documented behaviour.
    # "fifo": exempt — provides no isolation by design.
}


def _lag_weights(
    variant: Variant, scenario: Scenario, unit: str
) -> Dict[int, float]:
    """Per-flow-index fluid weights in the variant's service unit."""
    weights: Dict[int, float] = {}
    for i, flow in enumerate(scenario.flows):
        if variant.name == "rr":
            weights[i] = 1.0
        elif unit == "packets":
            weights[i] = float(flow.weight)
        else:
            weights[i] = float(variant.flow_weight(flow))
    return weights


def fluid_lag(
    run: ScenarioRun, weights: Dict[int, float], unit: str
) -> Dict[int, float]:
    """Max per-flow lag behind the GPS fluid over the final drain.

    The fluid reference is exact waterfilling: the drain-start backlogs
    are served at rates proportional to ``weights`` among flows whose
    fluid backlog is still positive, and the fluid system is advanced by
    exactly the work each real departure transmits (its size in bytes, or
    one packet). Lag_i(t) = fluid_served_i(t) - real_served_i(t); flows
    *ahead* of the fluid contribute zero.
    """
    backlog = dict(
        run.drain_backlog_bytes if unit == "bytes"
        else run.drain_backlog_packets
    )
    fluid_remaining = {
        i: float(b) for i, b in backlog.items() if b > 0 and weights.get(i)
    }
    fluid_served = {i: 0.0 for i in fluid_remaining}
    real_served = {i: 0.0 for i in fluid_remaining}
    max_lag = {i: 0.0 for i in fluid_remaining}
    for dep in run.departures[run.final_drain_start:]:
        work = float(dep.size if unit == "bytes" else 1)
        # Advance the fluid by `work` units (waterfilling).
        while work > 1e-12 and fluid_remaining:
            active_w = sum(weights[i] for i in fluid_remaining)
            # Work needed to drain the nearest-exhaustion flow.
            limit = min(
                fluid_remaining[i] * active_w / weights[i]
                for i in fluid_remaining
            )
            step = min(work, limit)
            drained = []
            for i in list(fluid_remaining):
                share = step * weights[i] / active_w
                fluid_served[i] += share
                fluid_remaining[i] -= share
                if fluid_remaining[i] <= 1e-9:
                    drained.append(i)
            for i in drained:
                del fluid_remaining[i]
            work -= step
        if dep.flow_index in real_served:
            real_served[dep.flow_index] += (
                dep.size if unit == "bytes" else 1
            )
        for i in max_lag:
            lag = fluid_served[i] - real_served[i]
            if lag > max_lag[i]:
                max_lag[i] = lag
    return max_lag


def lag_bound(
    variant: Variant,
    scenario: Scenario,
    weights: Dict[int, float],
    flow_index: int,
    unit: str,
) -> float:
    """Analytic lag envelope for one flow, in the variant's service unit.

    Formulas follow the per-discipline service-curve results (see
    :mod:`repro.analysis.bounds` for the delay-domain versions) with the
    time axis replaced by transmitted work, plus a small discreteness
    slack: one extra max-packet/frame term absorbs the arbitrary phase at
    which the drain starts, and SRR's restart-on-order-change policy can
    perturb one extra round per order change (at most one per drained
    flow), hence the ``n`` factor on its round term.
    """
    total_w = sum(weights.values())
    w = weights[flow_index]
    n = len(weights)
    name = variant.name
    if unit == "packets":
        if name == "rr":
            return float(2 * n + 2)
        if name == "wrr":
            # One full frame (sum of bursts) + one re-entry frame.
            return 2.0 * total_w + 2.0
        if name == "iwrr":
            # Interleaving spreads the frame's bursts, so WRR's envelope
            # is an upper bound for IWRR too (round swaps can reorder
            # which cycle a flow lands in, but never add frames).
            return 2.0 * total_w + 2.0
        if name == "srr":
            # One WSS round per order change (restart policy, at most one
            # change per drained flow) + one round of spread slack.
            return (n + 1.0) * w + total_w + 2.0
        # rrr / g3: slot rounds; each set bit recurs with its own period,
        # so within one capacity round service is exact. Two rounds of
        # the *active* slot weight + per-bit slack.
        return 2.0 * total_w + 16.0
    # bytes
    L = float(scenario.max_packet or 1500)
    if name in ("drr", "srr:deficit"):
        frame = total_w * scenario.quantum
        # Stiliadis-Varma latency (3F - 2phi)/C in service units, plus a
        # packet of store-and-forward slack.
        return 3.0 * frame + 2.0 * L
    if name in ("wfq", "wf2q+"):
        # Parekh-Gallager: PGPS service trails GPS by at most one max
        # packet; doubled again for the discrete drain-start phase.
        return 4.0 * L
    if name == "scfq":
        # Golestani: up to one max packet per competing flow.
        return (n + 1.0) * L + 2.0 * L
    if name == "stfq":
        return (n + 1.0) * L + 2.0 * L
    if name == "strr":
        # Stratified RR: intra-class DRR rounds + inter-class slack; the
        # stratification quantises shares to powers of two, so allow one
        # stratum (x2) of deviation on the frame term.
        return 4.0 * (n + 1.0) * L + 2.0 * total_w
    raise AssertionError(f"no lag bound for variant {name!r}")


def check_fluid_lag(
    variant: Variant, scenario: Scenario, run: ScenarioRun
) -> List[Violation]:
    unit = _LAG_UNIT.get(variant.name)
    if unit is None or run.livelock_at is not None:
        return []
    weights = _lag_weights(variant, scenario, unit)
    lags = fluid_lag(run, weights, unit)
    out: List[Violation] = []
    for i, lag in sorted(lags.items()):
        bound = lag_bound(variant, scenario, weights, i, unit)
        if lag > bound:
            out.append(Violation(
                "lag",
                "fluid_lag",
                variant.name,
                f"flow {scenario.flows[i].flow_id!r} lagged the weighted "
                f"fluid by {lag:.1f} {unit} over the final drain; the "
                f"{variant.name} bound is {bound:.1f} {unit}",
                {"flow_index": i, "lag": lag, "bound": bound,
                 "unit": unit},
            ))
    return out


# ---------------------------------------------------------------------------
# Family 3: metamorphic invariances
# ---------------------------------------------------------------------------

#: Variants whose service order is exactly invariant under uniform weight
#: doubling (normalised-share disciplines: stamps scale by exactly 1/2,
#: a lossless float operation, and comparisons are unchanged). The
#: frame-based disciplines change their burst structure under scaling and
#: are checked as bound-equivalent instead.
_SCALE_EXACT = {"wfq", "wf2q+", "scfq", "stfq", "vc", "strr", "rr", "fifo"}


def _relabeled(scenario: Scenario) -> Scenario:
    flows = tuple(
        FlowDef(f"relabel-{9 - i}-{f.flow_id}", f.weight, f.frac_weight)
        for i, f in enumerate(scenario.flows)
    )
    return Scenario(scenario.seed, flows, scenario.ops, scenario.quantum)


def _scaled(scenario: Scenario) -> Scenario:
    return scenario.with_weights(
        [f.weight * 2 for f in scenario.flows],
        [f.frac_weight * 2 for f in scenario.flows],
    )


def check_metamorphic(
    variant: Variant,
    scenario: Scenario,
    run: ScenarioRun,
    *,
    op_budget: int = OP_BUDGET,
    core: str = "object",
) -> List[Violation]:
    if run.livelock_at is not None:
        return []  # conservation already failed; replays would too
    out: List[Violation] = []

    # Relabeling: flow identity must be opaque — the service order over
    # flow *indices* must be bit-identical.
    relabel_run = run_scenario(variant, _relabeled(scenario),
                               op_budget=op_budget, core=core)
    if relabel_run.order_key() != run.order_key():
        diverge = _first_divergence(run, relabel_run)
        out.append(Violation(
            "metamorphic",
            "relabel",
            variant.name,
            f"service order changed under flow-ID relabeling "
            f"(first divergence at departure {diverge})",
            {"departure": diverge},
        ))

    # Uniform weight doubling.
    scaled = _scaled(scenario)
    if max(f.weight for f in scenario.flows) * 2 <= 1 << 62:
        scaled_run = run_scenario(variant, scaled, op_budget=op_budget,
                                  core=core)
        if variant.name in _SCALE_EXACT:
            if scaled_run.order_key() != run.order_key():
                diverge = _first_divergence(run, scaled_run)
                out.append(Violation(
                    "metamorphic",
                    "weight_scale",
                    variant.name,
                    f"service order changed under uniform weight x2 "
                    f"(normalised-share discipline; first divergence at "
                    f"departure {diverge})",
                    {"departure": diverge},
                ))
        else:
            # Bound-equivalent: the scaled run must itself satisfy the
            # conservation and lag oracles (against its scaled bounds),
            # and — absent churn drops, which are order-dependent — must
            # serve the identical per-flow packet multiset.
            for v in check_conservation(variant, scaled, scaled_run):
                out.append(Violation(
                    "metamorphic", f"weight_scale/{v.check}", variant.name,
                    f"scaled replay broke conservation: {v.message}",
                    v.details,
                ))
            for v in check_fluid_lag(variant, scaled, scaled_run):
                out.append(Violation(
                    "metamorphic", "weight_scale/lag", variant.name,
                    f"scaled replay broke its lag bound: {v.message}",
                    v.details,
                ))
            if not any(op[0] == "leave" for op in scenario.ops):
                if _served_multisets(run) != _served_multisets(scaled_run):
                    out.append(Violation(
                        "metamorphic",
                        "weight_scale/multiset",
                        variant.name,
                        "per-flow served packet multisets changed under "
                        "uniform weight x2 (no churn drops to excuse it)",
                    ))
    return out


def _served_multisets(run: ScenarioRun) -> Dict[int, Tuple[int, ...]]:
    by_flow: Dict[int, List[int]] = {}
    for dep in run.departures:
        by_flow.setdefault(dep.flow_index, []).append(dep.size)
    return {i: tuple(sorted(sizes)) for i, sizes in by_flow.items()}


def _first_divergence(a: ScenarioRun, b: ScenarioRun) -> int:
    ka, kb = a.order_key(), b.order_key()
    for i, (x, y) in enumerate(zip(ka, kb)):
        if x != y:
            return i
    return min(len(ka), len(kb))


# -- engine (heap vs calendar) replay ---------------------------------------

def check_engine_equivalence(
    variant: Variant, scenario: Scenario, core: str = "object"
) -> List[Violation]:
    """Replay a derived network scenario under both event-queue backends.

    The scheduler-level script above never touches the event engine, so
    this oracle lifts the scenario's flows onto a two-node bottleneck
    network driven by CBR sources (demand ~2x the link) and asserts the
    full delivery-record sequence is bit-identical between
    ``Simulator(queue="heap")`` and ``Simulator(queue="calendar")``.

    The network path has no watchdog of its own, so the port schedulers
    get a budgeted op counter: a scheduler that livelocks inside
    ``_transmit_next`` becomes an ``engine_livelock`` violation instead
    of hanging the whole fuzz run.
    """
    from .runner import LivelockError

    records = []
    for engine in ("heap", "calendar"):
        try:
            records.append(_engine_run(variant, scenario, engine, core))
        except LivelockError:
            return [Violation(
                "metamorphic",
                "engine_livelock",
                variant.name,
                f"scheduler livelocked inside the {engine} engine replay",
                {"engine": engine},
            )]
    if records[0] != records[1]:
        first = next(
            (i for i, (x, y) in enumerate(zip(*records)) if x != y),
            min(len(records[0]), len(records[1])),
        )
        return [Violation(
            "metamorphic",
            "engine",
            variant.name,
            f"heap vs calendar event engines diverged at delivery "
            f"{first} ({len(records[0])} vs {len(records[1])} records)",
            {"delivery": first},
        )]
    return []


def _engine_run(
    variant: Variant, scenario: Scenario, engine: str, core: str = "object"
) -> List[Tuple]:
    from ..net.scenario import Network
    from ..net.sources import CBRSource
    from .runner import _BudgetedOpCounter, resolve_scheduler

    link_bps = 2_000_000.0
    kwargs = dict(variant.kwargs)
    if variant.scheduler in ("drr", "srr"):
        kwargs["quantum"] = scenario.quantum
    # Backstop only (no per-packet progress marks here): honest replays
    # with the floored weights below stay well under 10^5 ops total.
    kwargs["op_counter"] = _BudgetedOpCounter(2_000_000)
    net = Network(
        default_scheduler=resolve_scheduler(variant.scheduler, core),
        default_scheduler_kwargs=kwargs,
        engine=engine,
    )
    net.add_node("src")
    net.add_node("dst")
    net.add_link("src", "dst", link_bps, delay=0.001)
    # Capture deliveries in arrival order (the registry itself only keeps
    # per-flow lists, which would hide cross-flow interleaving changes).
    records: List[Tuple] = []
    net.sinks.add_listener(
        lambda p: records.append(
            (p.flow_id, p.seq, p.size, p.created_at, p.delivered_at)
        )
    )
    flows = scenario.flows[:4] or (FlowDef("f0", 1, 1.0),)

    def engine_weight(f: FlowDef):
        # This oracle compares event-queue backends, not weight regimes;
        # extreme fractional weights (1e-4 -> ~10^4 scheduler visits per
        # packet) would make even honest replays dominate the fuzz run,
        # so floor them. Both engines see the identical configuration.
        if variant.fractional:
            return max(float(f.frac_weight), 0.05)
        return f.weight

    total_w = sum(float(engine_weight(f)) for f in flows) or 1.0
    for f in flows:
        net.add_flow(f.flow_id, "src", "dst", engine_weight(f))
        share = float(engine_weight(f)) / total_w
        # ~2x overload in aggregate keeps the bottleneck busy throughout.
        rate = max(2.0 * link_bps * share, 64_000.0)
        size = 200 + 100 * (f.weight % 3)
        net.attach_source(f.flow_id, CBRSource(rate, size, stop_at=0.18))
    net.run(until=0.25)
    return records


# ---------------------------------------------------------------------------
# Family 4: network-calculus delay-bound certification
# ---------------------------------------------------------------------------

#: Disciplines with a certified service curve (repro.analysis.netcalc).
_BOUNDS_DISCIPLINES = ("srr", "drr", "wrr", "iwrr")

#: Derived-network parameters for the certification run. The sources are
#: *conformant* (aggregate demand = utilization * link), because the
#: delay bound is a statement about flows inside their reservation —
#: overload delay is the admission plane's problem, not the scheduler's.
_BOUNDS_LINK_BPS = 2_000_000.0
_BOUNDS_PROP_DELAY_S = 0.001
_BOUNDS_UTILIZATION = 0.6
_BOUNDS_HORIZON_S = 0.4


def bounds_certification_run(
    discipline: str,
    flow_weights: Sequence[Tuple[Any, float]],
    *,
    engine: str = "heap",
    core: str = "object",
    link_bps: float = _BOUNDS_LINK_BPS,
    prop_delay_s: float = _BOUNDS_PROP_DELAY_S,
    packet_size: int = 250,
    utilization: float = _BOUNDS_UTILIZATION,
    horizon_s: float = _BOUNDS_HORIZON_S,
    quantum: int = 1500,
    op_budget: int = 2_000_000,
) -> List[Dict[str, Any]]:
    """Drive conformant CBR flows through a bottleneck; certify delays.

    Builds the same two-node network as the engine oracle, computes each
    flow's network-calculus delay bound (token-bucket arrival through the
    discipline's strict service curve, plus propagation), runs the
    simulation, and returns one record per flow with the certified bound
    and the worst observed delivery delay. Shared by the ``bounds``
    conformance oracle (which turns ``observed > bound`` into a
    violation) and experiment E16 (which reports the observed/certified
    tightness ratio).

    Each source sends at ``utilization`` of its reserved share, so every
    arrival is ``(L, rho_i)``-constrained and the bound applies; packet
    sizes are uniform (the curves' fixed-``L`` model).
    """
    from ..analysis.netcalc import TokenBucket, delay_bound, service_curve
    from ..net.scenario import Network
    from ..net.sources import CBRSource
    from .runner import _BudgetedOpCounter, resolve_scheduler

    if not flow_weights:
        raise ConfigurationError("need at least one flow to certify")
    weights = [float(w) for _, w in flow_weights]
    total_w = sum(weights)
    kwargs: Dict[str, Any] = {"op_counter": _BudgetedOpCounter(op_budget)}
    if discipline in ("drr", "srr"):
        kwargs["quantum"] = quantum
    net = Network(
        default_scheduler=resolve_scheduler(discipline, core),
        default_scheduler_kwargs=kwargs,
        engine=engine,
    )
    net.add_node("src")
    net.add_node("dst")
    net.add_link("src", "dst", link_bps, delay=prop_delay_s)
    worst: Dict[Any, float] = {}
    delivered: Dict[Any, int] = {}

    def on_delivery(p) -> None:
        delay = p.delivered_at - p.created_at
        if delay > worst.get(p.flow_id, -1.0):
            worst[p.flow_id] = delay
        delivered[p.flow_id] = delivered.get(p.flow_id, 0) + 1

    net.sinks.add_listener(on_delivery)
    records: List[Dict[str, Any]] = []
    for (flow_id, weight), w in zip(flow_weights, weights):
        curve = service_curve(
            discipline, weight=w, weights=weights,
            packet_size=packet_size, link_rate_bps=link_bps,
            quantum=quantum,
        )
        rho = utilization * curve.rate_bps
        arrival = TokenBucket(sigma_bytes=packet_size, rho_bps=rho)
        bound = delay_bound(arrival, curve) + prop_delay_s
        # The integer-coded disciplines validate weight *types*, not just
        # values — register them with the exact ints the curve used.
        reg_weight: float = w if discipline == "drr" else int(w)
        net.add_flow(flow_id, "src", "dst", reg_weight)
        # Stop emissions early enough that the backlog drains inside the
        # horizon — undelivered packets would escape certification.
        net.attach_source(
            flow_id,
            CBRSource(rho, packet_size, stop_at=0.6 * horizon_s),
        )
        records.append({
            "flow_id": flow_id,
            "weight": w,
            "share": w / total_w,
            "rate_bps": curve.rate_bps,
            "latency_s": curve.latency_s,
            "bound_s": bound,
        })
    net.run(until=horizon_s)
    for rec in records:
        fid = rec["flow_id"]
        rec["observed_s"] = worst.get(fid)
        rec["delivered"] = delivered.get(fid, 0)
        rec["ratio"] = (
            worst[fid] / rec["bound_s"] if fid in worst else None
        )
    return records


def check_bounds(
    variant: Variant,
    scenario: Scenario,
    *,
    core: str = "object",
    engine: str = "heap",
) -> List[Violation]:
    """Certify observed delays against network-calculus bounds.

    The scheduler-level op script has no clock, so — like the engine
    oracle — this lifts the scenario's flows and weights onto a derived
    bottleneck network, computes each flow's closed-form delay bound from
    :mod:`repro.analysis.netcalc`, and fails if any delivered packet
    exceeded it. Only disciplines with a certified service curve
    participate; every other variant is exempt (not silently passed —
    the family simply does not apply).
    """
    from .runner import LivelockError

    if variant.scheduler not in _BOUNDS_DISCIPLINES:
        return []

    def bounds_weight(f: FlowDef) -> float:
        # Same flooring as the engine oracle: extreme fractional weights
        # make honest runs dominate the fuzz budget without exercising
        # anything new in the curve math (the generic DRR latency covers
        # the sub-packet-quantum regime analytically).
        if variant.fractional:
            return max(float(f.frac_weight), 0.05)
        return float(f.weight)

    flows = scenario.flows[:4] or (FlowDef("f0", 1, 1.0),)
    flow_weights = [(f.flow_id, bounds_weight(f)) for f in flows]
    try:
        records = bounds_certification_run(
            variant.scheduler, flow_weights, engine=engine, core=core,
            quantum=scenario.quantum,
        )
    except LivelockError:
        return [Violation(
            "bounds",
            "bounds_livelock",
            variant.name,
            f"scheduler livelocked inside the {engine} bounds "
            f"certification replay",
            {"engine": engine},
        )]
    out: List[Violation] = []
    for rec in records:
        observed = rec["observed_s"]
        if observed is None:
            # A conformant CBR source always emits its first packet at
            # t=0, so zero deliveries inside the horizon means the flow
            # was starved outright — never "certified by silence".
            out.append(Violation(
                "bounds",
                "no_service",
                variant.name,
                f"flow {rec['flow_id']!r} delivered no packets inside "
                f"the certification horizon despite a conformant source",
                {"flow_id": rec["flow_id"], "engine": engine},
            ))
        elif observed > rec["bound_s"] + 1e-9:
            out.append(Violation(
                "bounds",
                "delay_bound",
                variant.name,
                f"flow {rec['flow_id']!r} observed delay "
                f"{observed * 1e3:.3f} ms exceeds the certified "
                f"network-calculus bound {rec['bound_s'] * 1e3:.3f} ms "
                f"({engine} engine)",
                {"flow_id": rec["flow_id"], "observed_s": observed,
                 "bound_s": rec["bound_s"], "engine": engine},
            ))
    return out


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def check_scenario(
    variant: Variant,
    scenario: Scenario,
    *,
    families: Sequence[str] = ("conservation", "lag", "metamorphic"),
    engine_check: bool = False,
    run: Optional[ScenarioRun] = None,
    op_budget: int = OP_BUDGET,
    core: str = "object",
    bounds_engines: Sequence[str] = ("heap",),
) -> List[Violation]:
    """Run one scenario through one variant and every requested oracle.

    ``run`` lets callers that already executed the scenario (e.g. for a
    determinism digest) skip the duplicate base run; ``op_budget`` sets
    the livelock watchdog's no-progress gap for every run performed here
    (the shrinker lowers it so livelocked candidates stay cheap).
    ``bounds_engines`` selects which event engines the ``bounds`` family
    (when requested) replays the certification network under.
    """
    if run is None:
        run = run_scenario(variant, scenario, op_budget=op_budget, core=core)
    out: List[Violation] = []
    if "conservation" in families:
        out.extend(check_conservation(variant, scenario, run))
    if "lag" in families:
        out.extend(check_fluid_lag(variant, scenario, run))
    if "metamorphic" in families:
        out.extend(check_metamorphic(variant, scenario, run,
                                     op_budget=op_budget, core=core))
        # Engine replay only on otherwise-clean runs: a scheduler the
        # other oracles already condemned makes backend comparison moot
        # (and a livelocked one would burn the engine backstop budget).
        if engine_check and not out:
            out.extend(check_engine_equivalence(variant, scenario, core))
    if "bounds" in families and run.livelock_at is None:
        for engine in bounds_engines:
            out.extend(check_bounds(variant, scenario, core=core,
                                    engine=engine))
    return out
