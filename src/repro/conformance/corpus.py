"""Repro artifacts and the committed seed corpus.

A *repro artifact* (``results/conformance/repro-<variant>-<seed>.json``)
captures one shrunk failing scenario plus the violations it triggers —
enough to replay the failure with ``python -m repro.conformance --replay
<path>`` and nothing else. Filenames walk an attempt counter past
existing files (same O_EXCL discipline as
:mod:`repro.harness.artifacts`), so repeated failing runs never clobber
earlier evidence.

The *seed corpus* (``corpus.json`` next to this module) is the committed
list of generator seeds replayed by PR CI and the tier-1 test suite:
every corpus seed must pass every oracle on every variant. Seeds that
once exposed a bug get appended here after the fix, turning yesterday's
fuzz finding into tomorrow's regression test without committing bulky
scenario JSON.
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..core.errors import ArtifactError
from ..harness.io import atomic_write_json, load_json_checked
from .oracles import Violation
from .scenario import Scenario

__all__ = [
    "REPRO_SCHEMA",
    "write_repro_artifact",
    "load_repro_artifact",
    "corpus_seeds",
]

REPRO_SCHEMA = "repro.conformance/repro/v1"

#: Default artifact directory (under the repo's results tree).
DEFAULT_RESULTS_DIR = Path("results") / "conformance"

_CORPUS_PATH = Path(__file__).with_name("corpus.json")


def write_repro_artifact(
    variant_name: str,
    scenario: Scenario,
    violations: Sequence[Violation],
    *,
    results_dir: Union[str, Path] = DEFAULT_RESULTS_DIR,
    shrunk_from: Optional[Scenario] = None,
) -> Path:
    """Persist one failing scenario; returns the path written."""
    payload: Dict[str, Any] = {
        "schema": REPRO_SCHEMA,
        "variant": variant_name,
        "seed": scenario.seed,
        "scenario": scenario.to_json_dict(),
        "violations": [v.to_json_dict() for v in violations],
    }
    if shrunk_from is not None:
        payload["original"] = {
            "flows": len(shrunk_from.flows),
            "ops": len(shrunk_from.ops),
        }
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    safe_variant = variant_name.replace(":", "_").replace("+", "plus")
    for attempt in itertools.count():
        suffix = "" if attempt == 0 else f"-{attempt}"
        path = results_dir / (
            f"repro-{safe_variant}-{scenario.seed}{suffix}.json"
        )
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        return atomic_write_json(path, payload)
    raise AssertionError("unreachable")  # pragma: no cover


def load_repro_artifact(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a repro artifact: {"variant": str, "scenario": Scenario, ...}.

    Raises :class:`~repro.core.errors.ArtifactError` on missing/truncated
    files or wrong schema, like every other loader in this repo.
    """
    data = load_json_checked(path, schema=REPRO_SCHEMA)
    try:
        scenario = Scenario.from_json_dict(data["scenario"])
        variant = str(data["variant"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(
            f"repro artifact {path} is malformed: {exc}"
        ) from exc
    return {
        "variant": variant,
        "scenario": scenario,
        "violations": data.get("violations", []),
    }


def corpus_seeds(path: Optional[Union[str, Path]] = None) -> List[int]:
    """The committed corpus seeds (sorted, deduplicated)."""
    corpus_path = Path(path) if path is not None else _CORPUS_PATH
    try:
        data = json.loads(corpus_path.read_text())
    except OSError as exc:
        raise ArtifactError(
            f"cannot read corpus {corpus_path}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise ArtifactError(
            f"corpus {corpus_path} is not valid JSON: {exc}"
        ) from exc
    seeds = data["seeds"] if isinstance(data, Mapping) else data
    return sorted({int(s) for s in seeds})
