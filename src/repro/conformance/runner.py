"""Drive a :class:`~repro.conformance.scenario.Scenario` through one
scheduler variant, recording everything the oracles need.

A *variant* is a registry name plus constructor kwargs — the registry's
default configuration for every scheduler, plus non-default service modes
worth fuzzing separately (SRR's ``deficit`` mode). The slotted extensions
get a capacity large enough that any generated weight mix admits.

Livelock watchdog
-----------------
``dequeue()`` on a buggy scheduler can spin forever *inside one call*
(DRR's historical zero-credit rotate loop did exactly that), so wall-clock
timeouts or call counts cannot catch it. Every scheduler bumps its
:class:`~repro.core.opcount.OpCounter` once per elementary step of its
hot loop, so a counter that raises past a budget converts an unbounded
spin into a structured :class:`LivelockError` — which the conservation
oracle reports as a violation with the op that triggered it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ReproError
from ..core.opcount import OpCounter
from ..schedulers import (
    available_schedulers,
    create_scheduler,
    resolve_scheduler,
)
from ..core.packet import Packet
from .scenario import Scenario

__all__ = [
    "Variant",
    "VARIANTS",
    "variant_by_name",
    "resolve_scheduler",
    "LivelockError",
    "Departure",
    "ScenarioRun",
    "run_scenario",
]

#: Elementary-op *gap* allowed without a single departure. A livelocked
#: dequeue makes zero progress, so any gap budget catches it; an honest
#: run's worst inter-departure gap is bounded per packet (DRR at the
#: smallest generated fractional weight needs ~quantum/credit ≈ 10^4
#: rotate visits per packet, a few ops each), independent of scenario
#: length — the worst honest gap measured over 240 scenarios x all
#: variants is ~1.6x10^4 ops, so 10^6 gives ~60x headroom while keeping
#: livelocked runs cheap to detect.
OP_BUDGET = 1_000_000


class LivelockError(ReproError):
    """The scheduler burned the op-gap budget without serving a packet."""


class _BudgetedOpCounter(OpCounter):
    """OpCounter that raises when ``budget`` bumps pass with no progress.

    :meth:`mark_progress` resets the gap; :func:`run_scenario` calls it
    after every departure, so the budget bounds work-per-packet rather
    than work-per-run (which would scale with scenario size).
    """

    __slots__ = ("budget", "_last_progress")

    def __init__(self, budget: int = OP_BUDGET) -> None:
        super().__init__()
        self.budget = budget
        self._last_progress = 0

    def mark_progress(self) -> None:
        self._last_progress = self.count

    def bump(self, n: int = 1) -> None:
        self.count += n
        if self.count - self._last_progress > self.budget:
            raise LivelockError(
                f"scheduler burned {self.budget} elementary ops without "
                f"serving a packet — dequeue() is spinning without "
                f"making progress"
            )


@dataclass(frozen=True)
class Variant:
    """A named scheduler configuration the fuzzer drives."""

    name: str                     # display name, e.g. "srr:deficit"
    scheduler: str                # registry name
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    #: Whether this variant receives ``FlowDef.frac_weight`` (real-weight
    #: disciplines) or ``FlowDef.weight`` (integer/slot-coded ones).
    fractional: bool = False

    def flow_weight(self, flow) -> Any:
        return flow.frac_weight if self.fractional else flow.weight


def _build_variants() -> Tuple[Variant, ...]:
    fractional = {"drr", "wfq", "wf2q+", "scfq", "stfq", "vc", "strr"}
    # Slot capacities large enough for any generated weight sum (8 flows
    # at weight <= 64); small enough that frame-based lag bounds bite.
    special_kwargs: Dict[str, Tuple[Tuple[str, Any], ...]] = {
        "rrr": (("capacity", 1024),),
        "g3": (("capacity", 1023),),
    }
    variants = [
        Variant(
            name=name,
            scheduler=name,
            kwargs=special_kwargs.get(name, ()),
            fractional=name in fractional,
        )
        for name in available_schedulers()
        # The flat-core twins are not separate variants: the same variant
        # list is replayed with core="fast" (``--core fast``), keeping
        # variant *names* — and therefore verdict digests — comparable
        # across cores.
        if not name.endswith(":fast")
    ]
    variants.append(
        Variant(name="srr:deficit", scheduler="srr",
                kwargs=(("mode", "deficit"),), fractional=False)
    )
    return tuple(sorted(variants, key=lambda v: v.name))


#: Every scheduler in the registry (extensions included) plus extra
#: service-mode variants, materialised lazily so importing this module
#: does not force the extension registry.
_VARIANTS_CACHE: Optional[Tuple[Variant, ...]] = None


def VARIANTS() -> Tuple[Variant, ...]:
    global _VARIANTS_CACHE
    if _VARIANTS_CACHE is None:
        _VARIANTS_CACHE = _build_variants()
    return _VARIANTS_CACHE


def variant_by_name(name: str) -> Variant:
    for v in VARIANTS():
        if v.name == name:
            return v
    from ..core.errors import ConfigurationError

    raise ConfigurationError(
        f"unknown variant {name!r}; available: "
        f"{[v.name for v in VARIANTS()]}"
    )


@dataclass(frozen=True)
class Departure:
    """One dequeued packet, reduced to what the oracles compare."""

    flow_index: int
    size: int
    uid: int


@dataclass
class ScenarioRun:
    """Everything observed while executing one (variant, scenario) pair."""

    variant: str
    departures: List[Departure] = field(default_factory=list)
    #: Departure-list index at which the final drain began.
    final_drain_start: int = 0
    #: Per-flow backlog bytes/packets at the start of the final drain.
    drain_backlog_bytes: Dict[int, int] = field(default_factory=dict)
    drain_backlog_packets: Dict[int, int] = field(default_factory=dict)
    #: Accounting over the whole run.
    accepted_uids: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    # uid -> (flow_index, size) of every packet the scheduler accepted
    accepted_bytes: int = 0
    dropped_bytes: int = 0          # discarded by leave (remove_flow)
    dequeued_bytes: int = 0
    #: Work-conservation breach: dequeue() returned None with backlog > 0.
    idle_with_backlog: Optional[int] = None   # op index, if it happened
    #: Livelock watchdog trip (op index), if it happened.
    livelock_at: Optional[int] = None
    #: Residual backlog the scheduler *reports* after the final drain.
    residual_backlog_packets: int = 0
    residual_backlog_bytes: int = 0
    #: Elementary scheduler ops the whole run consumed (budget telemetry).
    ops_used: int = 0

    def order_key(self) -> Tuple[Tuple[int, int], ...]:
        """The service order as comparable (flow_index, size) pairs."""
        return tuple((d.flow_index, d.size) for d in self.departures)


# resolve_scheduler now lives beside the registry it maps over
# (repro.schedulers.registry) and is re-imported above: conformance
# callers and repro artifacts keep referencing it from this module.


def run_scenario(
    variant: Variant,
    scenario: Scenario,
    *,
    op_budget: int = OP_BUDGET,
    core: str = "object",
) -> ScenarioRun:
    """Execute ``scenario`` on ``variant``; never raises on scheduler
    misbehaviour — watchdog trips and conservation breaches are recorded
    in the returned :class:`ScenarioRun` for the oracles to judge."""
    ops_counter = _BudgetedOpCounter(op_budget)
    quantum_kwargs = {}
    if variant.scheduler in ("drr", "srr"):
        quantum_kwargs["quantum"] = scenario.quantum
    sched = create_scheduler(
        resolve_scheduler(variant.scheduler, core),
        op_counter=ops_counter,
        **dict(variant.kwargs),
        **quantum_kwargs,
    )
    run = ScenarioRun(variant=variant.name)
    index = {f.flow_id: i for i, f in enumerate(scenario.flows)}
    registered: Dict[int, bool] = {}
    for i, flow in enumerate(scenario.flows):
        sched.add_flow(flow.flow_id, variant.flow_weight(flow))
        registered[i] = True

    def one_dequeue(op_i: int) -> Optional[Packet]:
        try:
            packet = sched.dequeue()
        except LivelockError:
            run.livelock_at = op_i
            return None
        if packet is not None:
            fi = index[packet.flow_id]
            run.departures.append(Departure(fi, packet.size, packet.uid))
            run.dequeued_bytes += packet.size
            ops_counter.mark_progress()
        elif sched.backlog > 0 and run.idle_with_backlog is None:
            run.idle_with_backlog = op_i
        return packet

    def drain(op_i: int) -> None:
        while sched.backlog > 0:
            if one_dequeue(op_i) is None:
                return  # livelock or work-conservation breach; recorded

    for op_i, op in enumerate(scenario.ops):
        if run.livelock_at is not None:
            break
        kind = op[0]
        if kind == "enq":
            _, fi, size = op
            if not registered.get(fi):
                continue
            flow = scenario.flows[fi]
            packet = Packet(flow.flow_id, size)
            try:
                accepted = sched.enqueue(packet)
            except LivelockError:
                run.livelock_at = op_i
                break
            if accepted:
                run.accepted_uids[packet.uid] = (fi, size)
                run.accepted_bytes += size
        elif kind == "deq":
            one_dequeue(op_i)
        elif kind == "drain":
            drain(op_i)
        elif kind == "leave":
            fi = op[1]
            if registered.get(fi):
                flow_state = sched.flow_state(scenario.flows[fi].flow_id)
                run.dropped_bytes += flow_state.backlog_bytes
                for p in flow_state.queue:
                    run.accepted_uids.pop(p.uid, None)
                sched.remove_flow(scenario.flows[fi].flow_id)
                registered[fi] = False
        elif kind == "join":
            fi = op[1]
            if not registered.get(fi):
                flow = scenario.flows[fi]
                sched.add_flow(flow.flow_id, variant.flow_weight(flow))
                registered[fi] = True
        else:  # pragma: no cover - generator never emits unknown kinds
            raise AssertionError(f"unknown op kind {kind!r}")

    # Final drain (the lag oracle's observation window).
    run.final_drain_start = len(run.departures)
    if run.livelock_at is None:
        for i, flow in enumerate(scenario.flows):
            if registered.get(i):
                state = sched.flow_state(flow.flow_id)
                run.drain_backlog_bytes[i] = state.backlog_bytes
                run.drain_backlog_packets[i] = len(state.queue)
        drain(len(scenario.ops))
    run.residual_backlog_packets = sched.backlog
    run.residual_backlog_bytes = sched.backlog_bytes
    run.ops_used = ops_counter.count
    return run
