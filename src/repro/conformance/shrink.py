"""Greedy scenario shrinking: minimal replayable repros.

Given a failing (variant, scenario) pair, :func:`shrink` repeatedly
applies structure-reducing transformations — drop a flow, halve the op
tail/head (the "duration"), shrink weights toward 1 — keeping a candidate
only when the failure *persists* (same oracle family on re-check). The
result is the smallest scenario this greedy walk reaches, typically a
couple of flows and a handful of ops, which is what lands in the repro
artifact.

The predicate re-runs the full oracle battery (minus the expensive
network engine replay), so a shrunk repro is guaranteed to still fail
when replayed from its artifact.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.errors import ReproError
from .oracles import Violation, check_scenario
from .runner import OP_BUDGET, Variant
from .scenario import Scenario

__all__ = ["shrink", "failure_families"]

#: Cap on predicate evaluations per shrink (each is a handful of full
#: scenario runs); greedy convergence is usually well under this.
MAX_PREDICATE_CALLS = 250

#: Livelock gap budget during shrinking. Each livelocked candidate burns
#: its full gap, so the default budget would make 250 predicate calls
#: cost minutes; 200k still clears the worst honest inter-departure gap
#: (~1.6x10^4 ops measured) by >10x. The shrunk result is re-verified at
#: the full
#: budget before being returned, so a shrink can never "find" a failure
#: that would not reproduce at replay time.
SHRINK_OP_BUDGET = 200_000

#: Fractional weights are never shrunk below the generator's own minimum
#: (1e-4): below it, even a *correct* byte-credit scheduler needs more
#: ops per packet than the livelock watchdog allows, so a shrunk repro
#: would keep "failing" after the bug under test is fixed.
MIN_FRAC_WEIGHT = 1e-4


def failure_families(violations: Sequence[Violation]) -> frozenset:
    return frozenset(v.family for v in violations)


def shrink(
    variant: Variant,
    scenario: Scenario,
    violations: Sequence[Violation],
    *,
    max_calls: int = MAX_PREDICATE_CALLS,
) -> Tuple[Scenario, List[Violation]]:
    """Minimise ``scenario`` while ``variant`` still fails the same
    oracle family; returns the shrunk scenario and its violations."""
    target = failure_families(violations)
    calls = 0
    best_violations = list(violations)

    def still_fails(candidate: Scenario) -> Optional[List[Violation]]:
        nonlocal calls
        if calls >= max_calls:
            return None
        calls += 1
        try:
            found = check_scenario(variant, candidate,
                                   op_budget=SHRINK_OP_BUDGET)
        except ReproError:
            # The transformation made the scenario outright invalid for
            # this scheduler (e.g. a weight shrunk past its accepted
            # domain); that is not the same failure.
            return None
        if target & failure_families(found):
            return found
        return None

    current = scenario
    progress = True
    while progress and calls < max_calls:
        progress = False
        # 1. Drop flows, one at a time (largest index first so indices
        #    of untried flows stay stable across successful drops).
        for i in reversed(range(len(current.flows))):
            if len(current.flows) <= 1:
                break
            candidate = current.without_flow(i)
            found = still_fails(candidate)
            if found is not None:
                current, best_violations = candidate, found
                progress = True
        # 2. Halve the op list: try dropping the tail, then the head
        #    (repeatedly — each acceptance halves again next pass).
        n = len(current.ops)
        if n > 1:
            for candidate_ops in (current.ops[: n // 2],
                                  current.ops[n // 2:]):
                candidate = current.with_ops(candidate_ops)
                found = still_fails(candidate)
                if found is not None:
                    current, best_violations = candidate, found
                    progress = True
                    break
        # 3. Shrink weights toward 1 (and fractional weights toward
        #    their integer counterpart), all flows at once then singly.
        shrunk_all = current.with_weights(
            [max(1, f.weight // 2) for f in current.flows],
            [max(f.frac_weight / 2, MIN_FRAC_WEIGHT)
             if f.frac_weight > MIN_FRAC_WEIGHT else f.frac_weight
             for f in current.flows],
        )
        if shrunk_all != current:
            found = still_fails(shrunk_all)
            if found is not None:
                current, best_violations = shrunk_all, found
                progress = True
        for i, f in enumerate(current.flows):
            if f.weight <= 1:
                continue
            weights = [g.weight for g in current.flows]
            weights[i] = max(1, weights[i] // 2)
            candidate = current.with_weights(
                weights, [g.frac_weight for g in current.flows]
            )
            found = still_fails(candidate)
            if found is not None:
                current, best_violations = candidate, found
                progress = True
    # Final pass: drop ops one by one while cheap (small scenarios only).
    if len(current.ops) <= 24:
        i = len(current.ops) - 1
        while i >= 0 and calls < max_calls:
            candidate = current.with_ops(
                current.ops[:i] + current.ops[i + 1:]
            )
            found = still_fails(candidate)
            if found is not None:
                current, best_violations = candidate, found
            i -= 1
    if current is not scenario:
        # Re-verify at the full watchdog budget: the reduced shrink
        # budget could (in principle) misread a slow-but-honest candidate
        # as livelocked, and the artifact must fail at replay time.
        try:
            found = check_scenario(variant, current, op_budget=OP_BUDGET)
        except ReproError:
            found = []
        if target & failure_families(found):
            return current, found
        return scenario, list(violations)
    return current, best_violations
