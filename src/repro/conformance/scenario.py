"""Seeded random scenarios for the differential conformance fuzzer.

A :class:`Scenario` is a *fully explicit*, JSON-serialisable script of
scheduler operations — flow definitions plus an ordered op list — so that
a failing case can be shrunk structurally (drop a flow, truncate the op
tail, halve a weight) and replayed bit-identically from its artifact with
no RNG in the loop. Randomness lives only in :func:`generate_scenario`,
which is a pure function of its seed (SplitMix64 child seeds per aspect,
the same scheme :mod:`repro.faults.plan` uses), so corpus entries are just
seeds.

Ops
---
``("enq", flow_index, size)``
    Enqueue one packet of ``size`` bytes on the indexed flow (a no-op
    while the flow is churned out).
``("deq",)``
    One ``dequeue()`` call.
``("drain",)``
    Dequeue until the scheduler reports idle (an *idle phase*: the busy
    period ends and timestamp schedulers reset their virtual clocks).
``("leave", flow_index)`` / ``("join", flow_index)``
    Churn: deregister / re-register the flow mid-run, exercising the
    dynamic add/remove paths (SRR matrix surgery, WFQ heap staleness, DRR
    active-list removal). ``join`` re-adds with the original weight.

Every scenario ends with an implicit final drain; the runner records the
departure sequence of that drain for the fluid-lag oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..harness.sweep import child_seed

__all__ = ["FlowDef", "Scenario", "generate_scenario"]

#: Schema tag for scenario JSON blocks inside repro artifacts.
SCENARIO_SCHEMA = "repro.conformance/scenario/v1"

#: Packet-size mixes the generator draws from (bytes). ``quantum`` stays
#: >= the largest size so the byte-credit disciplines keep their O(1)
#: "at least one packet per visit" property.
_SIZE_MIXES: Tuple[Tuple[int, ...], ...] = (
    (200,),                      # the paper's fixed-size model
    (1500,),                     # MTU-sized
    (40, 1500),                  # bimodal ACK/MTU
    (40, 200, 576, 1500),        # classic internet mix
)

#: Child-seed indices per generator aspect (append-only, like
#: ``repro.faults.plan._CATEGORY_INDEX`` — reordering would change every
#: existing corpus seed's scenario).
_ASPECT = {"shape": 0, "weights": 1, "ops": 2, "sizes": 3}


@dataclass(frozen=True)
class FlowDef:
    """One flow: integer weight plus the float weight variant.

    ``weight`` is what integer-coded disciplines (SRR, WRR, RRR, G-3)
    receive; ``frac_weight`` is what real-weight disciplines (DRR and the
    timestamp family) receive. The generator usually sets them equal, but
    a *fractional* scenario gives ``frac_weight`` values well below 1 —
    the regime where DRR's credit truncation bug lived.
    """

    flow_id: str
    weight: int
    frac_weight: float

    def to_json_dict(self) -> Dict[str, Any]:
        return {"flow_id": self.flow_id, "weight": self.weight,
                "frac_weight": self.frac_weight}

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "FlowDef":
        return cls(
            flow_id=str(data["flow_id"]),
            weight=int(data["weight"]),
            frac_weight=float(data.get("frac_weight", data["weight"])),
        )


@dataclass(frozen=True)
class Scenario:
    """An explicit, replayable fuzz scenario (see module docstring)."""

    seed: int
    flows: Tuple[FlowDef, ...]
    ops: Tuple[Tuple, ...]
    quantum: int = 1500

    @property
    def max_packet(self) -> int:
        """Largest packet size any op enqueues (quantum floor)."""
        return max((op[2] for op in self.ops if op[0] == "enq"), default=0)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCENARIO_SCHEMA,
            "seed": self.seed,
            "quantum": self.quantum,
            "flows": [f.to_json_dict() for f in self.flows],
            "ops": [list(op) for op in self.ops],
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        schema = data.get("schema", SCENARIO_SCHEMA)
        if schema != SCENARIO_SCHEMA:
            raise ConfigurationError(
                f"unsupported scenario schema {schema!r}"
            )
        flows = tuple(FlowDef.from_json_dict(f) for f in data.get("flows", ()))
        ops = tuple(
            (op[0],) + tuple(int(x) for x in op[1:]) for op in data.get("ops", ())
        )
        return cls(
            seed=int(data.get("seed", 0)),
            flows=flows,
            ops=ops,
            quantum=int(data.get("quantum", 1500)),
        )

    # -- structural edits (used by the shrinker) --------------------------

    def without_flow(self, index: int) -> "Scenario":
        """Drop one flow and every op that references it."""
        kept = [f for i, f in enumerate(self.flows) if i != index]

        def remap(op: Tuple) -> Optional[Tuple]:
            if len(op) < 2:
                return op
            idx = op[1]
            if idx == index:
                return None
            return (op[0], idx - 1 if idx > index else idx) + tuple(op[2:])

        ops = tuple(o for o in map(remap, self.ops) if o is not None)
        return Scenario(self.seed, tuple(kept), ops, self.quantum)

    def with_ops(self, ops: Sequence[Tuple]) -> "Scenario":
        return Scenario(self.seed, self.flows, tuple(ops), self.quantum)

    def with_weights(
        self, weights: Sequence[int], frac_weights: Sequence[float]
    ) -> "Scenario":
        flows = tuple(
            FlowDef(f.flow_id, int(w), float(fw))
            for f, w, fw in zip(self.flows, weights, frac_weights)
        )
        return Scenario(self.seed, flows, self.ops, self.quantum)


def generate_scenario(seed: int, *, quick: bool = False) -> Scenario:
    """Derive one scenario from ``seed`` (pure; no global RNG).

    Shape knobs drawn per seed: flow count, integer weights (skewed to
    small values, occasionally heavy), whether the scenario is
    *fractional* (float weights down to ``1e-4`` for the real-weight
    disciplines), a packet-size mix, the op budget, and whether churn /
    idle phases occur.
    """
    shape = random.Random(child_seed(seed, _ASPECT["shape"]))
    wrng = random.Random(child_seed(seed, _ASPECT["weights"]))
    oprng = random.Random(child_seed(seed, _ASPECT["ops"]))
    srng = random.Random(child_seed(seed, _ASPECT["sizes"]))

    n_flows = shape.randint(1, 4 if quick else 8)
    fractional = shape.random() < 0.35
    sizes = _SIZE_MIXES[shape.randrange(len(_SIZE_MIXES))]
    churny = shape.random() < 0.4
    idle_phases = shape.random() < 0.3
    op_budget = shape.randint(40, 160 if quick else 480)

    flows: List[FlowDef] = []
    for i in range(n_flows):
        # Skewed integer weights: mostly small, sometimes a heavy flow
        # (drives SRR order changes when it drains).
        if wrng.random() < 0.15:
            weight = 1 << wrng.randint(3, 6)
        else:
            weight = wrng.randint(1, 9)
        if fractional:
            # Log-uniform in [1e-4, 4): well below one quantum-byte per
            # round at the low end (the DRR truncation regime).
            frac = 10.0 ** wrng.uniform(-4.0, 0.6)
        else:
            frac = float(weight)
        flows.append(FlowDef(f"f{i}", weight, round(frac, 8)))

    ops: List[Tuple] = []
    out = set()  # churned-out flow indices
    # Warm-up: give every flow an initial backlog so the final drain has
    # substance even for tiny op budgets.
    for i in range(n_flows):
        for _ in range(oprng.randint(1, 3)):
            ops.append(("enq", i, srng.choice(sizes)))
    for _ in range(op_budget):
        r = oprng.random()
        if churny and r < 0.04:
            candidates = [i for i in range(n_flows) if i not in out]
            if len(candidates) > 1:
                i = oprng.choice(candidates)
                out.add(i)
                ops.append(("leave", i))
                continue
        if churny and r < 0.08 and out:
            i = oprng.choice(sorted(out))
            out.discard(i)
            ops.append(("join", i))
            continue
        if idle_phases and r < 0.10:
            ops.append(("drain",))
            continue
        if r < 0.55:
            i = oprng.randrange(n_flows)
            ops.append(("enq", i, srng.choice(sizes)))
        else:
            ops.append(("deq",))
    # Bring every churned-out flow back so the final drain covers all
    # flows (and the lag oracle sees stable membership).
    for i in sorted(out):
        ops.append(("join", i))
    return Scenario(seed=seed, flows=tuple(flows), ops=tuple(ops))
