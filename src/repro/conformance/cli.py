"""``python -m repro.conformance`` — the differential conformance fuzzer.

Modes
-----
Randomized budget (default)
    ``--seeds 200 [--quick] [--jobs 4]`` generates that many seeded
    scenarios and drives every registered scheduler variant through the
    oracle families. Failing scenarios are shrunk and written as repro
    artifacts under ``--results-dir`` (default ``results/conformance``).
Corpus replay
    ``--corpus`` replays the committed seed corpus (the PR-blocking CI
    job); any violation is a regression.
Artifact replay
    ``--replay results/conformance/repro-drr-17.json`` re-runs one
    shrunk repro and reports its violations.

Determinism: seeds map to scenarios purely (SplitMix64 children), the
per-seed work is self-contained, and parallel fan-out goes through
:func:`repro.harness.sweep.sweep` — so ``--jobs 1`` and ``--jobs N``
produce bit-identical verdict digests, which the CI job asserts.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..harness.sweep import sweep
from .corpus import (
    DEFAULT_RESULTS_DIR,
    corpus_seeds,
    load_repro_artifact,
    write_repro_artifact,
)
from .oracles import check_scenario
from .runner import VARIANTS, run_scenario, variant_by_name
from .scenario import generate_scenario
from .shrink import shrink

__all__ = ["main", "check_seed"]


def check_seed(
    seed: int,
    quick: bool = False,
    variant_names: Optional[Sequence[str]] = None,
    engine_check: bool = False,
    core: str = "object",
    bounds: bool = False,
    bounds_engines: Sequence[str] = ("heap",),
) -> Dict[str, Any]:
    """Fuzz one seed across variants (module-level: sweep workers pickle
    it). Returns a JSON-able verdict record with a content digest.

    ``core="fast"`` swaps every fast-capable variant onto its flat-core
    twin while keeping variant names — the digest is over the *names* and
    service orders, so a fast run of the corpus must produce the same
    digest as an object run (the PR-blocking cross-core check).

    ``bounds=True`` adds the network-calculus certification family on
    the disciplines with a service curve, replayed under each engine in
    ``bounds_engines``."""
    from ..obs.telemetry import get_telemetry

    scenario = generate_scenario(seed, quick=quick)
    names = list(variant_names) if variant_names else [
        v.name for v in VARIANTS()
    ]
    families: Sequence[str] = ("conservation", "lag", "metamorphic")
    if bounds:
        families = families + ("bounds",)
    violations: List[Dict[str, Any]] = []
    hasher = hashlib.sha256()
    # Env-activated in pool workers (REPRO_TELEMETRY); None when off.
    tele = get_telemetry()
    for name in names:
        variant = variant_by_name(name)
        run = run_scenario(variant, scenario, core=core)
        hasher.update(repr((seed, name, run.order_key())).encode())
        for v in check_scenario(variant, scenario, run=run,
                                families=families,
                                engine_check=engine_check, core=core,
                                bounds_engines=tuple(bounds_engines)):
            violations.append(v.to_json_dict())
        if tele is not None:
            tele.heartbeat(seed=seed, variant=name,
                           violations=len(violations))
    if tele is not None:
        tele.frame("seed_done", seed=seed, variants=len(names),
                   violations=len(violations))
    return {
        "seed": seed,
        "violations": violations,
        "digest": hasher.hexdigest()[:16],
    }


def _failure_signature(name: str, violations) -> tuple:
    """Dedup key for shrinking: same variant + same oracle checks.

    Dozens of seeds usually hit one bug; shrinking every one of them
    costs minutes and yields near-identical repros, so only the first
    scenario per signature is shrunk (the rest are still *reported*).
    """
    return (name, frozenset((v.family, v.check) for v in violations))


def _fail_and_shrink(
    record: Dict[str, Any],
    quick: bool,
    results_dir: Path,
    quiet: bool,
    shrunk_signatures: set,
    core: str = "object",
) -> List[Path]:
    """Shrink each failing variant of one seed; write repro artifacts."""
    seed = record["seed"]
    scenario = generate_scenario(seed, quick=quick)
    paths: List[Path] = []
    failing_variants = sorted({v["variant"] for v in record["violations"]})
    for name in failing_variants:
        variant = variant_by_name(name)
        violations = check_scenario(variant, scenario, core=core)
        if not violations:
            continue  # only tripped the engine oracle; keep full scenario
        signature = _failure_signature(name, violations)
        if signature in shrunk_signatures:
            continue
        shrunk_signatures.add(signature)
        small, small_violations = shrink(variant, scenario, violations)
        path = write_repro_artifact(
            name, small, small_violations,
            results_dir=results_dir, shrunk_from=scenario,
        )
        paths.append(path)
        if not quiet:
            print(
                f"  shrunk seed {seed} / {name}: "
                f"{len(scenario.flows)} flows x {len(scenario.ops)} ops "
                f"-> {len(small.flows)} flows x {len(small.ops)} ops "
                f"({small_violations[0].check}) -> {path}"
            )
    return paths


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance",
        description="Differential conformance fuzzer for every "
                    "registered scheduler.",
    )
    parser.add_argument("--seeds", type=int, default=50,
                        help="number of random seeds to fuzz (default 50)")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed (seeds run seed-base..+N-1)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller scenarios (CI budget)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel worker processes")
    parser.add_argument("--variants", default=None,
                        help="comma-separated variant subset "
                             "(default: all)")
    parser.add_argument("--core", choices=("object", "fast"),
                        default="object",
                        help="scheduler core to drive: the reference "
                             "object core or the flat fastpath twins "
                             "(same variant names, comparable digests)")
    parser.add_argument("--engine-every", type=int, default=10,
                        help="run the heap-vs-calendar engine oracle on "
                             "every Nth seed (0 disables; default 10)")
    parser.add_argument("--bounds", action="store_true",
                        help="also certify observed delays against the "
                             "network-calculus bounds (srr/drr/wrr/iwrr)")
    parser.add_argument("--bounds-engine",
                        choices=("heap", "calendar", "both"),
                        default="heap",
                        help="event engine(s) for the bounds "
                             "certification replay (default heap)")
    parser.add_argument("--corpus", action="store_true",
                        help="replay the committed seed corpus instead "
                             "of random seeds")
    parser.add_argument("--replay", metavar="PATH", default=None,
                        help="replay one repro artifact and exit")
    parser.add_argument("--results-dir", default=str(DEFAULT_RESULTS_DIR),
                        help="where repro artifacts are written")
    parser.add_argument("--json", action="store_true",
                        help="print a machine-readable summary to stdout")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report failures without shrinking")
    parser.add_argument("--telemetry", metavar="PATH", default=None,
                        help="append live heartbeat frames (JSONL) to "
                             "PATH from this process and every fuzz "
                             "worker; watch with 'python -m repro.obs "
                             "top'")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    results_dir = Path(args.results_dir)
    variant_names = (
        [n.strip() for n in args.variants.split(",") if n.strip()]
        if args.variants else None
    )
    if variant_names:
        for name in variant_names:
            variant_by_name(name)  # fail fast on typos

    if args.replay:
        repro = load_repro_artifact(args.replay)
        variant = variant_by_name(repro["variant"])
        violations = check_scenario(variant, repro["scenario"])
        payload = {
            "replay": str(args.replay),
            "variant": variant.name,
            "violations": [v.to_json_dict() for v in violations],
        }
        if args.json:
            print(json.dumps(payload, indent=2))
        elif violations:
            print(f"replay {args.replay}: {len(violations)} violation(s)")
            for v in violations:
                print(f"  [{v.family}/{v.check}] {v.message}")
        else:
            print(f"replay {args.replay}: no violations (fixed?)")
        return 1 if violations else 0

    if args.corpus:
        seeds = corpus_seeds()
    else:
        seeds = list(range(args.seed_base, args.seed_base + args.seeds))
    bounds_engines = (
        ("heap", "calendar") if args.bounds_engine == "both"
        else (args.bounds_engine,)
    )
    tasks = [
        (
            seed,
            args.quick,
            variant_names,
            bool(args.engine_every) and i % args.engine_every == 0,
            args.core,
            args.bounds,
            bounds_engines,
        )
        for i, seed in enumerate(seeds)
    ]
    telemetry = None
    saved_tele_env = None
    if args.telemetry is not None:
        import os

        from ..obs.telemetry import (
            TELEMETRY_ENV_VAR,
            get_telemetry,
            set_telemetry,
        )

        saved_tele_env = os.environ.get(TELEMETRY_ENV_VAR)
        os.environ[TELEMETRY_ENV_VAR] = args.telemetry
        set_telemetry(None)
        telemetry = get_telemetry()
        telemetry.frame(
            "run_start", mode="conformance", seeds=len(seeds),
            core=args.core, total=len(tasks),
        )
    try:
        records = sweep(check_seed, tasks, jobs=args.jobs)
    finally:
        if telemetry is not None:
            import os

            from ..obs.telemetry import set_telemetry

            telemetry.frame("run_end", mode="conformance")
            telemetry.close()
            set_telemetry(None)
            if saved_tele_env is None:
                os.environ.pop("REPRO_TELEMETRY", None)
            else:
                os.environ["REPRO_TELEMETRY"] = saved_tele_env

    digest = hashlib.sha256(
        "".join(r["digest"] for r in records).encode()
    ).hexdigest()[:16]
    failing = [r for r in records if r["violations"]]
    artifacts: List[Path] = []
    if failing and not args.no_shrink:
        shrunk_signatures: set = set()
        for record in failing:
            artifacts.extend(
                _fail_and_shrink(record, args.quick, results_dir,
                                 args.quiet or args.json,
                                 shrunk_signatures, core=args.core)
            )
    n_violations = sum(len(r["violations"]) for r in records)
    summary = {
        "seeds": len(seeds),
        "quick": args.quick,
        "core": args.core,
        "bounds": bool(args.bounds),
        "bounds_engines": list(bounds_engines) if args.bounds else [],
        "variants": variant_names or [v.name for v in VARIANTS()],
        "violations": n_violations,
        "failing_seeds": [r["seed"] for r in failing],
        "digest": digest,
        "artifacts": [str(p) for p in artifacts],
    }
    if args.json:
        print(json.dumps(summary, indent=2))
    elif not args.quiet or failing:
        verdict = "OK" if not failing else "FAIL"
        print(
            f"conformance {verdict}: {len(seeds)} seed(s) x "
            f"{len(summary['variants'])} variant(s), "
            f"{n_violations} violation(s), digest {digest}"
        )
        for record in failing:
            by = {}
            for v in record["violations"]:
                key = f"{v['variant']}:{v['family']}/{v['check']}"
                by[key] = by.get(key, 0) + 1
            detail = ", ".join(f"{k} x{n}" for k, n in sorted(by.items()))
            print(f"  seed {record['seed']}: {detail}")
    return 1 if failing else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
