"""repro — a reproduction of "SRR: An O(1) Time Complexity Packet Scheduler
for Flows in Multi-Service Packet Networks" (Chuanxiong Guo, SIGCOMM 2001 /
IEEE/ACM ToN 12(6), 2004).

Layout:

* :mod:`repro.core` — SRR and its data structures (WSS, Weight Matrix);
* :mod:`repro.schedulers` — baselines (FIFO, RR, WRR, DRR, WFQ, SCFQ,
  STFQ, WF²Q+);
* :mod:`repro.extensions` — the author's follow-on machinery (RRR, G-3,
  PWBT/TSS/TArray), used as extra comparators;
* :mod:`repro.net` — a from-scratch discrete-event network simulator
  standing in for ns-2;
* :mod:`repro.analysis` — metrics, fairness indices and analytic bounds;
* :mod:`repro.bench` — the experiment harness regenerating every
  table/figure (see DESIGN.md / EXPERIMENTS.md).

Quickstart::

    from repro import SRRScheduler, Packet

    sched = SRRScheduler()
    sched.add_flow("voice", weight=2)
    sched.add_flow("bulk", weight=1)
    sched.enqueue(Packet("voice", size=200))
    sched.enqueue(Packet("bulk", size=200))
    pkt = sched.dequeue()
"""

from .core import (
    OpCounter,
    Packet,
    PacketScheduler,
    ReproError,
    SRRScheduler,
    WSSCursor,
    wss_sequence,
    wss_term,
)

__version__ = "1.0.0"

__all__ = [
    "OpCounter",
    "Packet",
    "PacketScheduler",
    "ReproError",
    "SRRScheduler",
    "WSSCursor",
    "wss_sequence",
    "wss_term",
    "__version__",
]
