"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except ReproError`` clause while letting programming errors (``TypeError``,
``KeyError`` from misuse of internals, …) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class FlowError(ReproError):
    """A flow-level operation failed (unknown flow, duplicate flow, ...)."""


class UnknownFlowError(FlowError):
    """An operation referenced a flow id that is not registered."""

    def __init__(self, flow_id: object) -> None:
        super().__init__(f"unknown flow id: {flow_id!r}")
        self.flow_id = flow_id


class DuplicateFlowError(FlowError):
    """``add_flow`` was called with a flow id that is already registered."""

    def __init__(self, flow_id: object) -> None:
        super().__init__(f"flow id already registered: {flow_id!r}")
        self.flow_id = flow_id


class InvalidWeightError(FlowError):
    """A flow weight is outside the scheduler's accepted domain."""


class AdmissionError(ReproError):
    """A reservation could not be admitted (insufficient free capacity)."""


class CapacityError(ConfigurationError):
    """A link or scheduler capacity parameter is invalid."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistent state."""
