"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except ReproError`` clause while letting programming errors (``TypeError``,
``KeyError`` from misuse of internals, …) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class FlowError(ReproError):
    """A flow-level operation failed (unknown flow, duplicate flow, ...)."""


class UnknownFlowError(FlowError):
    """An operation referenced a flow id that is not registered."""

    def __init__(self, flow_id: object) -> None:
        super().__init__(f"unknown flow id: {flow_id!r}")
        self.flow_id = flow_id


class DuplicateFlowError(FlowError):
    """``add_flow`` was called with a flow id that is already registered."""

    def __init__(self, flow_id: object) -> None:
        super().__init__(f"flow id already registered: {flow_id!r}")
        self.flow_id = flow_id


class InvalidWeightError(FlowError):
    """A flow weight is outside the scheduler's accepted domain."""


class AdmissionError(ReproError):
    """A reservation could not be admitted (insufficient free capacity)."""


class CapacityError(ConfigurationError):
    """A link or scheduler capacity parameter is invalid."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistent state."""


class ArtifactError(ReproError):
    """A results/trace artifact is missing, truncated, or has the wrong
    schema. Raised by loaders instead of leaking ``json.JSONDecodeError``
    (or worse, silently returning garbage) on partial writes."""


class SLOViolation(ReproError):
    """A flow's observed delay exceeded its quoted/targeted bound.

    The control-plane twin of :class:`InvariantViolation`: raised (or
    recorded) by the per-flow SLO watchdog when a delivered packet's
    end-to-end delay exceeds the bound the admission controller quoted
    (or an explicit per-class target). Structured the same way so
    failures are diagnosable from the exception alone — the flow and its
    service class, the observed delay vs the target, a ``details`` dict,
    and the trace/flight windows leading up to the late delivery when a
    tracer or flight recorder was active.
    """

    def __init__(
        self,
        flow_id: object,
        observed_s: float,
        target_s: float,
        service_class: str = "?",
        details: object = None,
        trace_window: object = None,
        flight_window: object = None,
    ) -> None:
        self.flow_id = flow_id
        self.observed_s = observed_s
        self.target_s = target_s
        self.service_class = service_class
        self.details = dict(details or {})
        self.trace_window = list(trace_window or [])
        self.flight_window = list(flight_window or [])
        parts = [
            f"SLO violated for flow {flow_id!r} [{service_class}]: "
            f"observed {observed_s * 1e3:.3f} ms > "
            f"target {target_s * 1e3:.3f} ms"
        ]
        if self.details:
            parts.append(
                "; ".join(f"{k}={v!r}" for k, v in sorted(self.details.items()))
            )
        if self.trace_window:
            parts.append(f"last {len(self.trace_window)} trace events attached")
        if self.flight_window:
            parts.append(
                f"last {len(self.flight_window)} flight records attached"
            )
        super().__init__(" — ".join(parts))


class InvariantViolation(ReproError):
    """A runtime invariant guard caught corrupted scheduler state.

    Structured so failures are diagnosable from the exception alone: the
    named ``check`` that fired, the scheduler it fired on, a ``details``
    dict with the offending values, and — when a tracer or flight
    recorder was active — the ``trace_window`` of packet events and/or
    ``flight_window`` of sampled fastpath records leading up to the
    violation.
    """

    def __init__(
        self,
        check: str,
        scheduler: str = "?",
        details: object = None,
        trace_window: object = None,
        flight_window: object = None,
    ) -> None:
        self.check = check
        self.scheduler = scheduler
        self.details = dict(details or {})
        self.trace_window = list(trace_window or [])
        self.flight_window = list(flight_window or [])
        parts = [f"invariant {check!r} violated on scheduler {scheduler!r}"]
        if self.details:
            parts.append(
                "; ".join(f"{k}={v!r}" for k, v in sorted(self.details.items()))
            )
        if self.trace_window:
            parts.append(f"last {len(self.trace_window)} trace events attached")
        if self.flight_window:
            parts.append(
                f"last {len(self.flight_window)} flight records attached"
            )
        super().__init__(" — ".join(parts))
