"""Elementary-operation counters for complexity experiments.

The O(1)-vs-O(log N) claims of the paper are about *abstract machine
operations*, not Python wall-clock time (which is noisy and dominated by
interpreter overhead). Every scheduler in this repository threads an
:class:`OpCounter` through its hot path and bumps it once per "elementary
operation": a pointer dereference/advance, a comparison, a heap sift step,
an array write. Experiment E5 plots ``ops_per_packet`` against N, which is
deterministic and exactly reflects the algorithmic complexity.

Counting is kept deliberately cheap (a bare integer add on a slotted
object) so that it does not distort the companion wall-clock benchmarks by
more than a constant factor.
"""

from __future__ import annotations


class OpCounter:
    """A cheap mutable counter of elementary scheduling operations.

    Usage::

        ops = OpCounter()
        scheduler = SRRScheduler(op_counter=ops)
        ...
        before = ops.count
        scheduler.dequeue()
        cost = ops.count - before
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def bump(self, n: int = 1) -> None:
        """Record ``n`` elementary operations."""
        self.count += n

    def reset(self) -> None:
        """Zero the counter."""
        self.count = 0

    def snapshot(self) -> dict:
        """The counter as a summable observability dict.

        Shaped to merge with :meth:`repro.net.engine.Simulator.stats`
        into a run harness's uniform ``engine`` record.
        """
        return {"ops": self.count}

    def __int__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"OpCounter(count={self.count})"


class NullOpCounter(OpCounter):
    """An OpCounter that ignores bumps; default when counting is disabled.

    Using a real object (rather than ``if counter is not None`` checks)
    keeps the scheduler hot paths branch-free and uniform.
    """

    __slots__ = ()

    def bump(self, n: int = 1) -> None:  # noqa: D102 - inherited doc
        pass


#: Shared no-op counter instance; schedulers default to this.
NULL_COUNTER = NullOpCounter()
