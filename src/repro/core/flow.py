"""Per-flow scheduler state shared by SRR and reused by the baselines.

A :class:`FlowState` bundles a flow's configured weight, its FIFO packet
queue, its per-column linkage into the SRR :class:`~repro.core.weight_matrix.WeightMatrix`
(intrusive doubly-linked list nodes, one per set bit of the weight), the
deficit counter used by the variable-packet-size service mode, and running
service statistics consumed by the fairness analyses.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, Optional

from .errors import InvalidWeightError
from .packet import Packet

__all__ = ["ColumnNode", "FlowState", "check_weight"]


#: Largest weight accepted anywhere in the library. 2^62 keeps every
#: derived quantity (positions of WSS^order, column indices) inside a
#: machine word on CPython.
MAX_WEIGHT = 1 << 62


def check_weight(weight: int) -> int:
    """Validate an SRR-style integer weight and return it.

    SRR codes weights in binary, so weights must be positive integers.
    Booleans are rejected explicitly because ``isinstance(True, int)``.
    """
    if isinstance(weight, bool) or not isinstance(weight, int):
        raise InvalidWeightError(
            f"SRR weights must be positive integers, got {weight!r}"
        )
    if weight < 1:
        raise InvalidWeightError(f"weight must be >= 1, got {weight}")
    if weight > MAX_WEIGHT:
        raise InvalidWeightError(f"weight {weight} exceeds MAX_WEIGHT")
    return weight


class ColumnNode:
    """Intrusive doubly-linked list node tying a flow into one WM column.

    A flow owns one node per set bit of its weight. Nodes are unlinked in
    O(1) when the flow leaves the matrix (queue drained or flow removed).
    ``prev``/``next`` are never ``None`` while linked — columns use
    sentinel head/tail nodes.
    """

    __slots__ = ("flow", "column", "prev", "next", "linked")

    def __init__(self, flow: "Optional[FlowState]", column: int) -> None:
        self.flow = flow
        self.column = column
        self.prev: Optional[ColumnNode] = None
        self.next: Optional[ColumnNode] = None
        self.linked = False

    def __repr__(self) -> str:
        fid = self.flow.flow_id if self.flow is not None else "<sentinel>"
        return f"ColumnNode(flow={fid!r}, column={self.column}, linked={self.linked})"


class FlowState:
    """All scheduler-side state for one flow.

    Attributes:
        flow_id: The flow's identity (any hashable).
        weight: Positive integer weight; service per WSS round is exactly
            proportional to it.
        queue: FIFO of queued packets.
        nodes: Column index -> :class:`ColumnNode` for each set bit of the
            weight.
        deficit: Byte credit for the ``deficit`` service mode (0 in
            ``packet`` mode).
        packets_sent / bytes_sent: Cumulative service counters.
        packets_dropped: Count of arrivals rejected by the queue limit.
    """

    __slots__ = (
        "flow_id",
        "weight",
        "queue",
        "nodes",
        "deficit",
        "packets_sent",
        "bytes_sent",
        "packets_dropped",
        "max_queue",
        # Timestamp-scheduler scratch state (WFQ family): the virtual
        # start/finish tag of the flow's most recently tagged packet, and
        # the per-packet tag FIFO mirroring `queue`.
        "start_tag",
        "finish_tag",
        "tags",
    )

    def __init__(
        self,
        flow_id: Hashable,
        weight: float,
        *,
        max_queue: Optional[int] = None,
        integer_weight: bool = True,
    ) -> None:
        self.flow_id = flow_id
        if integer_weight:
            self.weight: float = check_weight(weight)  # type: ignore[arg-type]
            nodes = {
                bit: ColumnNode(self, bit) for bit in iter_set_bits(int(weight))
            }
        else:
            # Timestamp-based baselines (WFQ family) take real-valued
            # weights and never use the column linkage.
            self.weight = float(weight)
            nodes = {}
        self.queue: Deque[Packet] = deque()
        self.nodes: Dict[int, ColumnNode] = nodes
        self.deficit = 0
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_dropped = 0
        self.max_queue = max_queue
        self.start_tag = 0.0
        self.finish_tag = 0.0
        self.tags: Deque = deque()

    @property
    def backlogged(self) -> bool:
        """True when the flow has at least one queued packet."""
        return bool(self.queue)

    @property
    def backlog_bytes(self) -> int:
        """Total queued bytes."""
        return sum(p.size for p in self.queue)

    @property
    def in_matrix(self) -> bool:
        """True when any of the flow's column nodes is linked."""
        # All nodes link/unlink together; checking one suffices, but the
        # any() keeps the invariant self-describing (and tested).
        return any(node.linked for node in self.nodes.values())

    def offer(self, packet: Packet) -> bool:
        """Append ``packet`` to the queue; False (and drop-count) if full."""
        if self.max_queue is not None and len(self.queue) >= self.max_queue:
            self.packets_dropped += 1
            return False
        self.queue.append(packet)
        return True

    def take(self) -> Packet:
        """Pop and account the head-of-line packet (queue must be non-empty)."""
        packet = self.queue.popleft()
        self.packets_sent += 1
        self.bytes_sent += packet.size
        return packet

    def head_size(self) -> int:
        """Size in bytes of the head-of-line packet (queue must be non-empty)."""
        return self.queue[0].size

    def __repr__(self) -> str:
        return (
            f"FlowState(id={self.flow_id!r}, weight={self.weight}, "
            f"queued={len(self.queue)}, sent={self.packets_sent})"
        )


def iter_set_bits(value: int):
    """Yield the positions of the set bits of ``value``, lowest first."""
    while value:
        low = value & -value
        yield low.bit_length() - 1
        value ^= low
