"""Weight Spread Sequence (WSS) — the core combinatorial object of SRR.

The WSS of order ``k`` is defined recursively (Eq. 6-7 of the paper, as
restated in the author's later G-3 paper)::

    WSS^1 = (1)
    WSS^k = WSS^(k-1)  ++  (k)  ++  WSS^(k-1)           for k > 1

so ``WSS^2 = (1, 2, 1)``, ``WSS^3 = (1, 2, 1, 3, 1, 2, 1)``,
``WSS^4 = (1, 2, 1, 3, 1, 2, 1, 4, 1, 2, 1, 3, 1, 2, 1)``, and in general
``|WSS^k| = 2^k - 1`` with term values drawn from ``{1, .., k}``.

Closed form
-----------
Indexing terms from 1, the ``i``-th term of ``WSS^k`` equals ``v2(i) + 1``
where ``v2(i)`` is the 2-adic valuation (number of trailing zero bits) of
``i``. This follows directly from the recursion: position ``2^(k-1)`` is
the unique position with ``v2 = k - 1`` and the two halves replicate
``WSS^(k-1)`` at positions with unchanged valuation. The closed form is
what gives this implementation O(1) *time and space* per term — the paper
stores the sequence in a ``2^k`` array and separately proposes a
space-time tradeoff (build a high-order sequence from a stored low-order
one); both storage strategies are provided here for the E9 ablation.

Key properties (all unit/property-tested):

* value ``v`` (``1 <= v <= k``) occurs exactly ``2^(k-v)`` times in
  ``WSS^k``;
* occurrences of value ``v`` are *evenly spread*: consecutive positions
  of value ``v`` are exactly ``2^v`` apart;
* ``WSS^(k-1)`` is a prefix of ``WSS^k`` — scanning order can be raised
  or lowered on the fly (SRR uses this when the maximum flow weight
  changes);
* when SRR maps term value ``v`` to weight-matrix column ``order - v``,
  column ``j`` is visited exactly ``2^j`` times per round, hence a flow
  with weight ``w`` is served exactly ``w`` times per round.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

from .errors import ConfigurationError

__all__ = [
    "wss_term",
    "wss_sequence",
    "wss_sequence_recursive",
    "iter_wss",
    "wss_length",
    "value_count",
    "value_positions",
    "WSSCursor",
    "MaterializedWSS",
    "FoldedWSS",
]


def _trailing_zeros(i: int) -> int:
    """Number of trailing zero bits of a positive integer (2-adic valuation)."""
    # (i & -i) isolates the lowest set bit; its bit_length-1 is the valuation.
    return (i & -i).bit_length() - 1


def wss_term(position: int) -> int:
    """Return the term of the WSS at 1-based ``position`` in O(1).

    The value is independent of the order ``k`` as long as
    ``1 <= position <= 2^k - 1`` (the prefix property), so the order is
    not a parameter.

    Raises:
        ConfigurationError: if ``position < 1``.
    """
    if position < 1:
        raise ConfigurationError(f"WSS positions are 1-based, got {position}")
    return _trailing_zeros(position) + 1


def wss_length(order: int) -> int:
    """Length of ``WSS^order`` (``2^order - 1``)."""
    _check_order(order)
    return (1 << order) - 1


def value_count(order: int, value: int) -> int:
    """Number of occurrences of ``value`` in ``WSS^order`` (``2^(order-value)``)."""
    _check_order(order)
    if not 1 <= value <= order:
        raise ConfigurationError(
            f"WSS^{order} contains values 1..{order}, got {value}"
        )
    return 1 << (order - value)


def value_positions(order: int, value: int) -> List[int]:
    """All 1-based positions of ``value`` in ``WSS^order``.

    Occurrences are at ``2^(value-1) * (2j + 1)`` for ``j >= 0`` — i.e.
    evenly spaced ``2^value`` apart starting at ``2^(value-1)``.
    """
    count = value_count(order, value)
    first = 1 << (value - 1)
    step = 1 << value
    return [first + j * step for j in range(count)]


def iter_wss(order: int) -> Iterator[int]:
    """Yield the terms of ``WSS^order`` once, in O(1) space."""
    _check_order(order)
    for i in range(1, (1 << order)):
        yield _trailing_zeros(i) + 1


#: Shared materialised sequences keyed by order. The sequence is a pure
#: function of the order, and every SRR instance (plus the E9 ablation)
#: wants the same tables, so one process-wide copy suffices. Entries are
#: treated as immutable by all internal consumers; bounded in practice by
#: the order-26 materialisation cap below.
_SEQUENCE_CACHE: Dict[int, List[int]] = {}


def _materialized(order: int) -> List[int]:
    """The shared (do-not-mutate) materialised ``WSS^order``."""
    seq = _SEQUENCE_CACHE.get(order)
    if seq is None:
        _check_order(order)
        _SEQUENCE_CACHE[order] = seq = [
            _trailing_zeros(i) + 1 for i in range(1, 1 << order)
        ]
    return seq


def wss_sequence(order: int) -> List[int]:
    """Materialise ``WSS^order`` as a list (length ``2^order - 1``).

    Returns a fresh copy (callers may mutate); the underlying table is
    memoised per order, so repeated materialisations are a single
    C-level list copy.
    """
    return list(_materialized(order))


def wss_sequence_recursive(order: int) -> List[int]:
    """Materialise ``WSS^order`` by the paper's recursion (Eq. 7).

    Exists for cross-validation against the closed form; use
    :func:`wss_sequence` in real code.
    """
    _check_order(order)
    seq: List[int] = [1]
    for k in range(2, order + 1):
        seq = seq + [k] + seq
    return seq


def _check_order(order: int) -> None:
    if order < 1:
        raise ConfigurationError(f"WSS order must be >= 1, got {order}")
    if order > 62:
        # 2^order - 1 positions no longer fit comfortably in machine words.
        raise ConfigurationError(f"WSS order {order} is unreasonably large")


class WSSCursor:
    """A cyclic scanner over ``WSS^order`` computing terms in O(1).

    This is the form the SRR scheduler consumes: ``advance()`` moves to the
    next position (wrapping at ``2^order - 1``) and returns the term value.
    The order can be changed between calls (``set_order``); SRR does this
    when the highest occupied weight-matrix column changes.

    The cursor never allocates: it is a pair of integers.
    """

    __slots__ = ("_order", "_length", "_position")

    def __init__(self, order: int) -> None:
        _check_order(order)
        self._order = order
        self._length = (1 << order) - 1
        self._position = 0  # "before the first term"

    @property
    def order(self) -> int:
        """Current sequence order."""
        return self._order

    @property
    def position(self) -> int:
        """1-based position of the most recently returned term (0 = none yet)."""
        return self._position

    def set_order(self, order: int, *, restart: bool = True) -> None:
        """Switch to ``WSS^order``.

        With ``restart=True`` (SRR's policy on weight-matrix order change)
        scanning restarts from the beginning of the new sequence, bounding
        the fairness perturbation to a single round. With ``restart=False``
        the current position is folded into the new cycle length, relying
        on the prefix property of the WSS when lowering the order.
        """
        _check_order(order)
        self._order = order
        self._length = (1 << order) - 1
        if restart:
            self._position = 0
        else:
            self._position %= self._length

    def advance(self) -> int:
        """Move to the next position (cyclically) and return its term value."""
        pos = self._position + 1
        if pos > self._length:
            pos = 1
        self._position = pos
        return _trailing_zeros(pos) + 1

    def __repr__(self) -> str:
        return f"WSSCursor(order={self._order}, position={self._position})"


class MaterializedWSS:
    """The paper's storage strategy: the full ``2^order - 1`` term array.

    Term lookup is a single array read. Exists for the E9 space-time
    ablation; the closed form (:class:`WSSCursor`) is strictly better in
    Python but the *memory* numbers in E9 mirror the paper's discussion
    (a 32nd-order sequence would need a 4G-entry array).
    """

    __slots__ = ("order", "_seq")

    def __init__(self, order: int) -> None:
        _check_order(order)
        if order > 26:
            raise ConfigurationError(
                f"refusing to materialise WSS^{order} "
                f"({(1 << order) - 1} entries); use FoldedWSS or WSSCursor"
            )
        self.order = order
        self._seq = _materialized(order)

    def term(self, position: int) -> int:
        """Term at 1-based ``position``."""
        return self._seq[position - 1]

    def __len__(self) -> int:
        return len(self._seq)

    @property
    def storage_entries(self) -> int:
        """Number of stored entries (for the E9 space accounting)."""
        return len(self._seq)


class FoldedWSS:
    """The paper's space-time tradeoff: serve ``WSS^order`` from a stored
    ``WSS^stored_order`` plus one extra arithmetic step per lookup.

    Write a 1-based position ``i`` of ``WSS^order`` as
    ``i = q * 2^s + rem`` with ``s = stored_order``:

    * if ``rem != 0`` then ``v2(i) = v2(rem)``, so the term equals the
      stored ``WSS^s`` term at ``rem``;
    * if ``rem == 0`` then ``v2(i) = s + v2(q)``, so the term equals
      ``s`` plus the stored term at ``q`` (and ``q < 2^(order-s)`` always
      fits in the stored table when ``order <= 2 * s``).

    This reproduces the paper's example — a 32nd-order sequence served
    from a 17th-order table at the cost of one extra operation — while
    keeping exact equality with the direct definition (property-tested).
    """

    __slots__ = ("order", "stored_order", "_seq")

    def __init__(self, order: int, stored_order: int) -> None:
        _check_order(order)
        _check_order(stored_order)
        if stored_order >= order:
            raise ConfigurationError(
                "stored_order must be smaller than order "
                f"(got {stored_order} >= {order})"
            )
        if order > 2 * stored_order:
            raise ConfigurationError(
                f"WSS^{order} cannot be folded onto WSS^{stored_order}: "
                "need order <= 2 * stored_order"
            )
        self.order = order
        self.stored_order = stored_order
        self._seq = _materialized(stored_order)

    def term(self, position: int) -> int:
        """Term of ``WSS^order`` at 1-based ``position``, from the folded table."""
        if not 1 <= position <= (1 << self.order) - 1:
            raise ConfigurationError(
                f"position {position} outside WSS^{self.order}"
            )
        s = self.stored_order
        rem = position & ((1 << s) - 1)
        if rem:
            return self._seq[rem - 1]
        q = position >> s
        return s + self._seq[q - 1]

    @property
    def storage_entries(self) -> int:
        """Number of stored entries (for the E9 space accounting)."""
        return len(self._seq)

    def sequence(self) -> Sequence[int]:
        """Materialise the full folded sequence (testing helper; O(2^order))."""
        return [self.term(i) for i in range(1, (1 << self.order))]
