"""Core of the reproduction: the SRR scheduler and its data structures.

Public surface:

* :class:`~repro.core.srr.SRRScheduler` — the paper's contribution;
* :mod:`~repro.core.wss` — the Weight Spread Sequence;
* :class:`~repro.core.weight_matrix.WeightMatrix` — binary weight coding;
* :class:`~repro.core.packet.Packet` — the packet record;
* :class:`~repro.core.interfaces.PacketScheduler` — the interface every
  scheduler (core, baseline, extension) implements.
"""

from .errors import (
    AdmissionError,
    ArtifactError,
    CapacityError,
    ConfigurationError,
    DuplicateFlowError,
    FlowError,
    InvalidWeightError,
    InvariantViolation,
    ReproError,
    SLOViolation,
    SimulationError,
    UnknownFlowError,
)
from .flow import FlowState, check_weight, iter_set_bits
from .hierarchy import HierarchicalScheduler
from .interfaces import FlowTableScheduler, PacketScheduler
from .opcount import NULL_COUNTER, NullOpCounter, OpCounter
from .packet import Packet
from .srr import SRRScheduler
from .weight_matrix import ColumnList, WeightMatrix
from .wss import (
    FoldedWSS,
    MaterializedWSS,
    WSSCursor,
    iter_wss,
    value_count,
    value_positions,
    wss_length,
    wss_sequence,
    wss_sequence_recursive,
    wss_term,
)

__all__ = [
    "AdmissionError",
    "ArtifactError",
    "CapacityError",
    "ColumnList",
    "ConfigurationError",
    "DuplicateFlowError",
    "FlowError",
    "FlowState",
    "FlowTableScheduler",
    "HierarchicalScheduler",
    "FoldedWSS",
    "InvalidWeightError",
    "InvariantViolation",
    "MaterializedWSS",
    "NULL_COUNTER",
    "NullOpCounter",
    "OpCounter",
    "Packet",
    "PacketScheduler",
    "ReproError",
    "SLOViolation",
    "SRRScheduler",
    "SimulationError",
    "UnknownFlowError",
    "WSSCursor",
    "WeightMatrix",
    "check_weight",
    "iter_set_bits",
    "iter_wss",
    "value_count",
    "value_positions",
    "wss_length",
    "wss_sequence",
    "wss_sequence_recursive",
    "wss_term",
]
