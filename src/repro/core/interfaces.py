"""The scheduler interface shared by SRR, the baselines and the extensions.

Every scheduler in this repository is a *packet scheduler for an output
link*: flows are registered with a weight, packets are pushed with
:meth:`PacketScheduler.enqueue`, and the link transmitter pulls the next
packet to send with :meth:`PacketScheduler.dequeue`. The network simulator
(:mod:`repro.net`) talks to schedulers exclusively through this interface,
so any scheduler can be plugged into any output port.

:class:`FlowTableScheduler` factors the bookkeeping every concrete
scheduler needs (flow table, backlog accounting, drop counting) so that
subclasses only implement the actual service discipline.
"""

from __future__ import annotations

import abc
from typing import ClassVar, Dict, Hashable, Iterable, Optional

from .errors import (
    ConfigurationError,
    DuplicateFlowError,
    InvalidWeightError,
    UnknownFlowError,
)
from .flow import ColumnNode, FlowState, check_weight, iter_set_bits
from .opcount import NULL_COUNTER, OpCounter
from .packet import Packet

__all__ = ["PacketScheduler", "FlowTableScheduler"]


class PacketScheduler(abc.ABC):
    """Abstract work-conserving packet scheduler for one output link."""

    #: Short machine-readable name used by the registry and in reports.
    name: ClassVar[str] = "abstract"

    #: Whether the scheduler codes weights in binary (requires ints >= 1).
    requires_integer_weights: ClassVar[bool] = False

    #: Whether weight 0 registers a best-effort flow (G-3/RRR's f0 class).
    #: The network builder maps weight-0 flows to weight 1 on schedulers
    #: without a best-effort class (work conservation hands them the
    #: residue anyway).
    supports_zero_weight: ClassVar[bool] = False

    @abc.abstractmethod
    def add_flow(
        self,
        flow_id: Hashable,
        weight: float = 1,
        *,
        max_queue: Optional[int] = None,
    ) -> None:
        """Register a flow before any of its packets may be enqueued."""

    @abc.abstractmethod
    def remove_flow(self, flow_id: Hashable) -> int:
        """Deregister a flow, discarding its queue; returns packets dropped."""

    @abc.abstractmethod
    def enqueue(self, packet: Packet) -> bool:
        """Queue ``packet`` on its flow; False if the flow queue was full."""

    @abc.abstractmethod
    def dequeue(self) -> Optional[Packet]:
        """Return the next packet to transmit, or ``None`` when idle."""

    @property
    @abc.abstractmethod
    def backlog(self) -> int:
        """Total queued packets across all flows."""

    @property
    @abc.abstractmethod
    def backlog_bytes(self) -> int:
        """Total queued bytes across all flows."""

    @abc.abstractmethod
    def has_flow(self, flow_id: Hashable) -> bool:
        """True when ``flow_id`` is registered."""

    @abc.abstractmethod
    def flow_ids(self) -> Iterable[Hashable]:
        """Registered flow ids (iteration order unspecified)."""

    def __len__(self) -> int:
        return self.backlog

    @property
    def is_idle(self) -> bool:
        """True when no packet is queued."""
        return self.backlog == 0


class FlowTableScheduler(PacketScheduler):
    """Base class managing the flow table and backlog accounting.

    Subclasses implement :meth:`dequeue` plus two hooks:

    * :meth:`_on_flow_added` — wire the new :class:`FlowState` into the
      discipline's data structures;
    * :meth:`_on_flow_removed` — tear it out (called with the flow still
      present in the table);
    * :meth:`_on_backlogged` — the flow just went from empty to backlogged
      (round-robin disciplines typically (re)insert it into their active
      structure here).

    The base class validates weights according to
    ``requires_integer_weights`` and keeps ``backlog``/``backlog_bytes``
    exact, including on drops and flow removal.

    Disciplines whose flow hookup is fully captured by the three hooks
    (SRR, DRR) additionally support **in-place reweighting**
    (:meth:`reweight`): the flow is detached, its weight (and, for
    binary-coded weights, its column nodes) rewritten, and re-attached —
    the queue is never touched, so no packet is dropped or reordered by
    a weight change. They opt in via ``supports_reweight``.
    """

    #: Whether :meth:`reweight` is implemented for this discipline.
    supports_reweight: ClassVar[bool] = False

    def __init__(self, *, op_counter: OpCounter = NULL_COUNTER) -> None:
        self._flows: Dict[Hashable, FlowState] = {}
        self._backlog_packets = 0
        self._backlog_bytes = 0
        self._ops = op_counter

    # -- flow management ---------------------------------------------------

    def add_flow(
        self,
        flow_id: Hashable,
        weight: float = 1,
        *,
        max_queue: Optional[int] = None,
    ) -> None:
        if flow_id in self._flows:
            raise DuplicateFlowError(flow_id)
        if not self.requires_integer_weights:
            if isinstance(weight, bool) or not isinstance(weight, (int, float)):
                raise InvalidWeightError(f"weight must be numeric, got {weight!r}")
            if weight <= 0:
                raise InvalidWeightError(f"weight must be > 0, got {weight}")
        flow = FlowState(
            flow_id,
            weight,
            max_queue=max_queue,
            integer_weight=self.requires_integer_weights,
        )
        self._flows[flow_id] = flow
        self._on_flow_added(flow)

    def remove_flow(self, flow_id: Hashable) -> int:
        flow = self._lookup(flow_id)
        self._on_flow_removed(flow)
        dropped = len(flow.queue)
        self._backlog_packets -= dropped
        self._backlog_bytes -= flow.backlog_bytes
        flow.queue.clear()
        del self._flows[flow_id]
        return dropped

    def has_flow(self, flow_id: Hashable) -> bool:
        return flow_id in self._flows

    def flow_ids(self) -> Iterable[Hashable]:
        return self._flows.keys()

    def flow_state(self, flow_id: Hashable) -> FlowState:
        """The :class:`FlowState` record for ``flow_id`` (read-mostly)."""
        return self._lookup(flow_id)

    @property
    def flow_count(self) -> int:
        """Number of registered flows."""
        return len(self._flows)

    def reweight(self, flow_id: Hashable, weight: float) -> None:
        """Change a registered flow's weight without touching its queue.

        Detaches the flow from the discipline's structures
        (:meth:`_on_flow_removed`), rewrites the weight (and column
        nodes, for binary-coded weights), re-attaches it
        (:meth:`_on_flow_added`, then :meth:`_on_backlogged` if packets
        are queued). If the new weight is rejected — SRR's ``max_order``,
        DRR's minimum per-visit credit, plain validation — the flow is
        restored exactly as it was and the error re-raised.

        Only disciplines with ``supports_reweight`` accept this;
        others raise :class:`ConfigurationError`.
        """
        if not self.supports_reweight:
            raise ConfigurationError(
                f"scheduler {getattr(self, 'name', type(self).__name__)!r} "
                f"does not support in-place reweighting"
            )
        flow = self._lookup(flow_id)
        if weight == flow.weight:
            return
        if not self.requires_integer_weights:
            if isinstance(weight, bool) or not isinstance(weight, (int, float)):
                raise InvalidWeightError(
                    f"weight must be numeric, got {weight!r}"
                )
            if weight <= 0:
                raise InvalidWeightError(f"weight must be > 0, got {weight}")
        old_weight = flow.weight
        old_nodes = flow.nodes
        self._on_flow_removed(flow)
        try:
            if self.requires_integer_weights:
                flow.weight = check_weight(weight)  # type: ignore[arg-type]
                flow.nodes = {
                    bit: ColumnNode(flow, bit)
                    for bit in iter_set_bits(int(weight))
                }
            else:
                flow.weight = float(weight)
            self._on_flow_added(flow)
        except Exception:
            # _on_flow_added failure paths evict the flow from the table
            # (SRR max_order, DRR credit floor); restore it fully.
            flow.weight = old_weight
            flow.nodes = old_nodes
            self._flows[flow_id] = flow
            self._on_flow_added(flow)
            if flow.queue:
                self._on_backlogged(flow)
            raise
        if flow.queue:
            self._on_backlogged(flow)

    # -- datapath ------------------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        flow = self._lookup(packet.flow_id)
        was_backlogged = bool(flow.queue)
        if not flow.offer(packet):
            return False
        self._backlog_packets += 1
        self._backlog_bytes += packet.size
        if not was_backlogged:
            self._on_backlogged(flow)
        return True

    @property
    def backlog(self) -> int:
        return self._backlog_packets

    @property
    def backlog_bytes(self) -> int:
        return self._backlog_bytes

    # -- subclass hooks --------------------------------------------------

    def _on_flow_added(self, flow: FlowState) -> None:
        """Hook: a flow was registered (default: nothing)."""

    def _on_flow_removed(self, flow: FlowState) -> None:
        """Hook: a flow is being deregistered (default: nothing)."""

    def _on_backlogged(self, flow: FlowState) -> None:
        """Hook: ``flow`` transitioned empty -> backlogged (default: nothing)."""

    # -- helpers -----------------------------------------------------------

    def _lookup(self, flow_id: Hashable) -> FlowState:
        try:
            return self._flows[flow_id]
        except KeyError:
            raise UnknownFlowError(flow_id) from None

    def _account_departure(self, packet: Packet) -> Packet:
        """Update backlog counters for a departing packet and return it."""
        self._backlog_packets -= 1
        self._backlog_bytes -= packet.size
        return packet

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(flows={len(self._flows)}, "
            f"backlog={self._backlog_packets})"
        )
