"""The SRR Weight Matrix (WM).

The paper's WM (Eq. 3) has one row per active flow and one column per
binary digit of the weights: entry ``a[i][j]`` is bit ``j`` of flow ``i``'s
weight. SRR never stores the matrix densely — what the scheduler needs is,
for each column ``j``, the list of flows whose weight has bit ``j`` set.

This module implements exactly that: an array of intrusive doubly-linked
lists (sentinel-based), one per column, with

* O(1) insert of a flow into all its columns (one node per set bit,
  pre-allocated on the flow),
* O(1) unlink per node when a flow leaves (drained or deleted),
* O(1) maintenance of the *matrix order* — the index of the highest
  non-empty column plus one — via a bitmask of non-empty columns. SRR
  scans ``WSS^order``, and term value ``v`` selects column ``order - v``;
  keeping ``order`` tight guarantees that term value 1 (every other WSS
  position) always lands on a non-empty column, which is what bounds the
  number of idle scan steps between services to one.
"""

from __future__ import annotations

from typing import Iterator, List

from .errors import ConfigurationError
from .flow import ColumnNode, FlowState
from .opcount import NULL_COUNTER, OpCounter

__all__ = ["ColumnList", "WeightMatrix"]


class ColumnList:
    """One WM column: a sentinel-based intrusive doubly-linked flow list."""

    __slots__ = ("index", "head", "tail", "size")

    def __init__(self, index: int) -> None:
        self.index = index
        # Sentinels carry no flow; real nodes always sit between them.
        self.head = ColumnNode(None, index)
        self.tail = ColumnNode(None, index)
        self.head.next = self.tail
        self.tail.prev = self.head
        self.size = 0

    def append(self, node: ColumnNode) -> None:
        """Link ``node`` before the tail sentinel (O(1))."""
        if node.linked:
            raise ConfigurationError(f"{node!r} is already linked")
        last = self.tail.prev
        assert last is not None
        last.next = node
        node.prev = last
        node.next = self.tail
        self.tail.prev = node
        node.linked = True
        self.size += 1

    def unlink(self, node: ColumnNode) -> None:
        """Remove ``node`` from the list (O(1))."""
        if not node.linked:
            raise ConfigurationError(f"{node!r} is not linked")
        prev, nxt = node.prev, node.next
        assert prev is not None and nxt is not None
        prev.next = nxt
        nxt.prev = prev
        node.prev = node.next = None
        node.linked = False
        self.size -= 1

    @property
    def empty(self) -> bool:
        return self.size == 0

    def first(self) -> ColumnNode:
        """First real node, or the tail sentinel when empty."""
        nxt = self.head.next
        assert nxt is not None
        return nxt

    def __iter__(self) -> Iterator[FlowState]:
        node = self.head.next
        while node is not self.tail:
            assert node is not None and node.flow is not None
            yield node.flow
            node = node.next

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"ColumnList(index={self.index}, size={self.size})"


class WeightMatrix:
    """Column lists + order tracking for SRR.

    Args:
        max_order: Number of columns to pre-allocate (weights must satisfy
            ``weight.bit_length() <= max_order``). 62 columns cost nothing
            and accept any sane weight, so that is the default.
        op_counter: Optional :class:`OpCounter` bumped once per elementary
            linked-list operation (used by experiment E5).
    """

    def __init__(
        self,
        max_order: int = 62,
        *,
        op_counter: OpCounter = NULL_COUNTER,
    ) -> None:
        if not 1 <= max_order <= 62:
            raise ConfigurationError(
                f"max_order must be in 1..62, got {max_order}"
            )
        self.max_order = max_order
        self.columns: List[ColumnList] = [
            ColumnList(j) for j in range(max_order)
        ]
        self._nonempty_mask = 0
        self._flow_count = 0
        self._ops = op_counter

    # -- membership ------------------------------------------------------

    def insert(self, flow: FlowState) -> None:
        """Link ``flow`` into every column named by a set bit of its weight."""
        if flow.weight.bit_length() > self.max_order:
            raise ConfigurationError(
                f"weight {flow.weight} needs "
                f"{flow.weight.bit_length()} columns, matrix has {self.max_order}"
            )
        for bit, node in flow.nodes.items():
            column = self.columns[bit]
            column.append(node)
            self._nonempty_mask |= 1 << bit
            self._ops.bump()
        self._flow_count += 1

    def remove(self, flow: FlowState) -> None:
        """Unlink ``flow`` from all its columns (flow must be inserted)."""
        for bit, node in flow.nodes.items():
            column = self.columns[bit]
            column.unlink(node)
            if column.empty:
                self._nonempty_mask &= ~(1 << bit)
            self._ops.bump()
        self._flow_count -= 1

    # -- queries ----------------------------------------------------------

    @property
    def order(self) -> int:
        """Index of the highest non-empty column, plus one (0 when empty).

        This is the WSS order SRR must scan with: term value 1 then maps
        to the highest non-empty column.
        """
        return self._nonempty_mask.bit_length()

    @property
    def empty(self) -> bool:
        return self._nonempty_mask == 0

    @property
    def flow_count(self) -> int:
        """Number of flows currently linked into the matrix."""
        return self._flow_count

    def column(self, index: int) -> ColumnList:
        """The column list at ``index`` (0-based, 0 = least significant bit)."""
        return self.columns[index]

    def column_population(self, index: int) -> int:
        """Number of flows with bit ``index`` set (the paper's ``y_j``)."""
        return self.columns[index].size

    def check_invariants(self) -> None:
        """Verify internal consistency (test helper; O(total nodes))."""
        mask = 0
        count_nodes = 0
        for column in self.columns:
            n = 0
            node = column.head.next
            prev = column.head
            while node is not column.tail:
                assert node is not None
                if node.prev is not prev:
                    raise AssertionError(f"broken prev link in {column!r}")
                if not node.linked:
                    raise AssertionError(f"unlinked node reachable in {column!r}")
                if node.flow is None:
                    raise AssertionError(f"sentinel reachable mid-list in {column!r}")
                prev, node = node, node.next
                n += 1
            if n != column.size:
                raise AssertionError(
                    f"{column!r} size {column.size} but {n} reachable nodes"
                )
            if n:
                mask |= 1 << column.index
            count_nodes += n
        if mask != self._nonempty_mask:
            raise AssertionError(
                f"nonempty mask {self._nonempty_mask:b} != recomputed {mask:b}"
            )

    def __repr__(self) -> str:
        return (
            f"WeightMatrix(order={self.order}, flows={self._flow_count}, "
            f"max_order={self.max_order})"
        )
