"""Hierarchical link sharing: schedulers composed into a class tree.

Multi-service networks allocate the link to *classes* (tenants, service
tiers) before flows: e.g. 60% to voice, 30% to data, 10% to best effort,
with per-flow scheduling inside each class. The classic construction
(H-PFQ/H-WFQ, CBQ) composes per-node schedulers into a tree.

:class:`HierarchicalScheduler` implements the composition generically
over this repository's :class:`~repro.core.interfaces.PacketScheduler`
interface using the standard *shadow token* technique:

* the root scheduler sees one pseudo-flow per class; every real packet
  enqueued into a class also enqueues a same-size shadow token for that
  class at the root;
* ``dequeue`` first asks the root which class owns the next slot (its
  token), then asks that class's child scheduler for the actual packet.

Because tokens mirror real packets one-to-one (count and size), the root
always selects a class with a real packet available, and each class's
aggregate service follows the root discipline exactly while intra-class
order follows the child discipline. Any registered discipline works at
either level — an SRR root over SRR children gives O(1) hierarchical
link sharing, which is the configuration the example exercises.

Single-level nesting covers the experiments here; deeper trees compose
by using another ``HierarchicalScheduler`` as a child.
"""

from __future__ import annotations

from typing import ClassVar, Dict, Hashable, Iterable, Optional

from .errors import ConfigurationError, DuplicateFlowError, UnknownFlowError
from .interfaces import PacketScheduler
from .packet import Packet

__all__ = ["HierarchicalScheduler"]


class HierarchicalScheduler(PacketScheduler):
    """A two-level class tree over arbitrary member schedulers.

    Args:
        root: Scheduler arbitrating between classes (each class is one
            flow of this scheduler, registered with the class weight).
        children: Mapping class id -> scheduler handling that class's
            flows. Child weights are interpreted by the child discipline.

    Flows are addressed as usual by flow id; :meth:`add_flow` takes the
    extra ``class_id`` argument naming the parent class.
    """

    name: ClassVar[str] = "hierarchical"

    def __init__(
        self,
        root: PacketScheduler,
        children: Optional[Dict[Hashable, PacketScheduler]] = None,
    ) -> None:
        self._root = root
        self._children: Dict[Hashable, PacketScheduler] = {}
        self._class_of: Dict[Hashable, Hashable] = {}
        if children:
            for class_id, child in children.items():
                self.add_class(class_id, 1, scheduler=child)

    # -- class management --------------------------------------------------

    def add_class(
        self,
        class_id: Hashable,
        weight: float = 1,
        *,
        scheduler: PacketScheduler,
    ) -> None:
        """Register a class with its aggregate ``weight`` and scheduler."""
        if class_id in self._children:
            raise ConfigurationError(f"class {class_id!r} already exists")
        if scheduler is self._root or scheduler is self:
            raise ConfigurationError("a class cannot be its own parent")
        self._root.add_flow(class_id, weight)
        self._children[class_id] = scheduler

    def remove_class(self, class_id: Hashable) -> int:
        """Remove a class and all its flows; returns packets dropped."""
        child = self._children.pop(class_id, None)
        if child is None:
            raise ConfigurationError(f"unknown class {class_id!r}")
        dropped = child.backlog
        for fid in list(child.flow_ids()):
            child.remove_flow(fid)
            del self._class_of[fid]
        self._root.remove_flow(class_id)
        return dropped

    def class_ids(self) -> Iterable[Hashable]:
        """Registered class ids."""
        return self._children.keys()

    def child(self, class_id: Hashable) -> PacketScheduler:
        """The scheduler serving ``class_id``."""
        try:
            return self._children[class_id]
        except KeyError:
            raise ConfigurationError(f"unknown class {class_id!r}") from None

    # -- PacketScheduler interface ------------------------------------------

    def add_flow(
        self,
        flow_id: Hashable,
        weight: float = 1,
        *,
        class_id: Hashable = None,
        max_queue: Optional[int] = None,
    ) -> None:
        if class_id is None:
            raise ConfigurationError(
                "HierarchicalScheduler.add_flow requires class_id="
            )
        if flow_id in self._class_of:
            raise DuplicateFlowError(flow_id)
        child = self.child(class_id)
        child.add_flow(flow_id, weight, max_queue=max_queue)
        self._class_of[flow_id] = class_id

    def remove_flow(self, flow_id: Hashable) -> int:
        class_id = self._class_of.pop(flow_id, None)
        if class_id is None:
            raise UnknownFlowError(flow_id)
        child = self._children[class_id]
        # Remove the child's packets AND the matching shadow tokens: the
        # child reports how many packets it dropped; the class's token
        # flow is rebuilt to mirror what is still queued.
        dropped = child.remove_flow(flow_id)
        self._rebuild_tokens(class_id, dropped)
        return dropped

    def _rebuild_tokens(self, class_id: Hashable, dropped: int) -> None:
        """Resynchronise the root's shadow tokens with a class's queues.

        The root has no 'remove k packets of flow x' primitive, so the
        class's pseudo-flow is removed and re-added, then one token per
        still-queued packet (with its real size, so byte-based root
        disciplines keep exact accounting) is re-enqueued.
        """
        if dropped == 0:
            return
        child = self._children[class_id]
        weight = self._class_weight(class_id)
        self._root.remove_flow(class_id)
        self._root.add_flow(class_id, weight)
        sizes = []
        flow_state = getattr(child, "flow_state", None)
        if flow_state is not None:
            for fid in child.flow_ids():
                sizes.extend(p.size for p in flow_state(fid).queue)
        else:
            sizes = [1] * child.backlog
        for size in sizes:
            self._root.enqueue(Packet(class_id, size))

    def _class_weight(self, class_id: Hashable) -> float:
        # FlowTableScheduler roots expose flow_state; fall back to 1.
        state = getattr(self._root, "flow_state", None)
        if state is not None:
            return self._root.flow_state(class_id).weight
        return 1

    def enqueue(self, packet: Packet) -> bool:
        class_id = self._class_of.get(packet.flow_id)
        if class_id is None:
            raise UnknownFlowError(packet.flow_id)
        child = self._children[class_id]
        if not child.enqueue(packet):
            return False
        token = Packet(class_id, packet.size)
        token.enqueued_at = packet.enqueued_at
        accepted = self._root.enqueue(token)
        assert accepted, "root token queue must be unbounded"
        return True

    def dequeue(self) -> Optional[Packet]:
        token = self._root.dequeue()
        if token is None:
            return None
        child = self._children[token.flow_id]
        packet = child.dequeue()
        assert packet is not None, "token without a matching packet"
        return packet

    # -- accounting ----------------------------------------------------------

    @property
    def backlog(self) -> int:
        return sum(child.backlog for child in self._children.values())

    @property
    def backlog_bytes(self) -> int:
        return sum(child.backlog_bytes for child in self._children.values())

    def has_flow(self, flow_id: Hashable) -> bool:
        return flow_id in self._class_of

    def flow_ids(self) -> Iterable[Hashable]:
        return self._class_of.keys()

    def __repr__(self) -> str:
        return (
            f"HierarchicalScheduler(root={type(self._root).__name__}, "
            f"classes={len(self._children)}, backlog={self.backlog})"
        )
