"""SRR — the Smoothed Round Robin packet scheduler (the paper's contribution).

Algorithm
---------
Each flow ``f_i`` has a positive integer weight ``w_i`` proportional to its
reserved rate. The binary digits of the weights form the Weight Matrix
(:mod:`repro.core.weight_matrix`): column ``j`` holds the flows whose
weight has bit ``j`` set. SRR scans the Weight Spread Sequence
(:mod:`repro.core.wss`) of order ``k`` — where ``k`` is the index of the
highest non-empty column plus one — cyclically. When the scanned term has
value ``v``, column ``k - v`` is selected and **every flow currently in
that column is served once** (one packet in the paper's fixed-size model).

Why this is fair and smooth: value ``v`` occurs ``2^(k-v)`` times per WSS
round, so column ``j`` is visited ``2^j`` times per round and a flow of
weight ``w`` receives exactly ``w = Σ 2^j`` services per round — the same
per-round allocation as WRR, but with each flow's services spread evenly
across the round instead of bunched together (the WSS interleaves columns
the way bit-reversal interleaves indices).

Why this is O(1): advancing to the next flow within a column is one
pointer step; advancing to the next WSS term is one counter increment plus
one trailing-zero count (the closed form ``term(i) = v2(i) + 1``, or one
array read when the sequence is materialised as in the paper). Because
``k`` always tracks the highest non-empty column, term value 1 — which
occurs at every odd position, i.e. every other term — always selects a
non-empty column, so at most one scanned term in a row can come up empty.
Hence ``dequeue`` is O(1) worst-case per packet, independent of N.

Work conservation: only *backlogged* flows are kept in the matrix. A flow
is inserted when its queue goes non-empty and unlinked the moment it
drains (the paper's SRR behaves the same; this is what distinguishes it
from the slotted, reservation-table G-3 follow-on).

Delay: SRR does **not** provide a constant delay bound — Theorem 1 /
Lemma 2 (restated in :mod:`repro.analysis.bounds`) show the single-node
delay is ``<= θ(n_m)·N·L/C + (m-1)·L/r`` with ``θ(n) < n``, i.e. linear in
the number of active flows. Experiments E3/E4 reproduce this shape.

Service modes
-------------
``packet``
    The paper's rule: one packet per visit. Exact weighted fairness in
    *packets per round*; in networks with uniform packet size L (the
    fixed-size model of the paper) this is byte-exact too.
``deficit``
    The variable-packet-size variant (the paper's "multi-service" setting;
    the author's variants reference). Each visit grants the flow
    ``quantum`` bytes of credit; the flow transmits head-of-line packets
    while credit lasts, with the unused remainder carried over exactly as
    in DRR. With ``quantum >= max packet size`` every visit sends at least
    one packet, preserving the O(1) amortised bound.

Dynamic order changes
---------------------
When the highest non-empty column changes (a heavier flow arrives, or the
heaviest drains), the scan order ``k`` changes with it. This
implementation restarts the WSS scan at the beginning of the new sequence,
which perturbs fairness for at most one round; the prefix property of the
WSS (``WSS^(k-1)`` is a prefix of ``WSS^k``) keeps the perturbation small
in practice. The policy is ablated in E9.
"""

from __future__ import annotations

from typing import ClassVar, Hashable, List, Optional

from .errors import ConfigurationError
from .flow import ColumnNode, FlowState
from .interfaces import FlowTableScheduler
from .opcount import NULL_COUNTER, OpCounter
from .packet import Packet
from .weight_matrix import WeightMatrix

__all__ = ["SRRScheduler"]


class SRRScheduler(FlowTableScheduler):
    """Smoothed Round Robin (Guo, SIGCOMM 2001 / ToN 2004).

    Args:
        max_order: Largest supported ``weight.bit_length()`` (columns are
            pre-allocated; 62 accepts any practical weight).
        mode: ``"packet"`` (paper, fixed packet size) or ``"deficit"``
            (variable packet size; DRR-style byte credit per visit).
        quantum: Byte credit granted per visit in ``deficit`` mode. Must
            be >= the largest packet the flow may send for the O(1) bound
            to hold; defaults to 1500 (Ethernet MTU).
        op_counter: Elementary-operation counter for complexity
            experiments.

    The scheduler is work-conserving: ``dequeue`` returns a packet
    whenever any flow is backlogged.
    """

    name: ClassVar[str] = "srr"
    requires_integer_weights: ClassVar[bool] = True
    supports_reweight: ClassVar[bool] = True

    def __init__(
        self,
        *,
        max_order: int = 62,
        mode: str = "packet",
        quantum: int = 1500,
        wss_storage: str = "closed",
        order_change: str = "restart",
        op_counter: OpCounter = NULL_COUNTER,
    ) -> None:
        super().__init__(op_counter=op_counter)
        if mode not in ("packet", "deficit"):
            raise ConfigurationError(
                f"mode must be 'packet' or 'deficit', got {mode!r}"
            )
        if mode == "deficit" and quantum < 1:
            raise ConfigurationError(f"quantum must be >= 1, got {quantum}")
        if wss_storage not in ("closed", "materialized"):
            raise ConfigurationError(
                "wss_storage must be 'closed' (compute terms, zero space) "
                f"or 'materialized' (the paper's stored array), got "
                f"{wss_storage!r}"
            )
        if order_change not in ("restart", "continue"):
            raise ConfigurationError(
                "order_change must be 'restart' (re-scan the new WSS from "
                "its start; bounded one-round perturbation) or 'continue' "
                "(fold the position into the new cycle, leaning on the WSS "
                f"prefix property), got {order_change!r}"
            )
        self.mode = mode
        self.quantum = quantum
        self.wss_storage = wss_storage
        self.order_change = order_change
        # Materialised WSS tables by order, built lazily (paper strategy;
        # ablated in E9). The closed form needs none of this.
        self._wss_tables: dict = {}
        self.matrix = WeightMatrix(max_order, op_counter=op_counter)
        # WSS scan state. _order == 0 means "scan not started / matrix empty".
        self._order = 0
        self._position = 0
        # Cursor into the column currently being served: the next candidate
        # node, or a tail sentinel when the column is exhausted, or None
        # when no column is selected.
        self._cursor: Optional[ColumnNode] = None
        # Deficit mode: flow that still holds enough credit to keep sending.
        self._stuck: Optional[FlowState] = None
        #: Cumulative WSS terms examined (including terms whose column was
        #: empty). Per-dequeue deltas of this counter are the scan-length
        #: distribution behind the O(1)-evidence profiling; the paper's
        #: bound is that at most two terms are examined per packet.
        self.terms_scanned = 0

    # -- FlowTableScheduler hooks -----------------------------------------

    def _on_flow_added(self, flow: FlowState) -> None:
        bits = int(flow.weight).bit_length()
        if bits > self.matrix.max_order:
            del self._flows[flow.flow_id]
            raise ConfigurationError(
                f"weight {flow.weight} needs {bits} weight-matrix columns, "
                f"scheduler was built with max_order={self.matrix.max_order}"
            )

    def _on_backlogged(self, flow: FlowState) -> None:
        # Empty -> backlogged: (re)enter the weight matrix. Appending at
        # column tails means a newly backlogged flow is picked up by the
        # in-progress column scan only if the cursor has not passed the
        # tail yet; either way it is served in the next visit of any of
        # its columns.
        self.matrix.insert(flow)

    def _on_flow_removed(self, flow: FlowState) -> None:
        if flow.in_matrix:
            self._unlink(flow)
        if self._stuck is flow:
            self._stuck = None
        flow.deficit = 0

    # -- scheduling --------------------------------------------------------

    def dequeue(self) -> Optional[Packet]:
        """Select the next packet in O(1) (see module docstring)."""
        if self.mode == "packet":
            return self._dequeue_packet_mode()
        return self._dequeue_deficit_mode()

    def _dequeue_packet_mode(self) -> Optional[Packet]:
        ops = self._ops
        while True:
            node = self._cursor
            if node is not None and node.flow is not None:
                # Serve this flow once and advance within the column.
                flow = node.flow
                self._cursor = node.next
                ops.bump()
                packet = flow.take()
                if not flow.queue:
                    self._unlink(flow)
                return self._account_departure(packet)
            # Column exhausted (or no column yet): advance the WSS scan.
            if not self._advance_term():
                return None

    def _dequeue_deficit_mode(self) -> Optional[Packet]:
        ops = self._ops
        # A flow with leftover credit keeps the link until the credit no
        # longer covers its head-of-line packet.
        stuck = self._stuck
        if stuck is not None:
            self._stuck = None
            if stuck.queue and stuck.head_size() <= stuck.deficit:
                return self._send_with_deficit(stuck)
        while True:
            node = self._cursor
            if node is not None and node.flow is not None:
                flow = node.flow
                self._cursor = node.next
                ops.bump()
                flow.deficit += self.quantum
                if flow.head_size() <= flow.deficit:
                    return self._send_with_deficit(flow)
                # Credit too small for the head packet: skip this visit,
                # carrying the credit (exactly DRR's behaviour when the
                # quantum is smaller than the packet).
                continue
            if not self._advance_term():
                return None

    def _send_with_deficit(self, flow: FlowState) -> Packet:
        packet = flow.take()
        flow.deficit -= packet.size
        if not flow.queue:
            # The paper's DRR-style rule: credit does not survive idling.
            flow.deficit = 0
            self._unlink(flow)
        elif flow.head_size() <= flow.deficit:
            self._stuck = flow
        return self._account_departure(packet)

    def _advance_term(self) -> bool:
        """Advance to the next WSS term and point the cursor at its column.

        Returns False when the matrix is empty (scheduler idle). At most
        one empty column can be scanned in a row (term value 1 — every
        other position — selects the guaranteed-non-empty top column), so
        callers loop at most twice per packet.
        """
        matrix = self.matrix
        if matrix.empty:
            self._order = 0
            self._position = 0
            self._cursor = None
            return False
        order = matrix.order
        if order != self._order:
            self._order = order
            if self.order_change == "restart":
                # Restart the scan (bounded perturbation; see module
                # docstring).
                self._position = 0
            else:
                # Fold the position into the new cycle. When the order
                # shrinks, the prefix property keeps already-scanned
                # structure meaningful; when it grows, scanning simply
                # proceeds deeper into the longer sequence.
                self._position %= (1 << order) - 1
        position = self._position + 1
        if position > (1 << order) - 1:
            position = 1
        self._position = position
        if self.wss_storage == "closed":
            # Closed-form WSS term: v2(position) + 1.
            value = (position & -position).bit_length()
        else:
            table = self._wss_tables.get(order)
            if table is None:
                from .wss import MaterializedWSS

                table = self._wss_tables[order] = MaterializedWSS(order)
            value = table.term(position)
        column = matrix.columns[order - value]
        self._cursor = column.first()
        self.terms_scanned += 1
        self._ops.bump()
        return True

    def _unlink(self, flow: FlowState) -> None:
        """Remove a flow from the matrix, keeping the scan cursor valid."""
        cursor = self._cursor
        if cursor is not None and cursor.flow is flow:
            # The cursor points at one of this flow's nodes; step past it
            # before the unlink tears its links down.
            self._cursor = cursor.next
        self.matrix.remove(flow)

    # -- introspection -----------------------------------------------------

    @property
    def order(self) -> int:
        """Current weight-matrix order (0 when no flow is backlogged)."""
        return self.matrix.order

    @property
    def scan_position(self) -> int:
        """1-based WSS position of the most recent term (0 before start)."""
        return self._position

    def column_populations(self) -> List[int]:
        """``y_j`` counts per column up to the current order (diagnostics)."""
        return [
            self.matrix.column_population(j) for j in range(self.matrix.order)
        ]

    def __repr__(self) -> str:
        return (
            f"SRRScheduler(mode={self.mode!r}, order={self.matrix.order}, "
            f"flows={self.flow_count}, backlog={self.backlog})"
        )
