"""The packet record shared by schedulers and the network simulator.

A :class:`Packet` is intentionally a plain mutable record rather than an
immutable value: the simulator stamps arrival/departure times onto it as it
traverses the network, mirroring how ns-2 annotates packet headers.

Sizes are in **bytes**; times are in **seconds** (simulation time).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable, Optional

#: Process-wide source of unique packet uids (monotonically increasing).
_uid_counter = itertools.count()


@dataclass(slots=True)
class Packet:
    """A single packet.

    Attributes:
        flow_id: Identifier of the flow this packet belongs to. Any hashable
            value works; experiments typically use small ints or strings.
        size: Packet size in bytes (payload + headers; the simulator only
            ever needs the wire size).
        created_at: Simulation time at which the source generated the packet.
        seq: Per-flow sequence number assigned by the source (0-based).
        src: Optional source node name (simulator bookkeeping).
        dst: Optional destination node name (used by routing).
        enqueued_at: Time the packet entered the *current* queue; refreshed
            at every hop by the output port.
        dequeued_at: Time the packet was last selected for transmission.
        delivered_at: Time the packet reached its final sink (set once).
        uid: Globally unique id, useful for tracing and tie-breaking.
    """

    flow_id: Hashable
    size: int
    created_at: float = 0.0
    seq: int = 0
    src: Optional[str] = None
    dst: Optional[str] = None
    enqueued_at: float = 0.0
    dequeued_at: float = 0.0
    delivered_at: Optional[float] = None
    uid: int = field(default_factory=lambda: next(_uid_counter))

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")

    @property
    def delay(self) -> Optional[float]:
        """End-to-end delay if the packet has been delivered, else ``None``."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at

    def __repr__(self) -> str:  # compact; packets appear in large traces
        return (
            f"Packet(flow={self.flow_id!r}, size={self.size}, "
            f"seq={self.seq}, t0={self.created_at:.6f})"
        )
