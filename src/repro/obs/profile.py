"""O(1)-evidence profiling: per-dequeue work distributions.

The paper's headline claim is about the *worst case per decision*, so
totals and means are not evidence — a scheduler can hide O(N) spikes in
an O(1) average. :class:`DequeueProfiler` records the elementary-op cost
of **each individual** ``dequeue`` (via the op-counter deltas the
schedulers already maintain) plus, for SRR-family schedulers, the number
of WSS terms scanned per decision, and exposes:

* exact percentiles (p50/p90/p99) and the exact max over the measured
  window — the numbers E5 reports per (scheduler, N) point;
* the same distributions as fixed-bucket histograms in a
  :class:`~repro.obs.metrics.MetricsRegistry`, which is what travels in
  ``results/`` artifacts and merges across sweep processes.

A flat p99/max across N is the empirical O(1) signature; growth with
log N (the timestamp schedulers' heaps) or N shows up immediately.
"""

from __future__ import annotations

from math import ceil
from typing import Any, Dict, List, Optional, Sequence

from ..core.opcount import OpCounter
from .metrics import OPS_BUCKETS, MetricsRegistry, NULL_REGISTRY

__all__ = ["DequeueProfiler", "percentile"]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile of pre-sorted ``sorted_values``."""
    if not sorted_values:
        return 0.0
    if not 0.0 < q <= 1.0:
        raise ValueError(f"q must be in (0, 1], got {q}")
    return sorted_values[min(len(sorted_values) - 1,
                             max(0, ceil(q * len(sorted_values)) - 1))]


class DequeueProfiler:
    """Measures the per-decision work of one scheduler under load.

    Args:
        sched: Any scheduler threading ``op_counter`` through its hot
            path (every scheduler in this repo does).
        op_counter: The counter the scheduler was built with.
        registry: Where the histograms go; the shared
            :data:`~repro.obs.metrics.NULL_REGISTRY` makes them free.
        labels: Histogram family labels (conventionally ``scheduler``
            and ``n``).
    """

    def __init__(
        self,
        sched: Any,
        op_counter: OpCounter,
        *,
        registry: MetricsRegistry = NULL_REGISTRY,
        **labels: Any,
    ) -> None:
        self.sched = sched
        self.ops = op_counter
        self.registry = registry
        self.deltas: List[int] = []
        self.scan_deltas: List[int] = []
        self._ops_hist = registry.histogram(
            "dequeue_ops", OPS_BUCKETS, **labels
        )
        # WSS scan-length evidence, only for schedulers exposing the
        # cumulative terms-scanned counter (SRR and its variants).
        self._scans = getattr(sched, "terms_scanned", None) is not None
        self._scan_hist = (
            registry.histogram("wss_terms", OPS_BUCKETS, **labels)
            if self._scans else None
        )

    def pull(self, budget: int) -> int:
        """Dequeue up to ``budget`` packets, profiling each decision;
        returns the number actually served."""
        sched = self.sched
        ops = self.ops
        observe = self._ops_hist.observe
        served = 0
        for _ in range(budget):
            before = ops.count
            scans_before = sched.terms_scanned if self._scans else 0
            if sched.dequeue() is None:
                break
            delta = ops.count - before
            self.deltas.append(delta)
            observe(delta)
            if self._scans:
                scan_delta = sched.terms_scanned - scans_before
                self.scan_deltas.append(scan_delta)
                self._scan_hist.observe(scan_delta)
            served += 1
        return served

    def summary(self) -> Dict[str, float]:
        """Exact distribution summary of the profiled decisions."""
        deltas = sorted(self.deltas)
        out: Dict[str, float] = {
            "served": len(deltas),
            "total_ops": sum(deltas),
            "mean_ops": sum(deltas) / len(deltas) if deltas else 0.0,
            "p50_ops": percentile(deltas, 0.50),
            "p90_ops": percentile(deltas, 0.90),
            "p99_ops": percentile(deltas, 0.99),
            "worst_ops": deltas[-1] if deltas else 0,
        }
        if self._scans and self.scan_deltas:
            scans = sorted(self.scan_deltas)
            out["p99_scan_terms"] = percentile(scans, 0.99)
            out["worst_scan_terms"] = scans[-1]
        return out
