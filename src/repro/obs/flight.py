"""A zero-allocation, sampling flight recorder for the flat cores.

The PR-2 observability layer (metrics registry, packet tracer, dequeue
profiler) is built around the *object* datapath: it hangs off ``Packet``
instances and per-dequeue method calls. The flat cores in
:mod:`repro.fastpath` deliberately have neither — the scalar
``push``/``pull`` datapath moves plain ints and floats — so until now
the code that actually runs the hot path was invisible to every
observability feature.

The :class:`FlightRecorder` closes that gap without giving back the
speed that made the fast core worth building:

* **Zero allocation while armed.** All storage is preallocated at
  construction: one Python list per record column (op kind, flow slot,
  packet size, elementary-op delta, WSS terms scanned, credit/deficit,
  ring occupancy, sim-time delta), each ``capacity`` long, written
  in-place at ``index & (capacity - 1)``. Recording overwrites the
  oldest record once the ring wraps, exactly like
  :class:`~repro.obs.trace.Tracer`'s bounded deque but with no
  per-event dict or tuple.

* **Power-of-two sampling.** Every instrumented operation increments a
  single counter ``n``; a record is stored only when ``n & mask == 0``
  where ``mask = 2**sample_shift - 1``. Armed overhead is therefore a
  counter bump plus one predictable branch per operation, and a masked
  store every ``2**sample_shift`` operations. ``sample_shift=0``
  records everything (how E5 gets *exact* per-dequeue op counts);
  the default shift of 6 (1-in-64) is what the perf gate budgets at
  <= 3% on the end-to-end fastpath benchmark.

* **Nothing at all when off.** Arming swaps the scheduler instance onto
  a cached *armed twin* subclass whose ``push``/``pull``/``pull_batch``
  carry the sampling code (:func:`repro.fastpath.base._flight_twin`);
  the bare classes contain no recorder code whatsoever. The twin swap —
  rather than shadowing methods in the instance ``__dict__`` — matters:
  CPython materialises an instance dict that shadows methods, knocking
  every ``self.x`` load on the armed instance off the shared-keys
  inline-cache fast path (~40ns per access, measured), which dwarfed
  the sampling itself.

Recording is strictly *passive*: arming a recorder changes no service
decision, which the conformance corpus digest check in CI enforces
bit-for-bit.

Process-global arming mirrors the tracer/registry pattern
(:func:`get_flight_recorder` / :func:`set_flight_recorder`), with one
addition for subprocess workers: setting ``REPRO_FLIGHT=<shift>`` in the
environment lazily arms a recorder on first scheduler construction in
any process that inherits it — the same mechanism ``REPRO_ENGINE`` uses
to select the event-queue backend inside sweep workers.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "FLIGHT_ENV_VAR",
    "FLIGHT_SCHEMA",
    "KIND_PUSH",
    "KIND_PULL",
    "KIND_NAMES",
    "FlightRecorder",
    "get_flight_recorder",
    "set_flight_recorder",
]

#: Environment variable that lazily arms a recorder in worker processes.
#: Its value is the sampling shift (``6`` → 1-in-64).
FLIGHT_ENV_VAR = "REPRO_FLIGHT"

#: Schema tag of the ``RunResult.obs["flight"]`` block.
FLIGHT_SCHEMA = "repro.obs/flight/v1"

#: Record kinds (stored as small ints in the ``kind`` column).
KIND_PUSH = 0
KIND_PULL = 1
KIND_NAMES = ("push", "pull")

#: Default ring capacity; must be a power of two.
DEFAULT_CAPACITY = 4096

#: Default sampling shift: record 1 in 2**6 = 64 operations.
DEFAULT_SAMPLE_SHIFT = 6


class FlightRecorder:
    """A preallocated ring of fixed-width fastpath operation records.

    Args:
        capacity: Ring size in records; must be a power of two.
        sample_shift: Record one in ``2**sample_shift`` operations.
            ``0`` records every operation (exact profiling mode).

    The attributes ``n`` (operation counter), ``mask`` (sampling mask)
    and ``now`` (current sim time, fed by whoever owns a clock, e.g.
    the netloop) are public on purpose: the instrumented hot paths
    read and write them directly instead of going through method calls.
    """

    __slots__ = (
        "capacity", "cap_mask", "sample_shift", "mask", "n", "idx", "now",
        "_last_now", "kind", "slot", "size", "ops", "terms", "credit",
        "occupancy", "tdelta",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        sample_shift: int = DEFAULT_SAMPLE_SHIFT,
    ) -> None:
        if capacity <= 0 or capacity & (capacity - 1):
            raise ValueError(
                f"capacity must be a positive power of two, got {capacity}"
            )
        if sample_shift < 0:
            raise ValueError(f"sample_shift must be >= 0, got {sample_shift}")
        self.capacity = capacity
        self.cap_mask = capacity - 1
        self.sample_shift = sample_shift
        self.mask = (1 << sample_shift) - 1
        self.n = 0          # operations seen while armed
        self.idx = 0        # records written (monotone; ring wraps)
        self.now = 0.0      # sim time, fed externally when available
        self._last_now = 0.0
        self.kind = [0] * capacity
        self.slot = [0] * capacity
        self.size = [0] * capacity
        self.ops = [0] * capacity
        self.terms = [0] * capacity
        self.credit = [0.0] * capacity
        self.occupancy = [0] * capacity
        self.tdelta = [0.0] * capacity

    # -- recording (the armed hot path) --------------------------------------

    def record(
        self,
        kind: int,
        slot: int,
        size: int,
        ops: int,
        terms: int,
        credit: float,
        occupancy: int,
    ) -> None:
        """Store one fixed-width record, overwriting the oldest on wrap.

        Called only on sampled operations, so per-call cost (eight list
        stores) is already divided by the sampling rate.
        """
        i = self.idx & self.cap_mask
        self.kind[i] = kind
        self.slot[i] = slot
        self.size[i] = size
        self.ops[i] = ops
        self.terms[i] = terms
        self.credit[i] = credit
        self.occupancy[i] = occupancy
        now = self.now
        self.tdelta[i] = now - self._last_now
        self._last_now = now
        self.idx += 1

    # -- arming ---------------------------------------------------------------

    def arm(self, sched: Any) -> None:
        """Attach this recorder to a scheduler's instrumentation hooks.

        Delegates to the scheduler's ``_arm_flight`` so each scheduler
        class can bind its cheapest instrumented variant (see
        :meth:`repro.fastpath.base.FastScheduler._arm_flight`).
        """
        sched._arm_flight(self)

    @staticmethod
    def disarm(sched: Any) -> None:
        """Detach any recorder from ``sched``, restoring the bare paths."""
        base = getattr(type(sched), "_flight_base", None)
        if base is not None:
            sched.__class__ = base
        sched.__dict__.pop("_flight", None)
        # Tracer-era instance shadows, if a tracer was armed too.
        sched.__dict__.pop("pull", None)
        sched.__dict__.pop("pull_batch", None)
        sched.__dict__.pop("_bare_pull", None)

    # -- draining -------------------------------------------------------------

    def __len__(self) -> int:
        """Records currently held (≤ capacity)."""
        return self.idx if self.idx < self.capacity else self.capacity

    @property
    def dropped(self) -> int:
        """Records overwritten by ring wraparound."""
        return self.idx - self.capacity if self.idx > self.capacity else 0

    def clear(self) -> None:
        """Reset counters and forget all records (storage is reused)."""
        self.n = 0
        self.idx = 0
        self._last_now = self.now

    def _iter_indices(self) -> range:
        start = self.idx - self.capacity if self.idx > self.capacity else 0
        return range(start, self.idx)

    def records(self) -> List[Dict[str, Any]]:
        """All held records as dicts, oldest first."""
        out = []
        m = self.cap_mask
        for j in self._iter_indices():
            i = j & m
            out.append({
                "kind": KIND_NAMES[self.kind[i]],
                "slot": self.slot[i],
                "size": self.size[i],
                "ops": self.ops[i],
                "terms": self.terms[i],
                "credit": self.credit[i],
                "occupancy": self.occupancy[i],
                "dt": self.tdelta[i],
            })
        return out

    def window(self, count: int = 64) -> List[Dict[str, Any]]:
        """The newest ``count`` records, oldest first (crash-dump view)."""
        return self.records()[-count:] if count > 0 else []

    def pull_deltas(self) -> Tuple[List[int], List[int]]:
        """(ops delta, WSS terms delta) of every held *pull* record.

        With ``sample_shift=0`` and enough capacity this is the exact
        per-dequeue cost series the object core's
        :class:`~repro.obs.profile.DequeueProfiler` measures — the fast
        core's E5 evidence.
        """
        ops_out: List[int] = []
        terms_out: List[int] = []
        m = self.cap_mask
        kinds, ops, terms = self.kind, self.ops, self.terms
        for j in self._iter_indices():
            i = j & m
            if kinds[i] == KIND_PULL:
                ops_out.append(ops[i])
                terms_out.append(terms[i])
        return ops_out, terms_out

    def snapshot(self, *, window: int = 0) -> Dict[str, Any]:
        """The recorder as a JSON-friendly ``obs["flight"]`` block."""
        block: Dict[str, Any] = {
            "schema": FLIGHT_SCHEMA,
            "sample_shift": self.sample_shift,
            "sample_rate": self.mask + 1,
            "capacity": self.capacity,
            "ops_seen": self.n,
            "recorded": self.idx,
            "dropped": self.dropped,
        }
        if window:
            block["window"] = self.window(window)
        return block

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(capacity={self.capacity}, "
            f"shift={self.sample_shift}, ops_seen={self.n}, "
            f"recorded={self.idx})"
        )


# -- process-global arming ----------------------------------------------------

_active: Optional[FlightRecorder] = None
#: Set once :func:`set_flight_recorder` explicitly disarms, so a stale
#: ``REPRO_FLIGHT`` in the environment cannot silently re-arm afterwards.
_env_ignored = False


def get_flight_recorder() -> Optional[FlightRecorder]:
    """The process-wide recorder, or ``None`` when recording is off.

    Consulted once per :class:`~repro.fastpath.base.FastScheduler`
    construction — never on the per-packet path. If no recorder has been
    installed but ``REPRO_FLIGHT=<shift>`` is set (CI, sweep workers),
    one is created lazily with that sampling shift and the default
    capacity.
    """
    global _active
    if _active is None and not _env_ignored:
        raw = os.environ.get(FLIGHT_ENV_VAR)
        if raw:
            _active = FlightRecorder(sample_shift=int(raw))
    return _active


def set_flight_recorder(
    recorder: Optional[FlightRecorder],
) -> Optional[FlightRecorder]:
    """Install (or with ``None`` disarm) the process-wide recorder.

    Returns the previous recorder so callers can restore it. Passing
    ``None`` also suppresses ``REPRO_FLIGHT`` env activation for the
    rest of the process, making disarming authoritative.
    """
    global _active, _env_ignored
    previous = _active
    _active = recorder
    _env_ignored = recorder is None
    return previous


def _reset_for_tests() -> None:
    """Restore import-time state (tests only)."""
    global _active, _env_ignored
    _active = None
    _env_ignored = False
