"""Packet-lifecycle tracing: a bounded ring buffer of typed events.

A :class:`Tracer` records what happened to packets as they crossed the
simulated network: ``enqueue`` (packet accepted by an output port),
``drop`` (buffer or per-flow queue full), ``sched_decision`` (the
scheduler was asked for the next packet — the O(1)-critical call),
``dequeue`` (a packet was selected; carries the queueing wait), and
``transmit`` (the last bit left the line). Emit points live in
:class:`~repro.net.port.OutputPort`; the engine's existing
``callback_hook`` seam can feed ``sim_event`` records for slow callbacks
via :meth:`Tracer.engine_hook`.

The buffer is a fixed-capacity ring (``collections.deque(maxlen=...)``):
memory stays bounded on arbitrarily long runs, the newest ``capacity``
events survive, and :attr:`Tracer.dropped` says how many were
overwritten. Events export as JSONL — one self-describing object per
line — for offline analysis (``--trace`` on the bench CLI).

Like the metrics registry, tracing is free when off: ports capture the
process-wide active tracer (:func:`get_tracer`) at construction, and a
``None`` tracer costs one attribute read per packet.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, TextIO, Union

__all__ = [
    "EVENT_KINDS",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "trace_network",
]

#: The typed event vocabulary (meta events like ``sim_event`` ride along).
#: ``fault`` records an injected fault firing (link flap, churn, burst,
#: malformed packet) from :mod:`repro.faults`.
EVENT_KINDS = (
    "enqueue", "dequeue", "transmit", "drop", "sched_decision", "fault",
)


class Tracer:
    """Bounded ring buffer of packet-lifecycle events.

    Args:
        capacity: Maximum events retained; older events are overwritten
            (FIFO). The default keeps ~5 MB of events at worst.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.emitted = 0

    # -- recording ---------------------------------------------------------

    def emit(self, kind: str, t: float, **fields: Any) -> None:
        """Record one event at simulation time ``t``.

        ``fields`` are free-form but conventionally include ``port``,
        ``flow``, ``uid`` and ``size``; ``None`` values are dropped so
        lines stay compact.
        """
        event = {"t": t, "kind": kind}
        for key, value in fields.items():
            if value is not None:
                event[key] = value
        self._events.append(event)
        self.emitted += 1

    def engine_hook(
        self, threshold_s: float = 0.0
    ) -> Callable[[Any, float], None]:
        """A :attr:`Simulator.callback_hook` adapter.

        Install the returned callable on a simulator to record a
        ``sim_event`` trace entry for every callback slower than
        ``threshold_s`` real seconds — the profiling seam the engine
        already pays for, turned into trace records.
        """

        def hook(event: Any, elapsed: float) -> None:
            if elapsed >= threshold_s:
                self.emit(
                    "sim_event",
                    event.time,
                    fn=getattr(event.fn, "__qualname__", repr(event.fn)),
                    elapsed_s=elapsed,
                )

        return hook

    # -- reading -----------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events overwritten by the ring (emitted - retained)."""
        return self.emitted - len(self._events)

    def events(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """Retained events in emission order, optionally one kind only."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e["kind"] == kind]

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0

    # -- export ------------------------------------------------------------

    def write_jsonl(self, dest: Union[str, TextIO]) -> int:
        """Write retained events as JSON Lines; returns the line count.

        ``dest`` is a path or an open text file. Keys keep emission
        order (``t``/``kind`` first), values are plain JSON scalars.
        Path destinations are written atomically (tmp + ``os.replace``)
        so a killed run never leaves a truncated trace file behind.
        """
        if isinstance(dest, str):
            from ..harness.io import atomic_write_text

            lines = [json.dumps(event) for event in self._events]
            atomic_write_text(dest, "\n".join(lines) + "\n" if lines else "")
            return len(lines)
        n = 0
        for event in self._events:
            dest.write(json.dumps(event) + "\n")
            n += 1
        return n

    @staticmethod
    def read_jsonl(source: Union[str, TextIO]) -> List[Dict[str, Any]]:
        """Load events previously written by :meth:`write_jsonl`.

        Tolerates a truncated *final* line (the signature of a process
        killed mid-append when the file was written incrementally) by
        dropping it; garbage anywhere earlier raises a structured
        :class:`~repro.core.errors.ArtifactError` rather than leaking a
        bare ``JSONDecodeError``.
        """
        if isinstance(source, str):
            with open(source) as fh:
                return Tracer.read_jsonl(fh)
        from ..core.errors import ArtifactError

        lines = [line for line in source if line.strip()]
        events: List[Dict[str, Any]] = []
        for i, line in enumerate(lines):
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if i == len(lines) - 1:
                    break  # truncated tail from a killed writer: drop it
                raise ArtifactError(
                    f"trace line {i + 1} is not valid JSON: {exc}"
                ) from exc
        return events

    def __repr__(self) -> str:
        return (
            f"Tracer(capacity={self.capacity}, retained={len(self._events)}, "
            f"emitted={self.emitted})"
        )


#: The process-wide active tracer (None = tracing off).
_active: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    """The active tracer new ports pick up, or ``None`` when off."""
    return _active


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or with ``None`` remove) the active tracer; returns the
    previous one so callers can restore it."""
    global _active
    previous = _active
    _active = tracer
    return previous


def trace_network(net: Any, tracer: Tracer) -> Tracer:
    """Wire ``tracer`` into every output port of an existing network.

    Ports pick the active tracer up at construction; this helper
    retrofits one onto a network built earlier (or built while a
    different tracer was active).
    """
    for node in net.nodes.values():
        for port in node.ports.values():
            port.tracer = tracer
    return tracer
