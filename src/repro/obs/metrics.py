"""Deterministic metrics: counters, gauges and fixed-bucket histograms.

The observability layer every experiment reads its numbers from. Three
metric kinds — :class:`Counter`, :class:`Gauge`, :class:`Histogram` —
live in a :class:`MetricsRegistry`, keyed by a family name plus a frozen
label set (``registry.histogram("dequeue_ops", scheduler="srr", n=64)``).

Design constraints (they shape everything here):

* **Deterministic.** Snapshots contain only counts and observed values,
  never wall-clock time; keys are emitted in sorted order; merging two
  snapshots is commutative for counters/histograms. A ``--jobs 8`` sweep
  therefore serialises to the exact bytes of a serial one.
* **Cheap, and free when disabled.** ``Histogram.observe`` is a bisect
  over a small fixed bucket table plus integer adds. When observability
  is off, the module-level :data:`NULL_REGISTRY` hands out no-op metric
  singletons, so instrumented code stays branch-free (the
  :class:`~repro.core.opcount.NullOpCounter` pattern).
* **Bounded.** Histograms use *fixed* log-spaced buckets chosen at
  creation (:func:`log2_buckets` for op counts, :data:`DELAY_BUCKETS_S`
  for delays), so memory is O(buckets) regardless of sample count.

Quantiles from a bucketed histogram are upper bounds (the bucket's right
edge); the true maximum is tracked exactly. Experiment E5 additionally
computes exact percentiles from the raw per-dequeue deltas it holds
anyway — the histogram is what travels in artifacts and merges across
processes.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DELAY_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "OPS_BUCKETS",
    "get_registry",
    "log2_buckets",
    "log10_buckets",
    "metric_key",
    "set_registry",
]

SNAPSHOT_SCHEMA = "repro.obs/metrics/v1"


def log2_buckets(max_exponent: int = 20) -> Tuple[float, ...]:
    """Power-of-two bucket edges ``1, 2, 4, ..., 2**max_exponent``."""
    return tuple(float(1 << e) for e in range(max_exponent + 1))


def log10_buckets(
    lo_exponent: int, hi_exponent: int, per_decade: int = 3
) -> Tuple[float, ...]:
    """Log-spaced edges covering ``10**lo .. 10**hi``, ``per_decade`` each.

    Edges are rounded to 12 significant digits so the table is identical
    across platforms (no accumulated ``**``-chain drift).
    """
    edges = []
    steps = (hi_exponent - lo_exponent) * per_decade
    for i in range(steps + 1):
        exponent = lo_exponent + i / per_decade
        edges.append(float(f"{10.0 ** exponent:.12g}"))
    return tuple(edges)


#: Default op-count buckets: 1..2^20 elementary operations per decision.
OPS_BUCKETS = log2_buckets(20)

#: Default delay buckets: 1 µs .. 100 s, three per decade.
DELAY_BUCKETS_S = log10_buckets(-6, 2, per_decade=3)


class Counter:
    """A monotonically increasing count (events, bytes, drops)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self.value}

    def merge(self, data: Mapping[str, Any]) -> None:
        self.value += data["value"]

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A point-in-time level; merging keeps the maximum (high-water)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self.value}

    def merge(self, data: Mapping[str, Any]) -> None:
        # Gauges from sibling processes are high-water marks; max is the
        # only order-independent (hence deterministic) combination.
        self.value = max(self.value, data["value"])

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


class Histogram:
    """Fixed-bucket distribution with exact count/sum/min/max.

    ``bounds`` are the inclusive right edges of the first
    ``len(bounds)`` buckets; one overflow bucket catches everything
    larger. A value ``v`` lands in the first bucket whose edge is
    ``>= v`` — so with :data:`OPS_BUCKETS`, bucket ``i`` holds the ops
    counts in ``(2**(i-1), 2**i]``.
    """

    __slots__ = ("bounds", "buckets", "count", "total", "minimum", "maximum")
    kind = "histogram"

    def __init__(self, bounds: Sequence[float] = OPS_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (0 < q <= 1).

        Returns the right edge of the bucket holding the q-th sample,
        clamped to the exact observed maximum (so ``quantile(1.0) ==
        maximum`` always, even from the overflow bucket).
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.buckets):
            cumulative += n
            if cumulative >= rank:
                if i < len(self.bounds):
                    return min(self.bounds[i], self.maximum)
                break
        return self.maximum  # overflow bucket

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }

    def merge(self, data: Mapping[str, Any]) -> None:
        if tuple(data["bounds"]) != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        for i, n in enumerate(data["buckets"]):
            self.buckets[i] += n
        self.count += data["count"]
        self.total += data["sum"]
        for attr, pick in (("minimum", min), ("maximum", max)):
            key = "min" if attr == "minimum" else "max"
            theirs = data.get(key)
            if theirs is not None:
                ours = getattr(self, attr)
                setattr(self, attr, theirs if ours is None else pick(ours, theirs))

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, min={self.minimum}, "
            f"max={self.maximum})"
        )


_METRIC_TYPES = {m.kind: m for m in (Counter, Gauge, Histogram)}


def metric_key(name: str, labels: Mapping[str, Any]) -> str:
    """The canonical string key of one metric: ``name{k=v,...}``.

    Label names are sorted, values ``str()``-ed, so the key — and with it
    snapshot ordering and merge identity — is independent of call sites.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Holds every metric of one run, keyed by family name + labels.

    ``counter``/``gauge``/``histogram`` get-or-create, so instrumented
    code can call them unconditionally. ``snapshot`` serialises the whole
    registry to a JSON-able dict with sorted keys; ``merge_snapshot``
    folds another registry's snapshot in (the parallel-sweep merge).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    # -- get-or-create -----------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = OPS_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Histogram(buckets)
        elif not isinstance(metric, Histogram):
            raise TypeError(f"{key} is a {metric.kind}, not a histogram")
        return metric

    def _get(self, cls: type, name: str, labels: Mapping[str, Any]):
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls()
        elif not isinstance(metric, cls):
            raise TypeError(f"{key} is a {metric.kind}, not a {cls.kind}")
        return metric

    # -- introspection -----------------------------------------------------

    @property
    def enabled(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, key: str) -> bool:
        return key in self._metrics

    def get(self, key: str):
        """The metric stored under a canonical key, or ``None``."""
        return self._metrics.get(key)

    def items(self) -> Iterator[Tuple[str, Any]]:
        """(key, metric) pairs in sorted key order."""
        return iter(sorted(self._metrics.items()))

    def clear(self) -> None:
        self._metrics.clear()

    # -- serialisation -----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The registry as a JSON-able dict, keys sorted (deterministic)."""
        return {
            key: self._metrics[key].snapshot()
            for key in sorted(self._metrics)
        }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a serialized registry in (counters/histograms add,
        gauges take the max). Creates metrics that do not exist yet, so
        merging child-process snapshots into a fresh registry works."""
        for key in sorted(snapshot):
            data = snapshot[key]
            metric = self._metrics.get(key)
            if metric is None:
                cls = _METRIC_TYPES[data["type"]]
                if cls is Histogram:
                    metric = Histogram(data["bounds"])
                else:
                    metric = cls()
                self._metrics[key] = metric
            elif metric.kind != data["type"]:
                raise TypeError(
                    f"{key}: cannot merge a {data['type']} into a "
                    f"{metric.kind}"
                )
            metric.merge(data)

    def __repr__(self) -> str:
        return f"MetricsRegistry(metrics={len(self._metrics)})"


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """A registry that ignores everything: observability switched off.

    Hands out shared no-op metric singletons so instrumented hot paths
    pay one method call (an empty body) instead of a branch, and never
    accumulate state. ``snapshot()`` is empty; ``merge_snapshot`` is a
    no-op.
    """

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._COUNTER

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._GAUGE

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = OPS_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._HISTOGRAM

    @property
    def enabled(self) -> bool:
        return False

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        pass

    def __repr__(self) -> str:
        return "NullRegistry()"


#: Shared disabled registry; instrumentation defaults to this.
NULL_REGISTRY = NullRegistry()

#: The process-wide active registry (what instrumented components pick
#: up when not handed a registry explicitly).
_active: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-wide active registry (``NULL_REGISTRY`` when off)."""
    return _active


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` as the active one (``None`` disables);
    returns the previous registry so callers can restore it."""
    global _active
    previous = _active
    _active = registry if registry is not None else NULL_REGISTRY
    return previous
