"""``python -m repro.obs`` — observability CLI (artifact summarizer)."""

import argparse
import sys
from typing import List

from .report import load_metrics_block, render_metrics


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect the observability data of results/ artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="summarise the metrics block of run artifacts"
    )
    report.add_argument(
        "artifacts", nargs="+",
        help="results/<exp>/<timestamp>-<seed>.json artifact path(s)",
    )
    report.add_argument(
        "--family", default=None,
        help="only show one metric family (e.g. dequeue_ops)",
    )
    args = parser.parse_args(argv)

    status = 0
    for path in args.artifacts:
        print(f"== {path}")
        try:
            metrics = load_metrics_block(path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 1
            continue
        print(render_metrics(metrics, family=args.family))
        print()
    return status


if __name__ == "__main__":
    sys.exit(main())
