"""``python -m repro.obs`` — observability CLI (artifacts + live runs)."""

import argparse
import sys
from typing import List

from .report import load_flight_block, load_metrics_block, render_flight, \
    render_metrics
from .top import DEFAULT_STALL_AFTER_S
from .top import main as top_main


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect the observability data of results/ artifacts "
                    "and watch running sweeps live.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="summarise the metrics/flight blocks of run artifacts"
    )
    report.add_argument(
        "artifacts", nargs="+",
        help="results/<exp>/<timestamp>-<seed>.json artifact path(s)",
    )
    report.add_argument(
        "--family", default=None,
        help="only show one metric family (e.g. dequeue_ops)",
    )
    top = sub.add_parser(
        "top", help="live dashboard over the telemetry files of a results "
                    "dir (throughput, progress/ETA, stall detection)"
    )
    top.add_argument(
        "target",
        help="a results dir (scanned recursively) or one telemetry .jsonl",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single snapshot and exit (CI / scripting mode)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="refresh period in seconds (default 2)",
    )
    top.add_argument(
        "--stall-after", type=float, default=DEFAULT_STALL_AFTER_S,
        metavar="S",
        help="flag a source STALLED after this many frameless seconds "
             f"(default {DEFAULT_STALL_AFTER_S:g})",
    )
    args = parser.parse_args(argv)

    if args.command == "top":
        return top_main(
            args.target, once=args.once, interval_s=args.interval,
            stall_after=args.stall_after,
        )

    status = 0
    for path in args.artifacts:
        print(f"== {path}")
        try:
            metrics = load_metrics_block(path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 1
            continue
        print(render_metrics(metrics, family=args.family))
        try:
            flight = load_flight_block(path)
        except (OSError, ValueError):
            flight = None
        if flight:
            print()
            print(render_flight(flight))
        print()
    return status


if __name__ == "__main__":
    sys.exit(main())
