"""The live telemetry bus: heartbeat frames from long-running workers.

Crash-tolerant sweeps and nightly conformance runs take minutes to
hours and, until this module, emitted nothing until they finished — a
hung worker and a slow one looked identical. The telemetry bus makes
progress observable *while it happens*:

* Workers (sweep subprocesses, pool workers, the inline path, the event
  engine's main loop) append small JSON **frames** to a shared per-run
  ``.jsonl`` file: heartbeats with events/s and sim-time progress,
  per-point completions, run start/end markers. Each frame is one line,
  written with a single flushed ``write()`` in append mode — POSIX
  guarantees small ``O_APPEND`` writes are atomic, so frames from many
  processes interleave without tearing (the same reason the atomic-write
  helpers in :mod:`repro.harness.io` stage through ``os.replace``:
  readers never observe a half-written document). A reader can still
  catch a frame mid-write at the file's tail, which is why
  :func:`read_telemetry` tolerates a truncated *final* line, exactly
  like :meth:`repro.obs.trace.Tracer.read_jsonl`.

* ``python -m repro.obs top <results-dir>`` (:mod:`repro.obs.top`)
  tails these files and renders a live table: per-worker throughput,
  done/total progress with an ETA, and stall detection — a source that
  has not produced a frame for ``--stall-after`` seconds without a
  terminal frame is flagged, pairing with the sweep timeout/reaper
  machinery which will eventually kill it.

Activation follows the ``REPRO_ENGINE``/``REPRO_FLIGHT`` pattern:
CLIs set ``REPRO_TELEMETRY=<path>`` before fanning out, and every
process that inherits it lazily opens its own appending writer on first
:func:`get_telemetry` call. The cached writer is keyed by pid so forked
and spawned workers never share a file object (only the append-mode fd
semantics above).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, TextIO, Union

__all__ = [
    "TELEMETRY_ENV_VAR",
    "TELEMETRY_SCHEMA",
    "TelemetryWriter",
    "get_telemetry",
    "set_telemetry",
    "read_telemetry",
    "rss_kb",
]

#: Environment variable carrying the telemetry file path to workers.
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"

#: Schema tag stamped on ``run_start`` frames.
TELEMETRY_SCHEMA = "repro.obs/telemetry/v1"

#: Default heartbeat rate limit (seconds between frames per writer).
DEFAULT_INTERVAL_S = 1.0


def rss_kb() -> int:
    """Current resident set size in kB (0 when unknown).

    Reads ``/proc/self/status`` where available (Linux); falls back to
    ``ru_maxrss`` (peak, not current — close enough for leak spotting).
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    try:
        import resource
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:
        return 0


class TelemetryWriter:
    """Appends JSON frames for one process to a shared telemetry file.

    ``frame()`` writes unconditionally; ``heartbeat()`` rate-limits to
    one frame per ``interval_s`` so hot loops can call it freely.
    """

    __slots__ = ("path", "pid", "interval_s", "seq", "_fh", "_last_beat")

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"],
        *,
        interval_s: float = DEFAULT_INTERVAL_S,
    ) -> None:
        self.path = os.fspath(path)
        self.pid = os.getpid()
        self.interval_s = interval_s
        self.seq = 0
        self._fh: Optional[TextIO] = None
        self._last_beat = float("-inf")

    def _file(self) -> TextIO:
        if self._fh is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def frame(self, kind: str, **fields: Any) -> None:
        """Append one frame unconditionally (start/end/point markers)."""
        self.seq += 1
        payload = {"t": time.time(), "pid": self.pid, "seq": self.seq,
                   "kind": kind}
        payload.update(fields)
        fh = self._file()
        # One write + flush per frame: O_APPEND keeps concurrent writers
        # line-atomic; flushing keeps the dashboard's view current.
        fh.write(json.dumps(payload) + "\n")
        fh.flush()

    def heartbeat(self, kind: str = "heartbeat", **fields: Any) -> bool:
        """Append a frame at most once per ``interval_s``; True if sent."""
        now = time.monotonic()
        if now - self._last_beat < self.interval_s:
            return False
        self._last_beat = now
        fields.setdefault("rss_kb", rss_kb())
        self.frame(kind, **fields)
        return True

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:
        return f"TelemetryWriter({self.path!r}, pid={self.pid})"


# -- process-global writer -----------------------------------------------------

_active: Optional[TelemetryWriter] = None


def get_telemetry() -> Optional[TelemetryWriter]:
    """This process's telemetry writer, or ``None`` when the bus is off.

    A writer installed by :func:`set_telemetry` wins; otherwise, if
    ``REPRO_TELEMETRY=<path>`` is set (inherited from the launching
    CLI), a writer is created lazily. A writer cached by a *parent*
    process is never reused after fork/spawn — the pid check recreates
    a per-process writer with its own file descriptor.
    """
    global _active
    if _active is not None and _active.pid == os.getpid():
        return _active
    path = os.environ.get(TELEMETRY_ENV_VAR)
    if not path:
        _active = None
        return None
    _active = TelemetryWriter(path)
    return _active


def set_telemetry(
    writer: Optional[TelemetryWriter],
) -> Optional[TelemetryWriter]:
    """Install (or with ``None`` remove) this process's writer."""
    global _active
    previous = _active
    _active = writer
    return previous


# -- reading -------------------------------------------------------------------

def read_telemetry(path: Union[str, "os.PathLike[str]"]) -> List[Dict]:
    """Load telemetry frames, tolerating a truncated final line.

    A live run may be flushing a frame while we read, so an
    unparseable *last* line is silently dropped (the next refresh will
    see it whole). Corruption anywhere earlier raises
    :class:`~repro.core.errors.ArtifactError` — same contract as
    :meth:`repro.obs.trace.Tracer.read_jsonl`.
    """
    from ..core.errors import ArtifactError

    with open(path, encoding="utf-8") as fh:
        lines = [ln for ln in (raw.strip() for raw in fh) if ln]
    frames: List[Dict] = []
    for i, line in enumerate(lines):
        try:
            frames.append(json.loads(line))
        except ValueError:
            if i == len(lines) - 1:
                break  # torn tail of a live file
            raise ArtifactError(
                f"{path}: telemetry line {i + 1} is not valid JSON"
            ) from None
    return frames
