"""repro.obs — the unified observability layer.

Three complementary views of a run, all deterministic and all cheap (or
free) when disabled:

* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  fixed-bucket histograms with labeled families. The serialized registry
  is the ``obs.metrics`` block of every ``results/`` artifact, and
  merges bit-identically across sweep processes.
* :mod:`repro.obs.trace` — a bounded ring buffer of typed
  packet-lifecycle events (``enqueue``/``dequeue``/``transmit``/
  ``drop``/``sched_decision``) emitted by output ports, exported as
  JSONL via the bench CLI's ``--trace`` flag.
* :mod:`repro.obs.profile` — per-dequeue op-count and WSS-scan-length
  distributions, the empirical evidence behind the paper's O(1) claim
  (experiment E5's p50/p99/max columns).
* :mod:`repro.obs.flight` — a zero-allocation sampling flight recorder
  for the flat cores' scalar datapath, whose snapshot is the
  ``obs.flight`` block (and, at ``sample_shift=0``, the fast core's
  exact E5 evidence).
* :mod:`repro.obs.telemetry` — per-run JSONL heartbeat frames from
  long-running workers, watched live by ``python -m repro.obs top``
  (:mod:`repro.obs.top`).

``python -m repro.obs report results/<exp>/<run>.json`` renders the
metrics and flight blocks of any artifact. See docs/observability.md.
"""

from .flight import (
    FLIGHT_ENV_VAR,
    FlightRecorder,
    get_flight_recorder,
    set_flight_recorder,
)
from .metrics import (
    DELAY_BUCKETS_S,
    NULL_REGISTRY,
    OPS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    log2_buckets,
    log10_buckets,
    metric_key,
    set_registry,
)
from .profile import DequeueProfiler, percentile
from .report import (
    load_flight_block,
    load_metrics_block,
    render_flight,
    render_metrics,
    split_key,
)
from .telemetry import (
    TELEMETRY_ENV_VAR,
    TelemetryWriter,
    get_telemetry,
    read_telemetry,
    set_telemetry,
)
from .trace import EVENT_KINDS, Tracer, get_tracer, set_tracer, trace_network

__all__ = [
    "Counter",
    "DELAY_BUCKETS_S",
    "DequeueProfiler",
    "EVENT_KINDS",
    "FLIGHT_ENV_VAR",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "OPS_BUCKETS",
    "TELEMETRY_ENV_VAR",
    "TelemetryWriter",
    "Tracer",
    "get_flight_recorder",
    "get_registry",
    "get_telemetry",
    "get_tracer",
    "load_flight_block",
    "load_metrics_block",
    "log10_buckets",
    "log2_buckets",
    "metric_key",
    "percentile",
    "read_telemetry",
    "render_flight",
    "render_metrics",
    "set_flight_recorder",
    "set_registry",
    "set_telemetry",
    "set_tracer",
    "split_key",
    "trace_network",
]
