"""repro.obs — the unified observability layer.

Three complementary views of a run, all deterministic and all cheap (or
free) when disabled:

* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  fixed-bucket histograms with labeled families. The serialized registry
  is the ``obs.metrics`` block of every ``results/`` artifact, and
  merges bit-identically across sweep processes.
* :mod:`repro.obs.trace` — a bounded ring buffer of typed
  packet-lifecycle events (``enqueue``/``dequeue``/``transmit``/
  ``drop``/``sched_decision``) emitted by output ports, exported as
  JSONL via the bench CLI's ``--trace`` flag.
* :mod:`repro.obs.profile` — per-dequeue op-count and WSS-scan-length
  distributions, the empirical evidence behind the paper's O(1) claim
  (experiment E5's p50/p99/max columns).

``python -m repro.obs report results/<exp>/<run>.json`` renders the
metrics block of any artifact. See docs/observability.md.
"""

from .metrics import (
    DELAY_BUCKETS_S,
    NULL_REGISTRY,
    OPS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    log2_buckets,
    log10_buckets,
    metric_key,
    set_registry,
)
from .profile import DequeueProfiler, percentile
from .report import load_metrics_block, render_metrics, split_key
from .trace import EVENT_KINDS, Tracer, get_tracer, set_tracer, trace_network

__all__ = [
    "Counter",
    "DELAY_BUCKETS_S",
    "DequeueProfiler",
    "EVENT_KINDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "OPS_BUCKETS",
    "Tracer",
    "get_registry",
    "get_tracer",
    "load_metrics_block",
    "log10_buckets",
    "log2_buckets",
    "metric_key",
    "percentile",
    "render_metrics",
    "set_registry",
    "set_tracer",
    "split_key",
    "trace_network",
]
