"""Render the metrics block of a ``results/`` artifact as tables.

``python -m repro.obs report results/e5/<run>.json`` summarises the
serialized registry a harness run embedded in its artifact: scalar
metrics (counters/gauges) in one table, histogram families in another
with count/mean/p50/p90/p99/max columns. This is how the O(1) evidence
is read off an e5 artifact — the ``dequeue_ops`` rows for SRR stay flat
across N while the timestamp schedulers' grow.

Percentiles here are bucket upper bounds (see
:class:`~repro.obs.metrics.Histogram.quantile`); the max column is
exact.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..analysis.tables import format_table
from .metrics import Histogram

__all__ = ["load_metrics_block", "render_metrics", "split_key"]

_KEY_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


def split_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a canonical metric key back into (family, labels)."""
    match = _KEY_RE.match(key)
    if match is None:
        return key, {}
    labels: Dict[str, str] = {}
    raw = match.group("labels")
    if raw:
        for part in raw.split(","):
            k, _, v = part.partition("=")
            labels[k] = v
    return match.group("name"), labels


def load_metrics_block(path: str) -> Dict[str, Any]:
    """The serialized registry out of one artifact (or raise KeyError)."""
    with open(path) as fh:
        data = json.load(fh)
    obs = data.get("obs") or {}
    metrics = obs.get("metrics")
    if not metrics:
        raise KeyError(
            f"{path}: no observability metrics block (run with metrics "
            "enabled, e.g. python -m repro.bench e5 ...)"
        )
    return metrics


def render_metrics(
    metrics: Mapping[str, Any], family: Optional[str] = None
) -> str:
    """Tables for one serialized registry; ``family`` filters by name."""
    scalar_rows: List[List[Any]] = []
    hist_rows: List[List[Any]] = []
    for key in sorted(metrics):
        name, labels = split_key(key)
        if family is not None and name != family:
            continue
        data = metrics[key]
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        if data["type"] == "histogram":
            hist = Histogram(data["bounds"])
            hist.merge(data)
            hist_rows.append([
                name, label_text, hist.count, hist.mean,
                hist.quantile(0.50), hist.quantile(0.90),
                hist.quantile(0.99), hist.maximum or 0,
            ])
        else:
            scalar_rows.append([name, label_text, data["type"],
                                data["value"]])
    sections = []
    if scalar_rows:
        sections.append(format_table(
            ["metric", "labels", "type", "value"], scalar_rows,
            title="Counters and gauges", precision=3,
        ))
    if hist_rows:
        sections.append(format_table(
            ["histogram", "labels", "count", "mean", "p50", "p90", "p99",
             "max"],
            hist_rows,
            title="Histograms (p* are bucket upper bounds; max is exact)",
            precision=2,
        ))
    if not sections:
        return "(no matching metrics)"
    return "\n\n".join(sections)
