"""Render the metrics block of a ``results/`` artifact as tables.

``python -m repro.obs report results/e5/<run>.json`` summarises the
serialized registry a harness run embedded in its artifact: scalar
metrics (counters/gauges) in one table, histogram families in another
with count/mean/p50/p90/p99/max columns. This is how the O(1) evidence
is read off an e5 artifact — the ``dequeue_ops`` rows for SRR stay flat
across N while the timestamp schedulers' grow.

Percentiles here are bucket upper bounds (see
:class:`~repro.obs.metrics.Histogram.quantile`); the max column is
exact.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..analysis.tables import format_table
from .metrics import Histogram

__all__ = [
    "load_metrics_block",
    "load_flight_block",
    "render_flight",
    "render_metrics",
    "split_key",
]

_KEY_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


def split_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a canonical metric key back into (family, labels)."""
    match = _KEY_RE.match(key)
    if match is None:
        return key, {}
    labels: Dict[str, str] = {}
    raw = match.group("labels")
    if raw:
        for part in raw.split(","):
            k, _, v = part.partition("=")
            labels[k] = v
    return match.group("name"), labels


def load_metrics_block(path: str) -> Dict[str, Any]:
    """The serialized registry out of one artifact (or raise KeyError)."""
    with open(path) as fh:
        data = json.load(fh)
    obs = data.get("obs") or {}
    metrics = obs.get("metrics")
    if not metrics:
        raise KeyError(
            f"{path}: no observability metrics block (run with metrics "
            "enabled, e.g. python -m repro.bench e5 ...)"
        )
    return metrics


def load_flight_block(path: str) -> Optional[Dict[str, Any]]:
    """The ``obs["flight"]`` block of one artifact, or ``None``.

    Unlike :func:`load_metrics_block` this is optional by design: the
    flight recorder only arms on request (``--flight`` /
    ``REPRO_FLIGHT``), so most artifacts legitimately have no block.
    """
    with open(path) as fh:
        data = json.load(fh)
    obs = data.get("obs") or {}
    return obs.get("flight")


def render_flight(flight: Mapping[str, Any]) -> str:
    """One summary table for a serialized flight-recorder block.

    The counters line shows sampling coverage (operations seen vs
    records kept vs overwritten by ring wraparound); when the block
    carries a record window, per-kind ops/terms percentiles follow —
    at ``sample_shift=0`` those are the fast core's exact E5 numbers.
    """
    rate = flight.get("sample_rate")
    if rate is None and "sample_shift" in flight:
        rate = 1 << flight["sample_shift"]
    rows = [
        ["sample rate", f"1/{rate}" if rate else "?"],
        ["ops seen", flight.get("ops_seen", 0)],
        ["records", flight.get("recorded", 0)],
        ["dropped (ring wrap)", flight.get("dropped", 0)],
    ]
    # A per-process snapshot carries its ring capacity; a sweep-merged
    # block carries the number of points it aggregates instead.
    if "capacity" in flight:
        rows.append(["capacity", flight["capacity"]])
    if "points" in flight:
        rows.append(["sweep points", flight["points"]])
    sections = [format_table(
        ["field", "value"], rows, title="Flight recorder",
    )]
    window = flight.get("window") or []
    if window:
        from .profile import percentile

        kind_rows: List[List[Any]] = []
        for kind in ("push", "pull"):
            records = [r for r in window if r.get("kind") == kind]
            if not records:
                continue
            ops = sorted(r.get("ops", 0) for r in records)
            terms = sorted(r.get("terms", 0) for r in records)
            kind_rows.append([
                kind, len(records),
                percentile(ops, 0.50), percentile(ops, 0.99), ops[-1],
                percentile(terms, 0.50), percentile(terms, 0.99),
                terms[-1],
            ])
        if kind_rows:
            sections.append(format_table(
                ["kind", "records", "ops p50", "ops p99", "ops max",
                 "terms p50", "terms p99", "terms max"],
                kind_rows,
                title="Sampled records (per-dequeue ops / WSS terms)",
                precision=1,
            ))
    return "\n\n".join(sections)


def render_metrics(
    metrics: Mapping[str, Any], family: Optional[str] = None
) -> str:
    """Tables for one serialized registry; ``family`` filters by name."""
    scalar_rows: List[List[Any]] = []
    hist_rows: List[List[Any]] = []
    for key in sorted(metrics):
        name, labels = split_key(key)
        if family is not None and name != family:
            continue
        data = metrics[key]
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        if data["type"] == "histogram":
            hist = Histogram(data["bounds"])
            hist.merge(data)
            hist_rows.append([
                name, label_text, hist.count, hist.mean,
                hist.quantile(0.50), hist.quantile(0.90),
                hist.quantile(0.99), hist.maximum or 0,
            ])
        else:
            scalar_rows.append([name, label_text, data["type"],
                                data["value"]])
    sections = []
    if scalar_rows:
        sections.append(format_table(
            ["metric", "labels", "type", "value"], scalar_rows,
            title="Counters and gauges", precision=3,
        ))
    if hist_rows:
        sections.append(format_table(
            ["histogram", "labels", "count", "mean", "p50", "p90", "p99",
             "max"],
            hist_rows,
            title="Histograms (p* are bucket upper bounds; max is exact)",
            precision=2,
        ))
    if not sections:
        return "(no matching metrics)"
    return "\n\n".join(sections)
