"""``python -m repro.obs top``: a live dashboard over telemetry files.

Tails the per-run JSONL telemetry files that sweep, conformance and
engine workers append (see :mod:`repro.obs.telemetry`) and renders a
refreshing terminal table: one row per (file, pid) source showing
throughput (events/s from engine heartbeats), sweep progress with an
ETA, resident memory, and a stall flag — a source whose newest frame is
older than ``--stall-after`` seconds and that has not written a
terminal frame is marked ``STALLED``, the live-side complement of the
sweep reaper's hard timeout.

``--once`` renders a single snapshot and exits (what CI and the tests
use); the default loops until interrupted.
"""

from __future__ import annotations

import glob
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.tables import format_table
from ..core.errors import ArtifactError
from .telemetry import read_telemetry

__all__ = ["collect_frames", "summarize", "render", "main"]

#: Frame kinds that mark a source as finished (never flagged stalled).
TERMINAL_KINDS = frozenset({"run_end", "sweep_end", "shard_end"})

DEFAULT_STALL_AFTER_S = 10.0


def telemetry_files(target: str) -> List[str]:
    """Telemetry files under ``target`` (a dir, scanned recursively, or
    a single ``.jsonl`` file)."""
    if os.path.isfile(target):
        return [target]
    pattern = os.path.join(target, "**", "*.jsonl")
    return sorted(
        path for path in glob.glob(pattern, recursive=True)
        if "telemetry" in os.path.basename(path)
        or "telemetry" in os.path.basename(os.path.dirname(path))
    )


def collect_frames(
    target: str,
) -> Dict[Tuple[str, int], List[Dict[str, Any]]]:
    """All readable frames grouped by (file, pid), frames in file order."""
    sources: Dict[Tuple[str, int], List[Dict[str, Any]]] = {}
    for path in telemetry_files(target):
        try:
            frames = read_telemetry(path)
        except (OSError, ArtifactError):
            continue  # mid-rotation or corrupt: skip this refresh
        label = os.path.basename(path)
        for frame in frames:
            key = (label, int(frame.get("pid", 0)))
            sources.setdefault(key, []).append(frame)
    return sources


def _rate(frames: Sequence[Dict[str, Any]], field: str) -> Optional[float]:
    """Delta rate of a monotone counter field across its frame span."""
    carrying = [f for f in frames if field in f]
    if len(carrying) < 2:
        return None
    first, last = carrying[0], carrying[-1]
    dt = last["t"] - first["t"]
    if dt <= 0:
        return None
    return (last[field] - first[field]) / dt


def summarize(
    sources: Dict[Tuple[str, int], List[Dict[str, Any]]],
    *,
    now: Optional[float] = None,
    stall_after: float = DEFAULT_STALL_AFTER_S,
) -> List[Dict[str, Any]]:
    """One status row per source, sorted by file then pid."""
    if now is None:
        now = time.time()
    rows: List[Dict[str, Any]] = []
    for (label, pid), frames in sorted(sources.items()):
        last = frames[-1]
        age = now - last["t"]
        finished = any(f.get("kind") in TERMINAL_KINDS for f in frames)
        done = total = None
        for frame in reversed(frames):
            if "done" in frame:
                done = frame.get("done")
                total = frame.get("total")
                break
        eta = None
        points_rate = _rate(frames, "done")
        if (
            not finished and points_rate and done is not None
            and total is not None and total > done
        ):
            eta = (total - done) / points_rate
        # Overload-control state from the newest "control" frame (the
        # ControlPlane's telemetry); absent for runs with no controller.
        control = None
        control_frames = [f for f in frames if f.get("kind") == "control"]
        if control_frames:
            last_control = control_frames[-1]
            control = {
                "zone": last_control.get("zone"),
                "load": last_control.get("load"),
                "shed": last_control.get("shed"),
                "shed_per_s": _rate(control_frames, "shed"),
                "revocations": last_control.get("revocations"),
            }
        # Sharded-engine state from the newest "shard"/"shard_end" frame
        # (one worker process per shard; horizon lag is filled in by the
        # cross-source pass below once every shard's horizon is known).
        shard = None
        shard_frames = [
            f for f in frames if f.get("kind") in ("shard", "shard_end")
        ]
        if shard_frames:
            last_shard = shard_frames[-1]
            windows = last_shard.get("windows") or 0
            null_windows = last_shard.get("null_windows") or 0
            shard = {
                "shard": last_shard.get("shard"),
                "window": last_shard.get("window"),
                "horizon": last_shard.get("horizon"),
                "horizon_lag": None,
                "null_ratio": (
                    null_windows / windows if windows else None
                ),
                "boundary_per_s": _rate(shard_frames, "boundary"),
            }
        rows.append({
            "file": label,
            "pid": pid,
            "frames": len(frames),
            "kind": last.get("kind", "?"),
            "events_per_s": _rate(frames, "events"),
            "sim_time": last.get("sim_time"),
            "done": done,
            "total": total,
            "failed": next(
                (f["failed"] for f in reversed(frames) if "failed" in f), None
            ),
            "eta_s": eta,
            "control": control,
            "shard": shard,
            "rss_kb": last.get("rss_kb"),
            "age_s": age,
            "finished": finished,
            "stalled": not finished and age > stall_after,
        })
    # Horizon lag: how far each shard trails the front-most shard of the
    # same run (same file). The laggard is the one holding the barrier.
    front: Dict[str, float] = {}
    for row in rows:
        shard = row.get("shard")
        if shard is not None and shard["horizon"] is not None:
            front[row["file"]] = max(
                front.get(row["file"], 0.0), shard["horizon"]
            )
    for row in rows:
        shard = row.get("shard")
        if shard is not None and shard["horizon"] is not None:
            shard["horizon_lag"] = (
                front[row["file"]] - shard["horizon"]
            )
    return rows


def _cell(value: Any, fmt: str = "{}") -> str:
    return "-" if value is None else fmt.format(value)


def render(rows: List[Dict[str, Any]], *, title: str = "telemetry") -> str:
    """The status rows as an aligned table."""
    if not rows:
        return "(no telemetry frames found)"
    table_rows = []
    for row in rows:
        progress = "-"
        if row["done"] is not None:
            progress = f"{row['done']}/{_cell(row['total'])}"
            if row["failed"]:
                progress += f" ({row['failed']} failed)"
        status = "done" if row["finished"] else (
            "STALLED" if row["stalled"] else "running"
        )
        control = "-"
        if row.get("control") is not None:
            c = row["control"]
            shed = c["shed"] if c["shed"] is not None else 0
            control = f"{_cell(c['zone'])} shed:{shed}"
            if c["shed_per_s"]:
                control += f"({c['shed_per_s']:.1f}/s)"
            if c["revocations"]:
                control += f" rev:{c['revocations']}"
        shard = "-"
        if row.get("shard") is not None:
            s = row["shard"]
            shard = f"s{_cell(s['shard'])} w{_cell(s['window'])}"
            if s["horizon_lag"] is not None:
                shard += f" lag:{s['horizon_lag']:.3f}"
            if s["null_ratio"] is not None:
                shard += f" null:{s['null_ratio']:.0%}"
            if s["boundary_per_s"]:
                shard += f" b:{s['boundary_per_s']:,.0f}/s"
        table_rows.append([
            row["file"],
            row["pid"],
            row["kind"],
            _cell(row["events_per_s"], "{:,.0f}/s"),
            _cell(row["sim_time"], "{:.3f}"),
            progress,
            _cell(row["eta_s"], "{:.0f}s"),
            control,
            shard,
            _cell(row["rss_kb"]),
            f"{row['age_s']:.1f}s",
            status,
        ])
    return format_table(
        ["source", "pid", "last", "events", "sim_t", "points", "eta",
         "control", "shard", "rss_kb", "age", "status"],
        table_rows,
        title=title,
    )


def main(
    target: str,
    *,
    once: bool = False,
    interval_s: float = 2.0,
    stall_after: float = DEFAULT_STALL_AFTER_S,
) -> int:
    """Entry point behind ``python -m repro.obs top``."""
    while True:
        rows = summarize(collect_frames(target), stall_after=stall_after)
        body = render(rows, title=f"telemetry: {target}")
        if once:
            print(body)
            return 0
        # Clear + home, then redraw: a plain-ANSI refresh loop keeps the
        # dashboard dependency-free.
        sys.stdout.write("\x1b[2J\x1b[H" + body + "\n")
        sys.stdout.write(
            f"(refreshing every {interval_s:g}s; Ctrl-C to exit)\n"
        )
        sys.stdout.flush()
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:
            return 0
