"""Scheduler-level workload builders shared by experiments and benches.

These exercise schedulers *directly* (no network simulator): fill queues,
pull the service order, count operations. Network-level scenarios live in
:mod:`repro.bench.scenarios`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.interfaces import PacketScheduler
from ..core.opcount import OpCounter
from ..core.packet import Packet
from ..obs.metrics import NULL_REGISTRY, OPS_BUCKETS, MetricsRegistry
from ..obs.profile import DequeueProfiler, percentile
from ..schedulers.registry import create_scheduler

__all__ = [
    "build_loaded_scheduler",
    "service_sequence",
    "ops_per_packet",
    "ops_profile",
    "flight_profile",
    "geometric_weights",
    "uniform_weights",
]


def geometric_weights(n_flows: int, max_exponent: int = 6) -> Dict[int, int]:
    """``n_flows`` flows with weights cycling 1, 2, 4, ..., 2^max_exponent.

    A representative multi-service mix: many low-rate flows, a few heavy
    ones, exercising every weight-matrix column.
    """
    return {i: 1 << (i % (max_exponent + 1)) for i in range(n_flows)}


def uniform_weights(n_flows: int, weight: int = 1) -> Dict[int, int]:
    """``n_flows`` equal-weight flows."""
    return {i: weight for i in range(n_flows)}


def build_loaded_scheduler(
    name: str,
    weights: Dict[Hashable, float],
    packets_per_flow: int,
    *,
    packet_size: int = 200,
    op_counter: Optional[OpCounter] = None,
    **scheduler_kwargs,
) -> PacketScheduler:
    """Create a scheduler with every flow registered and backlogged."""
    kwargs = dict(scheduler_kwargs)
    if op_counter is not None:
        kwargs["op_counter"] = op_counter
    sched = create_scheduler(name, **kwargs)
    for fid, weight in weights.items():
        sched.add_flow(fid, weight)
    for fid in weights:
        for seq in range(packets_per_flow):
            sched.enqueue(Packet(fid, packet_size, seq=seq))
    return sched


def service_sequence(
    sched: PacketScheduler, count: int
) -> List[Hashable]:
    """Dequeue ``count`` packets and return the flow-id order."""
    out: List[Hashable] = []
    for _ in range(count):
        packet = sched.dequeue()
        if packet is None:
            break
        out.append(packet.flow_id)
    return out


def ops_profile(
    name: str,
    n_flows: int,
    *,
    weights: Optional[Dict[Hashable, float]] = None,
    packets_per_flow: int = 4,
    measure: int = 2000,
    registry: MetricsRegistry = NULL_REGISTRY,
    **scheduler_kwargs,
) -> Dict[str, float]:
    """Elementary-operation profile of ``dequeue`` at size N.

    The E5 measurement: flows are saturated, the counter is reset, and
    ``measure`` packets are pulled — each decision profiled individually
    (:class:`~repro.obs.profile.DequeueProfiler`). Returns the per-dequeue
    distribution (``mean_ops``/``p50_ops``/``p90_ops``/``p99_ops``/
    ``worst_ops``, plus ``p99_scan_terms``/``worst_scan_terms`` for
    SRR-family schedulers) and the raw ``total_ops``/``served`` counters.
    Pass a real ``registry`` to also capture the distributions as
    mergeable ``dequeue_ops``/``wss_terms`` histograms labeled
    ``{scheduler, n}``.
    """
    ops = OpCounter()
    flow_weights = weights or uniform_weights(n_flows)
    sched = build_loaded_scheduler(
        name,
        flow_weights,
        packets_per_flow,
        op_counter=ops,
        **scheduler_kwargs,
    )
    ops.reset()
    profiler = DequeueProfiler(
        sched, ops, registry=registry, scheduler=name, n=n_flows
    )
    profiler.pull(min(measure, n_flows * packets_per_flow))
    return profiler.summary()


def flight_profile(
    name: str,
    n_flows: int,
    *,
    weights: Optional[Dict[Hashable, float]] = None,
    packets_per_flow: int = 4,
    measure: int = 2000,
    registry: MetricsRegistry = NULL_REGISTRY,
    label: Optional[str] = None,
    **scheduler_kwargs,
) -> Dict[str, float]:
    """The E5 measurement on a flat core's *scalar* datapath.

    :func:`ops_profile` drives ``dequeue()`` — which a fast scheduler
    supports, but which is not the datapath the lean loop actually
    runs. This twin loads the same saturated workload through
    ``push`` and serves it through ``pull``, with an exhaustively
    sampling :class:`~repro.obs.flight.FlightRecorder`
    (``sample_shift=0``) capturing every per-pull op and WSS-term delta
    — so the summary keys and values are directly comparable to the
    object profile (the flat twins bump their op counters at the same
    algorithmic steps). Also exports the :class:`FlowLanes` data-plane
    counters and the same ``dequeue_ops``/``wss_terms`` histograms into
    ``registry``, plus a ``"flight"`` sub-dict with the recorder's own
    accounting.
    """
    from ..obs.flight import FlightRecorder

    ops = OpCounter()
    sched = create_scheduler(name, op_counter=ops, **scheduler_kwargs)
    flow_weights = weights or uniform_weights(n_flows)
    for fid, weight in flow_weights.items():
        sched.add_flow(fid, weight)
    for fid in flow_weights:
        slot = sched.slot_of(fid)
        for _ in range(packets_per_flow):
            sched.push(slot, 200)
    budget = min(measure, n_flows * packets_per_flow)
    capacity = 1 << max(3, (budget - 1).bit_length())
    recorder = FlightRecorder(capacity, sample_shift=0)
    recorder.arm(sched)
    pull = sched.pull  # the armed instrumented variant
    served = 0
    for _ in range(budget):
        if pull() is None:
            break
        served += 1
    scheduler_label = label or name
    sched.observe_lanes(registry, scheduler=scheduler_label, n=n_flows)
    deltas, scan_deltas = recorder.pull_deltas()
    ops_hist = registry.histogram(
        "dequeue_ops", OPS_BUCKETS, scheduler=scheduler_label, n=n_flows
    )
    for delta in deltas:
        ops_hist.observe(delta)
    deltas.sort()
    out: Dict[str, float] = {
        "served": served,
        "total_ops": sum(deltas),
        "mean_ops": sum(deltas) / len(deltas) if deltas else 0.0,
        "p50_ops": percentile(deltas, 0.50),
        "p90_ops": percentile(deltas, 0.90),
        "p99_ops": percentile(deltas, 0.99),
        "worst_ops": deltas[-1] if deltas else 0,
        "flight": recorder.snapshot(),
    }
    if getattr(sched, "terms_scanned", None) is not None and scan_deltas:
        scan_hist = registry.histogram(
            "wss_terms", OPS_BUCKETS, scheduler=scheduler_label, n=n_flows
        )
        for delta in scan_deltas:
            scan_hist.observe(delta)
        scan_deltas.sort()
        out["p99_scan_terms"] = percentile(scan_deltas, 0.99)
        out["worst_scan_terms"] = scan_deltas[-1]
    return out


def ops_per_packet(
    name: str,
    n_flows: int,
    *,
    weights: Optional[Dict[Hashable, float]] = None,
    packets_per_flow: int = 4,
    measure: int = 2000,
    **scheduler_kwargs,
) -> Tuple[float, int]:
    """(mean, worst) elementary operations per ``dequeue`` at size N."""
    profile = ops_profile(
        name,
        n_flows,
        weights=weights,
        packets_per_flow=packets_per_flow,
        measure=measure,
        **scheduler_kwargs,
    )
    return (profile["mean_ops"], int(profile["worst_ops"]))
