"""Experiment registry + CLI (``python -m repro.bench <experiment>``)."""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from ..core.errors import ConfigurationError
from . import experiments

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

EXPERIMENTS: Dict[str, Callable[..., Dict]] = {
    "e1": experiments.e1_wss_properties,
    "e2": experiments.e2_smoothness,
    "e3": experiments.e3_end_to_end_delay,
    "e4": experiments.e4_delay_vs_n,
    "e5": experiments.e5_scheduling_cost,
    "e6": experiments.e6_fairness,
    "e7": experiments.e7_guarantees,
    "e8": experiments.e8_g3_comparison,
    "e9": experiments.e9_space_time,
    "e10": experiments.e10_bound_validation,
    "e11": experiments.e11_variable_packet_sizes,
    "e12": experiments.e12_admission_quotes,
}

_DESCRIPTIONS = {
    "e1": "WSS definition table and properties",
    "e2": "service-order smoothness: SRR vs WRR/DRR/RR",
    "e3": "end-to-end delay in the Fig. 8 dumbbell",
    "e4": "delay vs number of flows N (Theorem 1 shape)",
    "e5": "per-packet scheduling cost vs N (the O(1) claim)",
    "e6": "weighted fairness indices, saturated node",
    "e7": "throughput guarantees under best-effort overload",
    "e8": "[ext] G-3 vs SRR vs RRR (follow-on Fig. 9)",
    "e9": "space-time tradeoffs (WSS storage, TArray expansion)",
    "e10": "measured delay vs analytic bounds",
    "e11": "variable packet sizes: packet vs deficit mode byte fairness",
    "e12": "admission control: per-discipline delay quotes + validation",
}


def run_experiment(name: str, **kwargs) -> Dict:
    """Run one experiment by id (``"e1"`` .. ``"e12"``)."""
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return fn(**kwargs)


def main(argv: List[str] = None) -> int:
    """CLI entry point: run one experiment, or ``all``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the SRR reproduction's tables and figures.",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="experiments:\n" + "\n".join(
            f"  {name:4s} {_DESCRIPTIONS[name]}" for name in EXPERIMENTS
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (see list below) or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced scale (shorter simulations, fewer background flows)",
    )
    args = parser.parse_args(argv)

    quick_overrides: Dict[str, Dict] = {
        "e3": {"duration": 3.0, "n_background": 100},
        "e4": {"n_values": (16, 64, 128), "duration": 2.0},
        "e5": {"n_values": (16, 256, 2048), "measure": 1500},
        "e7": {"duration": 3.0, "n_background": 50},
        "e8": {"duration": 3.0, "n_background": 100},
        "e10": {"n_flows": 16, "rounds": 12},
        "e12": {"validate": False},
    }
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    # 'all' in natural order e1..e10, not lexicographic.
    names.sort(key=lambda n: int(n[1:]))
    for name in names:
        kwargs = quick_overrides.get(name, {}) if args.quick else {}
        run_experiment(name, **kwargs)
    return 0


if __name__ == "__main__":
    sys.exit(main())
