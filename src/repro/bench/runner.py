"""Experiment registry + CLI (``python -m repro.bench <experiment>``).

The CLI is a thin shell over :mod:`repro.harness`: it resolves one
:class:`~repro.harness.ExperimentSpec` per requested experiment into an
:class:`~repro.harness.ExperimentConfig` (``--seed``/``--scale``/
``--jobs``/``--set key=value``), runs it, writes a ``results/<exp>/
<timestamp>-<seed>.json`` artifact (disable with ``--no-artifact``) and
optionally dumps the full :class:`~repro.harness.RunResult` as JSON with
``--json``.

``run_experiment(name, **kwargs)`` keeps the legacy call style used by
the pytest benches: kwargs are forwarded to the ``eN_*`` wrapper and the
summary metrics dict is returned.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..core.errors import ConfigurationError
from ..harness import RunResult, build_config, run_config_for_spec
from . import experiments
from .experiments import SPECS

__all__ = ["EXPERIMENTS", "SPECS", "run_experiment", "run_config", "main"]

EXPERIMENTS: Dict[str, Callable[..., Dict]] = {
    "e1": experiments.e1_wss_properties,
    "e2": experiments.e2_smoothness,
    "e3": experiments.e3_end_to_end_delay,
    "e4": experiments.e4_delay_vs_n,
    "e5": experiments.e5_scheduling_cost,
    "e6": experiments.e6_fairness,
    "e7": experiments.e7_guarantees,
    "e8": experiments.e8_g3_comparison,
    "e9": experiments.e9_space_time,
    "e10": experiments.e10_bound_validation,
    "e11": experiments.e11_variable_packet_sizes,
    "e12": experiments.e12_admission_quotes,
    "e13": experiments.e13_churn_resilience,
    "e14": experiments.e14_overload_control,
    "e15": experiments.e15_shard_scaling,
    "e16": experiments.e16_bound_tightness,
}

_DESCRIPTIONS = {eid: spec.title for eid, spec in SPECS.items()}


def run_experiment(name: str, **kwargs) -> Dict:
    """Run one experiment by id (``"e1"`` .. ``"e13"``), legacy style."""
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return fn(**kwargs)


def run_config(
    name: str,
    *,
    seed: int = 1,
    scale: str = "default",
    jobs: int = 1,
    quiet: bool = True,
    timeout: Optional[float] = None,
    retries: int = 0,
    retry_backoff: float = 0.0,
    checkpoint_dir: Optional[str] = None,
    engine: Optional[str] = None,
    overrides: Optional[Mapping[str, Any]] = None,
) -> RunResult:
    """Run one experiment through the harness; return the full RunResult."""
    try:
        spec = SPECS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; choose from {sorted(SPECS)}"
        ) from None
    config = build_config(
        spec, seed=seed, scale=scale, jobs=jobs, quiet=quiet,
        timeout=timeout, retries=retries, retry_backoff=retry_backoff,
        checkpoint_dir=checkpoint_dir, engine=engine, overrides=overrides,
    )
    return run_config_for_spec(spec, config)


def _parse_overrides(items: List[str]) -> Dict[str, Any]:
    """``--set key=value`` pairs; values parsed as Python literals."""
    overrides: Dict[str, Any] = {}
    for item in items:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise ConfigurationError(
                f"--set expects key=value, got {item!r}"
            )
        try:
            overrides[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            overrides[key] = raw
    return overrides


def main(argv: List[str] = None) -> int:
    """CLI entry point: run one experiment, or ``all``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the SRR reproduction's tables and figures.",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="experiments:\n" + "\n".join(
            f"  {name:4s} {_DESCRIPTIONS[name]}" for name in EXPERIMENTS
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (see list below) or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorthand for --scale quick",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "default", "full"),
        default="default",
        help="parameter preset: quick (CI-sized), default, or full",
    )
    parser.add_argument(
        "--seed", type=int, default=1,
        help="root seed for every RNG in the run (default 1)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="process-pool fan-out for sweeps; results are bit-identical "
             "to --jobs 1 (default 1; 0 = all cores)",
    )
    parser.add_argument(
        "--engine", choices=("heap", "calendar"), default=None,
        help="event-queue backend for every Simulator in the run "
             "(default: REPRO_ENGINE env var, else calendar); results "
             "are bit-identical across backends — only wall time differs",
    )
    parser.add_argument(
        "--set", dest="overrides", action="append", default=[],
        metavar="KEY=VALUE",
        help="override one experiment parameter (repeatable); values are "
             "Python literals, e.g. --set n_values=(16,64)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full RunResult as JSON instead of tables",
    )
    parser.add_argument(
        "--results-dir", default="results",
        help="artifact directory (default: results/)",
    )
    parser.add_argument(
        "--no-artifact", action="store_true",
        help="do not write a results/<exp>/<timestamp>-<seed>.json artifact",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the result tables",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record packet-lifecycle events (bounded ring buffer) and "
             "write them as JSONL to PATH; forces --jobs 1 so events "
             "from pool workers are not lost",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-sweep-point wall-clock budget; hung points are "
             "terminated and recorded as FailedRun instead of wedging "
             "the run",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="re-run a failed/timed-out sweep point up to N extra times "
             "(each attempt's child seed is recorded in the artifact)",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.0, metavar="SECONDS",
        help="base delay of the seeded exponential backoff (with jitter) "
             "between retry attempts; each wait is recorded per attempt "
             "in the artifact's failure records (default 0 = retry "
             "immediately)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="checkpoint each sweep point under "
             "<results-dir>/<exp>/checkpoints/ and skip points whose "
             "valid checkpoint already exists (failed points re-run)",
    )
    parser.add_argument(
        "--check-invariants", action="store_true",
        help="attach the runtime invariant guard pack (SRR matrix "
             "integrity, DRR credit conservation, WFQ vtime "
             "monotonicity, work conservation) where the experiment "
             "supports it",
    )
    parser.add_argument(
        "--control", choices=("on", "off", "both"), default=None,
        help="overload control plane arm selection for experiments that "
             "support it (e14): 'on' runs only the controlled arm, 'off' "
             "only the uncontrolled baseline, 'both' the paired "
             "comparison (e14's default)",
    )
    parser.add_argument(
        "--watermark-low", type=float, default=None, metavar="FRAC",
        help="admission watermark below which joins are always admitted "
             "(fraction of bottleneck capacity; e14 default 0.70)",
    )
    parser.add_argument(
        "--watermark-high", type=float, default=None, metavar="FRAC",
        help="admission watermark at/above which joins are always "
             "rejected; between low and high they are shed "
             "probabilistically (e14 default 0.90)",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="simulation shard count for experiments that support it "
             "(e15): runs the topology on N shard processes plus the "
             "1-shard reference the digest is checked against",
    )
    parser.add_argument(
        "--core", choices=("object", "fast"), default=None,
        help="scheduler core for experiments that support it: 'fast' "
             "swaps in the flat twins (srr -> srr:fast) and profiles "
             "the scalar datapath via the flight recorder",
    )
    parser.add_argument(
        "--flight", type=int, nargs="?", const=6, default=None,
        metavar="SHIFT",
        help="arm the process-wide flight recorder at 1-in-2^SHIFT "
             "sampling (default shift 6 = 1/64); recording totals land "
             "in the artifact's obs.flight block",
    )
    parser.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="append live heartbeat frames (JSONL) to PATH from this "
             "process and every sweep worker; watch them with "
             "'python -m repro.obs top'",
    )
    args = parser.parse_args(argv)

    import os

    from ..harness import write_artifact
    from ..obs.flight import (
        FLIGHT_ENV_VAR,
        FlightRecorder,
        set_flight_recorder,
    )
    from ..obs.telemetry import (
        TELEMETRY_ENV_VAR,
        get_telemetry,
        set_telemetry,
    )
    from ..obs.trace import Tracer, set_tracer

    scale = "quick" if args.quick else args.scale
    overrides = _parse_overrides(args.overrides)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    # 'all' in natural order e1..e12, not lexicographic.
    names.sort(key=lambda n: int(n[1:]))
    jobs = args.jobs
    tracer = None
    previous_tracer = None
    if args.trace is not None:
        if jobs != 1:
            print("--trace forces --jobs 1 (pool workers cannot share "
                  "the ring buffer)", file=sys.stderr)
            jobs = 1
        tracer = Tracer()
        previous_tracer = set_tracer(tracer)
    if args.check_invariants:
        overrides = dict(overrides)
        overrides["check_invariants"] = True
        unsupported = [
            n for n in names
            if "check_invariants" not in SPECS[n].param_names()
        ]
        if unsupported and args.experiment != "all":
            raise ConfigurationError(
                f"--check-invariants is not supported by "
                f"{', '.join(unsupported)}"
            )
    for flag, key, value in (
        ("--control", "control", args.control),
        ("--watermark-low", "low", args.watermark_low),
        ("--watermark-high", "high", args.watermark_high),
    ):
        if value is None:
            continue
        overrides = dict(overrides)
        overrides[key] = value
        unsupported = [
            n for n in names if key not in SPECS[n].param_names()
        ]
        if unsupported and args.experiment != "all":
            raise ConfigurationError(
                f"{flag} is not supported by {', '.join(unsupported)}"
            )
    if args.core is not None:
        overrides = dict(overrides)
        overrides["core"] = args.core
        unsupported = [
            n for n in names if "core" not in SPECS[n].param_names()
        ]
        if unsupported and args.experiment != "all":
            raise ConfigurationError(
                f"--core is not supported by {', '.join(unsupported)}"
            )
    if args.shards is not None:
        overrides = dict(overrides)
        # Always include the 1-shard reference: the digest check and the
        # speedup column are both relative to it.
        overrides["shards"] = (
            (1,) if args.shards <= 1 else (1, args.shards)
        )
        unsupported = [
            n for n in names if "shards" not in SPECS[n].param_names()
        ]
        if unsupported and args.experiment != "all":
            raise ConfigurationError(
                f"--shards is not supported by {', '.join(unsupported)}"
            )
    # Observability plumbing: both are env-var activated so sweep pool
    # workers (fresh processes) pick them up on their own.
    saved_env = {}
    recorder = None
    previous_recorder = None
    if args.flight is not None:
        recorder = FlightRecorder(sample_shift=args.flight)
        previous_recorder = set_flight_recorder(recorder)
        saved_env[FLIGHT_ENV_VAR] = os.environ.get(FLIGHT_ENV_VAR)
        os.environ[FLIGHT_ENV_VAR] = str(args.flight)
    telemetry = None
    if args.telemetry is not None:
        saved_env[TELEMETRY_ENV_VAR] = os.environ.get(TELEMETRY_ENV_VAR)
        os.environ[TELEMETRY_ENV_VAR] = args.telemetry
        set_telemetry(None)
        telemetry = get_telemetry()
        telemetry.frame(
            "run_start", experiments=names, scale=scale, seed=args.seed,
        )
    payloads = []
    try:
        for name in names:
            checkpoint_dir = None
            if args.resume:
                # Deterministic location, so a re-run of the same
                # (experiment, seed, scale) finds its own checkpoints.
                checkpoint_dir = (
                    f"{args.results_dir}/{name}/checkpoints/"
                    f"seed{args.seed}-{scale}"
                )
            result = run_config(
                name,
                seed=args.seed,
                scale=scale,
                jobs=jobs,
                quiet=args.quiet or args.json,
                timeout=args.timeout,
                retries=args.retries,
                retry_backoff=args.retry_backoff,
                checkpoint_dir=checkpoint_dir,
                engine=args.engine,
                overrides=overrides if args.experiment != "all" else {
                    k: v for k, v in overrides.items()
                    if k in SPECS[name].param_names()
                },
            )
            if result.failed:
                print(
                    f"{name}: {len(result.failed)} sweep point(s) failed "
                    f"after retries (recorded in the artifact)",
                    file=sys.stderr,
                )
            if not args.no_artifact:
                path = write_artifact(result, results_dir=args.results_dir)
                print(f"wrote {path}", file=sys.stderr)
            if args.json:
                payloads.append(result.to_json_dict())
    finally:
        if tracer is not None:
            set_tracer(previous_tracer)
            written = tracer.write_jsonl(args.trace)
            print(f"wrote {written} trace events to {args.trace} "
                  f"({tracer.dropped} dropped by the ring buffer)",
                  file=sys.stderr)
        if recorder is not None:
            set_flight_recorder(previous_recorder)
            snap = recorder.snapshot()
            print(f"flight recorder: {snap['recorded']} records "
                  f"({snap['ops_seen']} ops seen at 1/"
                  f"{snap['sample_rate']} sampling, "
                  f"{snap['dropped']} overwritten)", file=sys.stderr)
        if telemetry is not None:
            telemetry.frame("run_end", experiments=names)
            telemetry.close()
            set_telemetry(None)
        for var, prev in saved_env.items():
            if prev is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = prev
    if args.json:
        print(json.dumps(payloads[0] if len(payloads) == 1 else payloads,
                         indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
