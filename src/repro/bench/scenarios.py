"""Network-level experiment scenarios.

The centrepiece is :func:`dumbbell_network` — the author's simulation
topology (Fig. 8 of the supplied text, reused from the SRR evaluation):

* hosts ``h0..h4`` -> router ``R0`` at 100 Mb/s / 1 ms;
* bottlenecks ``R0 -> R1 -> R2`` at 10 Mb/s / 10 ms each;
* ``R2`` -> destinations ``d0..d4`` at 100 Mb/s / 1 ms;
* ``f1``: 32 kb/s CBR (h0 -> d0); ``f2``: 1024 kb/s CBR (h1 -> d1);
* 500 background CBR flows at 16 kb/s (h2 -> d2);
* two Pareto on/off best-effort flows (h3 -> d3, h4 -> d4), mean on/off
  100 ms, alpha 1.5, mean rate ~2 Mb/s each — more than the unallocated
  bandwidth, so the bottleneck stays saturated.

Weights: rates are expressed in 16 kb/s units (the background rate), so
C = 10 Mb/s = 625 units, f1 = 2, f2 = 64, background = 1 each; reserved
total 566 of 625. The weighted scheduler under test runs on the two
bottleneck directions; access links are uncongested FIFO. Under G-3 the
best-effort flows use weight 0 (the paper's f0); under the work-conserving
schedulers they get weight 1 and simply share the residue.

RRR needs a power-of-two slot grid; following the paper's own example a
20-bit grid is used, which is exactly what inflates its per-flow bit
counts (and its delay) — reproduced in experiment E8.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..core.errors import ConfigurationError
from ..net.scenario import Network
from ..net.sources import CBRSource, ParetoOnOffSource

__all__ = [
    "WEIGHT_UNIT_BPS",
    "BOTTLENECK_BPS",
    "MTU",
    "dumbbell_network",
    "single_bottleneck_network",
    "parking_lot_network",
    "slots_for_rate",
]

#: One SRR/G-3 weight unit = the background-flow rate of the paper.
WEIGHT_UNIT_BPS = 16_000
#: The paper's bottleneck rate.
BOTTLENECK_BPS = 10_000_000
#: The paper's MTU (fixed packet size L).
MTU = 200
#: RRR slot-grid order (the paper's Section II-C example uses g = 20).
RRR_GRID_ORDER = 20


def slots_for_rate(rate_bps: float, capacity_slots: int, link_bps: float) -> int:
    """Smallest slot weight reserving at least ``rate_bps``."""
    return max(1, math.ceil(rate_bps / link_bps * capacity_slots))


def _bottleneck_config(scheduler: str) -> Dict:
    """Per-scheduler kwargs for a 10 Mb/s bottleneck port."""
    scheduler = _base_name(scheduler)
    capacity_units = BOTTLENECK_BPS // WEIGHT_UNIT_BPS  # 625
    if scheduler == "g3":
        return {"capacity": capacity_units}
    if scheduler == "rrr":
        return {"capacity": 1 << RRR_GRID_ORDER}
    if scheduler in ("drr", "srr"):
        return {"quantum": MTU}
    return {}


def _base_name(scheduler: str) -> str:
    """Strip a core suffix: ``"srr:fast"`` configures like ``"srr"``."""
    return scheduler.partition(":")[0]


def _flow_weight(scheduler: str, rate_bps: float, *, best_effort: bool) -> float:
    """Map a reserved rate to this scheduler's weight domain."""
    scheduler = _base_name(scheduler)
    if scheduler in ("g3", "rrr"):
        if best_effort:
            return 0
        if scheduler == "rrr":
            return slots_for_rate(
                rate_bps, 1 << RRR_GRID_ORDER, BOTTLENECK_BPS
            )
        return max(1, round(rate_bps / WEIGHT_UNIT_BPS))
    if best_effort:
        return 1  # minimal share of the residue under work conservation
    if scheduler in ("wfq", "scfq", "stfq", "wf2q+", "vc", "strr"):
        return rate_bps  # real-valued weights: use the rate directly
    return max(1, round(rate_bps / WEIGHT_UNIT_BPS))


def dumbbell_network(
    scheduler: str,
    *,
    n_background: int = 500,
    background_rate_bps: float = WEIGHT_UNIT_BPS,
    f1_rate_bps: float = 32_000,
    f2_rate_bps: float = 1_024_000,
    best_effort_peak_bps: float = 4_000_000,
    packet_size: int = MTU,
    max_queue: Optional[int] = None,
    be_max_queue: int = 400,
    stagger_background: bool = False,
    seed: int = 1,
) -> Network:
    """Build the paper's Fig. 8 scenario under the given scheduler.

    Returns a ready :class:`~repro.net.scenario.Network`; call
    ``net.run(until=...)`` and read ``net.sinks``. Flow ids: ``"f1"``,
    ``"f2"``, ``"bg<i>"``, ``"be1"``, ``"be2"``.
    """
    net = Network(default_scheduler="fifo")
    hosts = [f"h{i}" for i in range(5)]
    dests = [f"d{i}" for i in range(5)]
    for name in hosts + ["R0", "R1", "R2"] + dests:
        net.add_node(name)
    for h in hosts:
        net.add_link(h, "R0", rate_bps=100e6, delay=0.001)
    kw = _bottleneck_config(scheduler)
    net.add_link("R0", "R1", rate_bps=BOTTLENECK_BPS, delay=0.010,
                 scheduler=scheduler, scheduler_kwargs=kw)
    net.add_link("R1", "R2", rate_bps=BOTTLENECK_BPS, delay=0.010,
                 scheduler=scheduler, scheduler_kwargs=kw)
    for d in dests:
        net.add_link("R2", d, rate_bps=100e6, delay=0.001)
    net.compute_routes()

    def reserve(fid, src, dst, rate, *, best_effort=False):
        weight = _flow_weight(scheduler, rate, best_effort=best_effort)
        # Best-effort queues are bounded (the offered load exceeds the
        # residual bandwidth by design, so they would otherwise grow
        # without limit — real routers have finite buffers).
        limit = be_max_queue if best_effort else max_queue
        net.add_flow(fid, src, dst, weight=weight, max_queue=limit)

    reserve("f1", "h0", "d0", f1_rate_bps)
    reserve("f2", "h1", "d1", f2_rate_bps)
    for i in range(n_background):
        reserve(f"bg{i}", "h2", "d2", background_rate_bps)
    reserve("be1", "h3", "d3", 0, best_effort=True)
    reserve("be2", "h4", "d4", 0, best_effort=True)

    net.attach_source("f1", CBRSource(f1_rate_bps, packet_size))
    net.attach_source("f2", CBRSource(f2_rate_bps, packet_size))
    # ns-2 CBR sources all start at t = 0 by default; the synchronised
    # arrival batches are what makes every background flow backlogged at
    # the start of each round — the condition under which SRR's delay
    # grows with N. `stagger_background` spreads the starts instead
    # (a gentler, but less paper-faithful, workload).
    interval = packet_size * 8.0 / background_rate_bps
    for i in range(n_background):
        start = (
            (i / max(n_background, 1)) * interval if stagger_background else 0.0
        )
        net.attach_source(
            f"bg{i}",
            CBRSource(background_rate_bps, packet_size, start_at=start),
        )
    net.attach_source(
        "be1",
        ParetoOnOffSource(best_effort_peak_bps, packet_size, seed=seed),
    )
    net.attach_source(
        "be2",
        ParetoOnOffSource(best_effort_peak_bps, packet_size, seed=seed + 1),
    )
    return net


def single_bottleneck_network(
    scheduler: str,
    n_flows: int,
    *,
    tagged_rate_bps: float = 32_000,
    background_rate_bps: float = WEIGHT_UNIT_BPS,
    link_bps: float = BOTTLENECK_BPS,
    packet_size: int = MTU,
    saturate: bool = True,
    seed: int = 1,
) -> Network:
    """One host, one bottleneck, one sink — for the delay-vs-N sweep (E4).

    A tagged CBR flow (``"tag"``) shares the bottleneck with ``n_flows``
    background CBR flows. With ``saturate`` the background flows send 15%
    above their reservation so the tagged flow's delay reflects scheduling,
    not idle capacity. The reserved total is checked against the link.
    """
    reserved = tagged_rate_bps + n_flows * background_rate_bps
    if reserved > link_bps:
        raise ConfigurationError(
            f"reservations {reserved} exceed link {link_bps} bps"
        )
    net = Network(default_scheduler="fifo")
    for name in ("src", "R", "dst"):
        net.add_node(name)
    net.add_link("src", "R", rate_bps=10 * link_bps, delay=0.0005)
    kw = _bottleneck_config(scheduler) if link_bps == BOTTLENECK_BPS else {}
    net.add_link("R", "dst", rate_bps=link_bps, delay=0.001,
                 scheduler=scheduler, scheduler_kwargs=kw)
    net.compute_routes()

    tag_weight = _flow_weight(scheduler, tagged_rate_bps, best_effort=False)
    net.add_flow("tag", "src", "dst", weight=tag_weight)
    net.attach_source("tag", CBRSource(tagged_rate_bps, packet_size))
    bg_weight = _flow_weight(
        scheduler, background_rate_bps, best_effort=False
    )
    overdrive = 1.15 if saturate else 1.0
    for i in range(n_flows):
        fid = f"bg{i}"
        net.add_flow(fid, "src", "dst", weight=bg_weight)
        net.attach_source(
            fid,
            CBRSource(background_rate_bps * overdrive, packet_size),
        )
    return net


def parking_lot_network(
    scheduler: str,
    hops: int = 3,
    *,
    tagged_rate_bps: float = 128_000,
    cross_flows_per_hop: int = 30,
    cross_rate_bps: float = WEIGHT_UNIT_BPS,
    link_bps: float = BOTTLENECK_BPS,
    packet_size: int = MTU,
    seed: int = 1,
) -> Network:
    """The classic parking-lot topology: one tagged flow crossing every
    hop, fresh cross traffic entering and leaving at each hop.

    R0 - R1 - ... - R<hops>; the tagged flow runs end to end while each
    hop carries its own set of single-hop cross flows (CBR at 15% above
    their reservation, so every bottleneck stays contended). This is the
    workload that exercises the end-to-end *composition* of per-node
    bounds (Corollary 1): the tagged flow pays each hop's scheduling
    latency in sequence.

    Flow ids: ``"tag"``, ``"x<h>_<i>"`` for cross flow i at hop h.
    """
    if hops < 1:
        raise ConfigurationError("need at least one hop")
    reserved = tagged_rate_bps + cross_flows_per_hop * cross_rate_bps
    if reserved > link_bps:
        raise ConfigurationError(
            f"per-hop reservations {reserved} exceed link {link_bps} bps"
        )
    net = Network(default_scheduler="fifo")
    routers = [f"R{i}" for i in range(hops + 1)]
    for name in routers:
        net.add_node(name)
    net.add_node("src")
    net.add_node("dst")
    net.add_link("src", routers[0], rate_bps=10 * link_bps, delay=0.0005)
    kw = _bottleneck_config(scheduler) if link_bps == BOTTLENECK_BPS else {}
    for a, b in zip(routers, routers[1:]):
        net.add_link(a, b, rate_bps=link_bps, delay=0.001,
                     scheduler=scheduler, scheduler_kwargs=kw)
    net.add_link(routers[-1], "dst", rate_bps=10 * link_bps, delay=0.0005)
    # Cross-traffic attachment points: one ingress/egress pair per hop.
    for h in range(hops):
        net.add_node(f"in{h}")
        net.add_node(f"out{h}")
        net.add_link(f"in{h}", routers[h], rate_bps=10 * link_bps,
                     delay=0.0005)
        net.add_link(routers[h + 1], f"out{h}", rate_bps=10 * link_bps,
                     delay=0.0005)
    net.compute_routes()

    tag_weight = _flow_weight(scheduler, tagged_rate_bps, best_effort=False)
    net.add_flow("tag", "src", "dst", weight=tag_weight)
    net.attach_source("tag", CBRSource(tagged_rate_bps, packet_size))
    cross_weight = _flow_weight(scheduler, cross_rate_bps, best_effort=False)
    for h in range(hops):
        for i in range(cross_flows_per_hop):
            fid = f"x{h}_{i}"
            net.add_flow(fid, f"in{h}", f"out{h}", weight=cross_weight)
            net.attach_source(
                fid, CBRSource(cross_rate_bps * 1.15, packet_size)
            )
    return net
