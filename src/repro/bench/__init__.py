"""The experiment harness regenerating every table/figure (see DESIGN.md).

``python -m repro.bench e3`` reruns experiment E3; ``--scale quick``
(or ``--quick``) shrinks simulation scale, ``--jobs N`` fans sweeps out
over a process pool, ``--seed``/``--set key=value`` pin the run, and
every run writes a ``results/<exp>/<timestamp>-<seed>.json`` artifact.
The same functions back the pytest-benchmark suite in ``benchmarks/``;
the typed specs live in :data:`repro.bench.experiments.SPECS` and the
run machinery in :mod:`repro.harness`.
"""

from .experiments import (
    e1_wss_properties,
    e2_smoothness,
    e3_end_to_end_delay,
    e4_delay_vs_n,
    e5_scheduling_cost,
    e6_fairness,
    e7_guarantees,
    e8_g3_comparison,
    e9_space_time,
    e10_bound_validation,
    e11_variable_packet_sizes,
    e12_admission_quotes,
)
from .experiments import SPECS
from .runner import EXPERIMENTS, run_config, run_experiment
from .scenarios import (
    BOTTLENECK_BPS,
    MTU,
    WEIGHT_UNIT_BPS,
    dumbbell_network,
    single_bottleneck_network,
)
from .workloads import (
    build_loaded_scheduler,
    geometric_weights,
    ops_per_packet,
    ops_profile,
    service_sequence,
    uniform_weights,
)

__all__ = [
    "BOTTLENECK_BPS",
    "EXPERIMENTS",
    "SPECS",
    "MTU",
    "WEIGHT_UNIT_BPS",
    "build_loaded_scheduler",
    "dumbbell_network",
    "e10_bound_validation",
    "e11_variable_packet_sizes",
    "e12_admission_quotes",
    "e1_wss_properties",
    "e2_smoothness",
    "e3_end_to_end_delay",
    "e4_delay_vs_n",
    "e5_scheduling_cost",
    "e6_fairness",
    "e7_guarantees",
    "e8_g3_comparison",
    "e9_space_time",
    "geometric_weights",
    "ops_per_packet",
    "ops_profile",
    "run_config",
    "run_experiment",
    "service_sequence",
    "single_bottleneck_network",
    "uniform_weights",
]
