"""The experiments of EXPERIMENTS.md (E1-E12), on the run harness.

Each experiment is declared as an :class:`~repro.harness.ExperimentSpec`:
a frozen dataclass of typed parameters (with ``quick``/``full`` scale
presets), plus a *body* that sweeps module-level point functions through
:meth:`RunContext.sweep` — so any experiment fans out across a process
pool with ``--jobs N`` while staying bit-identical to a serial run — and
emits its tables from the same per-point records that land in the
``results/`` JSON artifacts.

The legacy ``eN_*`` callables are kept as thin wrappers returning the
summary metrics dict (what the pytest benches assert on); the full
structured record of a run is the :class:`~repro.harness.RunResult`
returned by ``repro.bench.runner.run_config``.

Point functions are module-level (picklable) and self-contained: each
receives everything it needs as plain arguments, including its own seed
where stochastic, so results are keyed by sweep point and independent of
execution order.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..analysis.bounds import (
    end_to_end_bound,
    g3_delay_bound,
    rrr_delay_bound,
    srr_delay_bound,
)
from ..analysis.fairness import gap_statistics, jain_index, worst_case_lag
from ..analysis.metrics import summarize_delays
from ..analysis.stats import summarize_replications
from ..core.packet import Packet
from ..core.wss import (
    FoldedWSS,
    MaterializedWSS,
    WSSCursor,
    value_count,
    wss_sequence,
)
from ..harness import ExperimentSpec, RunContext, run_spec
from ..schedulers.registry import create_scheduler, resolve_scheduler
from .scenarios import (
    BOTTLENECK_BPS,
    MTU,
    WEIGHT_UNIT_BPS,
    dumbbell_network,
    single_bottleneck_network,
)
from .workloads import (
    build_loaded_scheduler,
    flight_profile,
    geometric_weights,
    ops_profile,
    service_sequence,
)

__all__ = [
    "SPECS",
    "e1_wss_properties",
    "e2_smoothness",
    "e3_end_to_end_delay",
    "e4_delay_vs_n",
    "e5_scheduling_cost",
    "e6_fairness",
    "e7_guarantees",
    "e8_g3_comparison",
    "e9_space_time",
    "e10_bound_validation",
    "e11_variable_packet_sizes",
    "e12_admission_quotes",
    "e13_churn_resilience",
    "e14_overload_control",
    "e15_shard_scaling",
    "e16_bound_tightness",
]


def _metrics(eid: str, overrides: Dict, *, quiet: bool, jobs: int, seed: int) -> Dict:
    """Run one spec with legacy-style kwargs; return the summary metrics."""
    clean = {k: v for k, v in overrides.items() if v is not None}
    return run_spec(
        SPECS[eid], seed=seed, jobs=jobs, quiet=quiet, overrides=clean
    ).metrics


# ---------------------------------------------------------------------------
# E1 — WSS definition table
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class E1Params:
    max_order: int = 10


def _e1_point(order: int) -> Dict:
    seq = wss_sequence(order)
    counts_ok = all(
        seq.count(v) == value_count(order, v)
        for v in range(1, order + 1)
    )
    spacing_ok = True
    for v in range(1, order + 1):
        positions = [i for i, x in enumerate(seq) if x == v]
        gaps = {b - a for a, b in zip(positions, positions[1:])}
        if gaps - {1 << v}:
            spacing_ok = False
    return {
        "order": order,
        "length": len(seq),
        "ones": seq.count(1),
        "counts_ok": counts_ok,
        "spacing_ok": spacing_ok,
    }


def _e1_body(p: E1Params, ctx: RunContext) -> Dict:
    """WSS examples and the term-frequency/spacing properties (E1)."""
    records = ctx.sweep(
        _e1_point, [(order,) for order in range(1, p.max_order + 1)]
    )
    ctx.add_points(records)
    ctx.table(
        ["order k", "len=2^k-1", "#value-1", "counts 2^(k-v)", "spacing 2^v"],
        records=records,
        columns=["order", "length", "ones", "counts_ok", "spacing_ok"],
        title="E1: Weight Spread Sequence properties "
              f"(WSS^4 = {wss_sequence(4)})",
    )
    return {
        "orders": p.max_order,
        "all_counts_ok": all(r["counts_ok"] for r in records),
        "all_spacing_ok": all(r["spacing_ok"] for r in records),
        "wss4": wss_sequence(4),
    }


def e1_wss_properties(max_order: int = None, *, quiet: bool = False,
                      jobs: int = 1) -> Dict:
    """WSS examples and the term-frequency/spacing properties (E1)."""
    return _metrics("e1", {"max_order": max_order},
                    quiet=quiet, jobs=jobs, seed=1)


# ---------------------------------------------------------------------------
# E2 — service smoothness
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class E2Params:
    schedulers: Tuple[str, ...] = ("srr", "wrr", "drr", "rr")
    n_flows: int = 12
    rounds: int = 8


def _e2_point(
    name: str,
    weights: Dict[int, int],
    rounds: int,
    heavy: int,
    light: int,
) -> Dict:
    # DRR's quantum is set to the packet size: in the fixed-size model
    # one visit then serves exactly `weight` packets, the honest
    # comparison (a 1500 B quantum would hide the burst inside gap=1
    # statistics while multiplying its size).
    kwargs = {"quantum": MTU} if name == "drr" else {}
    sched = build_loaded_scheduler(
        name,
        weights,
        packets_per_flow=rounds * max(weights.values()) + 8,
        **kwargs,
    )
    seq = service_sequence(sched, rounds * sum(weights.values()))
    flows = []
    for label, fid in (("heavy", heavy), ("light", light)):
        stats = gap_statistics(seq, fid)
        flows.append({
            "label": label,
            "flow": f"{label} (w={weights[fid]})",
            "weight": weights[fid],
            "services": stats.services,
            "min_gap": stats.min_gap,
            "max_gap": stats.max_gap,
            "mean_gap": round(stats.mean_gap, 2),
            "cv": round(stats.cv, 3),
        })
    return {"scheduler": name, "flows": flows}


def _e2_body(p: E2Params, ctx: RunContext) -> Dict:
    """Inter-service-distance statistics per scheduler (E2, claim C3).

    All flows stay backlogged; the flow with the largest weight is the
    tagged flow whose gap statistics are reported (it suffers the most
    from bursty service).
    """
    weights = geometric_weights(p.n_flows, max_exponent=4)
    total_weight = sum(weights.values())
    heavy = max(weights, key=lambda f: weights[f])
    light = min(weights, key=lambda f: weights[f])
    records = ctx.sweep(
        _e2_point,
        [(name, weights, p.rounds, heavy, light) for name in p.schedulers],
    )
    rows = [
        {"scheduler": r["scheduler"], **flow}
        for r in records for flow in r["flows"]
    ]
    ctx.add_points(rows)
    ctx.table(
        ["scheduler", "flow", "services", "min gap", "max gap",
         "mean gap", "gap CV"],
        records=rows,
        columns=["scheduler", "flow", "services", "min_gap", "max_gap",
                 "mean_gap", "cv"],
        title=(
            f"E2: inter-service distance, {p.n_flows} backlogged flows "
            f"(total weight {total_weight}); lower CV and max gap = smoother"
        ),
    )
    return {
        r["scheduler"]: {
            flow["label"]: {
                "max_gap": flow["max_gap"],
                "cv": flow["cv"],
                "services": flow["services"],
            }
            for flow in r["flows"]
        }
        for r in records
    }


def e2_smoothness(
    schedulers: Sequence[str] = None,
    *,
    n_flows: int = None,
    rounds: int = None,
    quiet: bool = False,
    jobs: int = 1,
) -> Dict:
    """Inter-service-distance statistics per scheduler (E2, claim C3)."""
    return _metrics(
        "e2",
        {"schedulers": schedulers, "n_flows": n_flows, "rounds": rounds},
        quiet=quiet, jobs=jobs, seed=1,
    )


# ---------------------------------------------------------------------------
# E3 — end-to-end delay in the dumbbell
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class E3Params:
    schedulers: Tuple[str, ...] = ("srr", "drr", "wrr", "wfq")
    duration: float = 8.0
    n_background: int = 500
    repeats: int = 1


def _e3_point(
    name: str, rep: int, duration: float, n_background: int, base_seed: int
) -> Dict:
    net = dumbbell_network(
        name, n_background=n_background, seed=base_seed + 10 * rep
    )
    net.run(until=duration)
    flows = {}
    for fid in ("f1", "f2"):
        stats = summarize_delays(net.sinks.delays(fid))
        flows[fid] = {
            "mean_ms": stats.mean * 1e3,
            "p99_ms": stats.p99 * 1e3,
            "max_ms": stats.maximum * 1e3,
            "count": stats.count,
        }
    return {
        "scheduler": name,
        "rep": rep,
        "seed": base_seed + 10 * rep,
        "flows": flows,
        "engine": net.engine_stats(),
    }


def _e3_body(p: E3Params, ctx: RunContext) -> Dict:
    """The Fig. 8 dumbbell: delays of f1 (32 kb/s) and f2 (1024 kb/s) (E3).

    ``repeats > 1`` reruns each scheduler over that many best-effort
    sample paths (seeds ``seed, seed+10, ...``) and reports the mean
    with a 95% confidence half-width on the max-delay column.
    """
    tasks = [
        (name, rep, p.duration, p.n_background, ctx.seed)
        for name in p.schedulers for rep in range(p.repeats)
    ]
    records = ctx.sweep(_e3_point, tasks)
    ctx.add_points(records)
    for record in records:
        ctx.record_engine(record["engine"])
    results: Dict[str, Dict] = {}
    rows = []
    for name in p.schedulers:
        reps = [r for r in records if r["scheduler"] == name]
        per = {}
        for fid in ("f1", "f2"):
            maxes = [r["flows"][fid]["max_ms"] for r in reps]
            max_summary = summarize_replications(maxes)
            per[fid] = {
                "mean_ms": sum(r["flows"][fid]["mean_ms"] for r in reps)
                / p.repeats,
                "p99_ms": sum(r["flows"][fid]["p99_ms"] for r in reps)
                / p.repeats,
                "max_ms": max_summary.mean,
                "max_ci95_ms": max_summary.ci95,
                "packets": int(
                    sum(r["flows"][fid]["count"] for r in reps) / p.repeats
                ),
            }
            rows.append({
                "scheduler": name, "flow": fid,
                "packets": per[fid]["packets"],
                "mean_ms": round(per[fid]["mean_ms"], 2),
                "p99_ms": round(per[fid]["p99_ms"], 2),
                "max_ms": round(per[fid]["max_ms"], 2),
                "ci95_ms": round(max_summary.ci95, 2),
            })
        results[name] = per
    ctx.table(
        ["scheduler", "flow", "packets", "mean ms", "p99 ms", "max ms",
         "±95% CI"],
        records=rows,
        columns=["scheduler", "flow", "packets", "mean_ms", "p99_ms",
                 "max_ms", "ci95_ms"],
        title=(
            f"E3: end-to-end delay, dumbbell with {p.n_background} "
            f"background flows + Pareto best-effort, {p.duration:.0f}s "
            f"simulated, {p.repeats} replication(s)"
        ),
    )
    return results


def e3_end_to_end_delay(
    schedulers: Sequence[str] = None,
    *,
    duration: float = None,
    n_background: int = None,
    repeats: int = None,
    base_seed: int = 1,
    quiet: bool = False,
    jobs: int = 1,
) -> Dict:
    """The Fig. 8 dumbbell delays (E3); see the spec body for details."""
    return _metrics(
        "e3",
        {"schedulers": schedulers, "duration": duration,
         "n_background": n_background, "repeats": repeats},
        quiet=quiet, jobs=jobs, seed=base_seed,
    )


# ---------------------------------------------------------------------------
# E4 — delay vs number of flows
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class E4Params:
    schedulers: Tuple[str, ...] = ("srr", "drr", "wfq")
    n_values: Tuple[int, ...] = (16, 64, 128, 256, 512)
    duration: float = 4.0
    tagged_rate_bps: int = 32_000


def _e4_point(name: str, n: int, duration: float, tagged_rate: int) -> Dict:
    net = single_bottleneck_network(name, n, tagged_rate_bps=tagged_rate)
    net.run(until=duration)
    delays = net.sinks.delays("tag")
    worst = max(delays) * 1e3 if delays else float("nan")
    return {
        "scheduler": name,
        "n": n,
        "max_ms": worst,
        "engine": net.engine_stats(),
    }


def _e4_body(p: E4Params, ctx: RunContext) -> Dict:
    """Tagged-flow max delay as N grows (E4, Theorem 1's linear-in-N).

    Includes the SRR analytic bound column (Lemma 2) for comparison.
    """
    # Fixed path components of single_bottleneck_network: access
    # serialisation + access propagation + bottleneck serialisation +
    # bottleneck propagation. The scheduler bound sits on top of these.
    base_delay = (
        MTU * 8.0 / (10 * BOTTLENECK_BPS)
        + 0.0005
        + MTU * 8.0 / BOTTLENECK_BPS
        + 0.001
    )
    tasks = [
        (name, n, p.duration, p.tagged_rate_bps)
        for n in p.n_values for name in p.schedulers
    ]
    records = ctx.sweep(_e4_point, tasks)
    ctx.add_points(records)
    for record in records:
        ctx.record_engine(record["engine"])
    results: Dict[str, Dict[int, float]] = {
        name: {} for name in p.schedulers
    }
    results["bound_ms"] = {}
    row_records = []
    for n in p.n_values:
        bound = base_delay + srr_delay_bound(
            weight=max(1, round(p.tagged_rate_bps / WEIGHT_UNIT_BPS)),
            n_flows=n + 1,
            packet_size=MTU,
            link_rate_bps=BOTTLENECK_BPS,
            weight_unit_bps=WEIGHT_UNIT_BPS,
        )
        results["bound_ms"][n] = bound * 1e3
        row = {"n": n, "bound_ms": round(bound * 1e3, 2)}
        for record in records:
            if record["n"] == n:
                name = record["scheduler"]
                results[name][n] = record["max_ms"]
                row[name] = round(record["max_ms"], 2)
        row_records.append(row)
    ctx.table(
        ["N", "SRR bound ms"] + [f"{name} max ms" for name in p.schedulers],
        records=row_records,
        columns=["n", "bound_ms"] + list(p.schedulers),
        title=(
            "E4: worst end-to-end delay of a 32 kb/s flow vs number of "
            "competing flows (saturated 10 Mb/s bottleneck)"
        ),
    )
    return results


def e4_delay_vs_n(
    schedulers: Sequence[str] = None,
    n_values: Sequence[int] = None,
    *,
    duration: float = None,
    quiet: bool = False,
    jobs: int = 1,
) -> Dict:
    """Tagged-flow max delay as N grows (E4, Theorem 1's linear-in-N)."""
    return _metrics(
        "e4",
        {"schedulers": schedulers, "n_values": n_values,
         "duration": duration},
        quiet=quiet, jobs=jobs, seed=1,
    )


# ---------------------------------------------------------------------------
# E5 — scheduling cost vs N (the O(1) claim)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class E5Params:
    schedulers: Tuple[str, ...] = (
        "srr", "drr", "wrr", "iwrr", "strr", "wfq", "scfq", "stfq",
        "wf2q+", "vc", "g3", "rrr",
    )
    n_values: Tuple[int, ...] = (16, 64, 256, 1024, 4096)
    measure: int = 3000
    time_it: bool = False
    #: "object" profiles dequeue() on the object schedulers; "fast"
    #: swaps in the flat twins where they exist (srr -> srr:fast) and
    #: profiles the scalar push/pull datapath through an exhaustive
    #: flight recorder -- the fast-core O(1) evidence table.
    core: str = "object"


def _e5_kwargs(name: str, n: int) -> Dict:
    if name in ("g3", "rrr"):
        return {"capacity": 1 << (n.bit_length() + 1)}
    return {}


def _time_per_packet(name: str, n_flows: int, **kwargs) -> float:
    sched = build_loaded_scheduler(
        name, {i: 1 for i in range(n_flows)}, packets_per_flow=3, **kwargs
    )
    count = min(2000, 3 * n_flows)
    start = time.perf_counter()
    for _ in range(count):
        sched.dequeue()
    return (time.perf_counter() - start) / count


def _e5_point(
    name: str, n: int, measure: int, time_it: bool, core: str = "object"
) -> Dict:
    from ..obs.metrics import MetricsRegistry

    resolved = resolve_scheduler(name, core)
    kwargs = _e5_kwargs(name, n)
    # A per-point registry: the dequeue_ops / wss_terms histograms travel
    # back with the record and merge deterministically in the parent (the
    # point may run in a pool worker).
    registry = MetricsRegistry()
    if resolved != name:
        # Flat twin: the scalar datapath, exhaustively flight-recorded
        # (and the FlowLanes data-plane counters exported alongside).
        profile = flight_profile(resolved, n, measure=measure,
                                 registry=registry, label=resolved, **kwargs)
    else:
        profile = ops_profile(name, n, measure=measure, registry=registry,
                              **kwargs)
    record = {
        "scheduler": resolved,
        "n": n,
        "mean_ops": round(profile["mean_ops"], 2),
        "p50_ops": int(profile["p50_ops"]),
        "p99_ops": int(profile["p99_ops"]),
        "worst_ops": int(profile["worst_ops"]),
        "total_ops": int(profile["total_ops"]),
        "served": int(profile["served"]),
        "metrics_snapshot": registry.snapshot(),
    }
    if "flight" in profile:
        record["flight"] = profile["flight"]
    if "worst_scan_terms" in profile:
        record["p99_scan_terms"] = int(profile["p99_scan_terms"])
        record["worst_scan_terms"] = int(profile["worst_scan_terms"])
    if time_it:
        record["us_per_packet"] = round(
            _time_per_packet(resolved, n, **kwargs) * 1e6, 3
        )
    return record


def _e5_body(p: E5Params, ctx: RunContext) -> Dict:
    """Per-dequeue scheduling work distribution vs N (E5, the O(1) claim).

    Every decision is profiled individually, so the table reports the
    p50/p99/max work per dequeue — flat for SRR across N, growing for
    the timestamp schedulers — not just totals. The histograms land in
    the run's ``obs.metrics`` block (``python -m repro.obs report``).
    """
    tasks = [
        (name, n, p.measure, p.time_it, p.core)
        for name in p.schedulers for n in p.n_values
    ]
    records = ctx.sweep(_e5_point, tasks)
    for record in records:
        ctx.record_metrics(record.pop("metrics_snapshot"))
    flights = [r.pop("flight") for r in records if "flight" in r]
    if flights:
        # Fast-core points drain their recorders into one obs block so
        # the artifact carries the recording totals next to the merged
        # dequeue_ops/wss_terms histograms.
        ctx.record_flight({
            "schema": flights[0]["schema"],
            "sample_shift": flights[0]["sample_shift"],
            "points": len(flights),
            "ops_seen": sum(f["ops_seen"] for f in flights),
            "recorded": sum(f["recorded"] for f in flights),
            "dropped": sum(f["dropped"] for f in flights),
        })
    ctx.add_points(records)
    ctx.record_engine({
        "ops": sum(r["total_ops"] for r in records),
        "packets_served": sum(r["served"] for r in records),
    })
    headers = ["scheduler", "N", "ops/packet", "p50", "p99", "worst ops"]
    columns = ["scheduler", "n", "mean_ops", "p50_ops", "p99_ops",
               "worst_ops"]
    if p.time_it:
        headers.append("us/packet")
        columns.append("us_per_packet")
    ctx.table(
        headers,
        records=records,
        columns=columns,
        title="E5: per-dequeue scheduling cost vs number of flows "
              "(flat p99 = O(1); growing = O(log N) or worse)",
    )
    resolved = [resolve_scheduler(name, p.core) for name in p.schedulers]
    results: Dict[str, Dict[int, float]] = {name: {} for name in resolved}
    for record in records:
        results[record["scheduler"]][record["n"]] = record["mean_ops"]
    return results


def e5_scheduling_cost(
    schedulers: Sequence[str] = None,
    n_values: Sequence[int] = None,
    *,
    measure: int = None,
    time_it: bool = None,
    quiet: bool = False,
    jobs: int = 1,
) -> Dict:
    """Elementary operations (and optionally wall time) per packet vs N (E5)."""
    return _metrics(
        "e5",
        {"schedulers": schedulers, "n_values": n_values,
         "measure": measure, "time_it": time_it},
        quiet=quiet, jobs=jobs, seed=1,
    )


# ---------------------------------------------------------------------------
# E6 — fairness table
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class E6Params:
    schedulers: Tuple[str, ...] = ("srr", "wrr", "drr", "wfq", "scfq", "rr")
    n_flows: int = 16
    rounds: int = 12


def _e6_point(name: str, weights: Dict[int, int], rounds: int) -> Dict:
    kwargs = {"quantum": MTU} if name == "drr" else {}
    total = sum(weights.values())
    sched = build_loaded_scheduler(
        name,
        weights,
        packets_per_flow=rounds * max(weights.values()) + 8,
        **kwargs,
    )
    seq = service_sequence(sched, rounds * total)
    counts = {f: seq.count(f) for f in weights}
    shares = [counts[f] / weights[f] for f in weights]
    jain = jain_index(shares)
    # Synthetic trace: slot index as time (fixed L makes this exact).
    trace = [(float(i), fid, MTU) for i, fid in enumerate(seq)]
    lag = worst_case_lag(trace, weights)
    worst_lag_pkts = max(lag.values()) / MTU
    return {
        "scheduler": name,
        "jain": round(jain, 4),
        "worst_lag_packets": round(worst_lag_pkts, 2),
        "jain_raw": jain,
        "worst_lag_raw": worst_lag_pkts,
    }


def _e6_body(p: E6Params, ctx: RunContext) -> Dict:
    """Throughput Jain index, worst normalised lag and SFI-style gap
    spread in a saturated single node (E6, claim C2)."""
    weights = geometric_weights(p.n_flows, max_exponent=3)
    records = ctx.sweep(
        _e6_point, [(name, weights, p.rounds) for name in p.schedulers]
    )
    ctx.add_points(records)
    ctx.table(
        ["scheduler", "Jain (weighted)", "worst lag (packets)"],
        records=records,
        columns=["scheduler", "jain", "worst_lag_packets"],
        title=(
            f"E6: weighted fairness over {p.rounds} rounds, {p.n_flows} "
            "backlogged flows (Jain of service/weight; fluid-lag in packets)"
        ),
    )
    return {
        r["scheduler"]: {
            "jain": r["jain_raw"],
            "worst_lag_packets": r["worst_lag_raw"],
        }
        for r in records
    }


def e6_fairness(
    schedulers: Sequence[str] = None,
    *,
    n_flows: int = None,
    rounds: int = None,
    quiet: bool = False,
    jobs: int = 1,
) -> Dict:
    """Weighted fairness indices in a saturated single node (E6)."""
    return _metrics(
        "e6",
        {"schedulers": schedulers, "n_flows": n_flows, "rounds": rounds},
        quiet=quiet, jobs=jobs, seed=1,
    )


# ---------------------------------------------------------------------------
# E7 — throughput guarantees under overload
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class E7Params:
    schedulers: Tuple[str, ...] = ("srr", "drr", "wfq", "fifo")
    duration: float = 6.0
    n_background: int = 100


def _e7_point(name: str, duration: float, n_background: int, seed: int) -> Dict:
    # Heavy overload: the two best-effort sources alone offer ~1.6x
    # the bottleneck rate, so without isolation the reserved flows
    # queue behind a permanently growing best-effort backlog.
    net = dumbbell_network(
        name,
        n_background=n_background,
        best_effort_peak_bps=16_000_000,
        be_max_queue=2000,
        seed=seed,
    )
    net.run(until=duration)
    warmup = min(1.0, duration / 4)
    flows = {}
    for fid, reserved in (("f1", 32_000), ("f2", 1_024_000)):
        rec = net.sinks.flow(fid)
        goodput = rec.throughput_bps(warmup, duration)
        delays = net.sinks.delays(fid)
        max_ms = max(delays) * 1e3 if delays else float("nan")
        flows[fid] = {
            "goodput_bps": goodput,
            "reserved_bps": reserved,
            "max_ms": max_ms,
        }
    return {"scheduler": name, "flows": flows, "engine": net.engine_stats()}


def _e7_body(p: E7Params, ctx: RunContext) -> Dict:
    """Reserved flows' goodput vs reservation with best-effort overload (E7).

    FIFO is included to show the failure mode the QoS schedulers prevent.
    """
    records = ctx.sweep(
        _e7_point,
        [(name, p.duration, p.n_background, ctx.seed)
         for name in p.schedulers],
    )
    ctx.add_points(records)
    for record in records:
        ctx.record_engine(record["engine"])
    rows = []
    for record in records:
        for fid, flow in record["flows"].items():
            rows.append({
                "scheduler": record["scheduler"],
                "flow": fid,
                "reserved_kbps": flow["reserved_bps"] / 1e3,
                "goodput_kbps": round(flow["goodput_bps"] / 1e3, 1),
                "ratio": round(flow["goodput_bps"] / flow["reserved_bps"], 3),
                "max_ms": round(flow["max_ms"], 1),
            })
    ctx.table(
        ["scheduler", "flow", "reserved kb/s", "goodput kb/s", "ratio",
         "max delay ms"],
        records=rows,
        columns=["scheduler", "flow", "reserved_kbps", "goodput_kbps",
                 "ratio", "max_ms"],
        title=(
            f"E7: reserved-flow goodput under best-effort overload, "
            f"{p.n_background} background flows, {p.duration:.0f}s"
        ),
    )
    return {r["scheduler"]: r["flows"] for r in records}


def e7_guarantees(
    schedulers: Sequence[str] = None,
    *,
    duration: float = None,
    n_background: int = None,
    quiet: bool = False,
    jobs: int = 1,
) -> Dict:
    """Reserved flows' goodput under best-effort overload (E7)."""
    return _metrics(
        "e7",
        {"schedulers": schedulers, "duration": duration,
         "n_background": n_background},
        quiet=quiet, jobs=jobs, seed=1,
    )


# ---------------------------------------------------------------------------
# E8 — G-3 vs SRR vs RRR (the supplied text's Fig. 9)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class E8Params:
    schedulers: Tuple[str, ...] = ("g3", "srr", "rrr")
    duration: float = 8.0
    n_background: int = 500


def _e8_point(name: str, duration: float, n_background: int, seed: int) -> Dict:
    net = dumbbell_network(name, n_background=n_background, seed=seed)
    net.run(until=duration)
    flows = {}
    for fid in ("f1", "f2"):
        stats = summarize_delays(net.sinks.delays(fid))
        flows[fid] = {
            "max_ms": stats.maximum * 1e3,
            "mean_ms": stats.mean * 1e3,
        }
    return {"scheduler": name, "flows": flows, "engine": net.engine_stats()}


def _e8_body(p: E8Params, ctx: RunContext) -> Dict:
    """Extension experiment: the follow-on paper's Fig. 9 comparison (E8).

    Analytic G-3 end-to-end bounds for the two bottleneck hops plus 20 ms
    propagation: ~122 ms for f1, ~25.8 ms for f2 — printed alongside.
    """
    capacity_units = BOTTLENECK_BPS // WEIGHT_UNIT_BPS
    bounds = {
        "f1": end_to_end_bound(
            0, 32_000,
            [g3_delay_bound(2, capacity_units, MTU, BOTTLENECK_BPS)] * 2,
        ) + 0.020 + 2 * 0.001,
        "f2": end_to_end_bound(
            0, 1_024_000,
            [g3_delay_bound(64, capacity_units, MTU, BOTTLENECK_BPS)] * 2,
        ) + 0.020 + 2 * 0.001,
    }
    records = ctx.sweep(
        _e8_point,
        [(name, p.duration, p.n_background, ctx.seed)
         for name in p.schedulers],
    )
    ctx.add_points(records)
    for record in records:
        ctx.record_engine(record["engine"])
    rows = []
    for record in records:
        for fid, flow in record["flows"].items():
            rows.append({
                "scheduler": record["scheduler"],
                "flow": fid,
                "mean_ms": round(flow["mean_ms"], 2),
                "max_ms": round(flow["max_ms"], 2),
                "bound_ms": (
                    round(bounds[fid] * 1e3, 1)
                    if record["scheduler"] == "g3" else "-"
                ),
            })
    ctx.table(
        ["scheduler", "flow", "mean ms", "max ms", "G-3 bound ms"],
        records=rows,
        columns=["scheduler", "flow", "mean_ms", "max_ms", "bound_ms"],
        title=(
            "E8 [ext]: Fig. 9 of the follow-on text — G-3 vs SRR vs RRR "
            f"end-to-end delays ({p.n_background} bg flows, "
            f"{p.duration:.0f}s)"
        ),
    )
    results: Dict[str, Dict] = {
        "bounds": {k: v * 1e3 for k, v in bounds.items()}
    }
    for record in records:
        results[record["scheduler"]] = record["flows"]
    return results


def e8_g3_comparison(
    schedulers: Sequence[str] = None,
    *,
    duration: float = None,
    n_background: int = None,
    quiet: bool = False,
    jobs: int = 1,
) -> Dict:
    """G-3 vs SRR vs RRR end-to-end delays (E8, follow-on Fig. 9)."""
    return _metrics(
        "e8",
        {"schedulers": schedulers, "duration": duration,
         "n_background": n_background},
        quiet=quiet, jobs=jobs, seed=1,
    )


# ---------------------------------------------------------------------------
# E9 — space-time tradeoffs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class E9Params:
    wss_order: int = 16
    stored_order: int = 9
    lookups: int = 20000


def _e9_tarray_point(expanded: Optional[int]) -> Dict:
    from ..extensions.g3 import G3Scheduler

    sched = G3Scheduler(capacity=255, expanded_levels=expanded)
    for i in range(64):
        sched.add_flow(i, 1)
        sched.enqueue(Packet(i, MTU))
    for i in range(64):
        sched.enqueue(Packet(i, MTU, seq=1))
    storage = sum(t.tarray.storage_entries for t in sched.trees.values())
    count = 128
    start = time.perf_counter()
    for _ in range(count):
        sched.dequeue()
    per_packet = (time.perf_counter() - start) / count
    label = "full" if expanded is None else f"top {expanded} levels"
    return {
        "expansion": label,
        "storage": storage,
        "us": round(per_packet * 1e6, 2),
        "us_raw": per_packet * 1e6,
    }


def _e9_body(p: E9Params, ctx: RunContext) -> Dict:
    """WSS storage strategies and TArray expansion ablation (E9).

    Compares stored entries and per-term lookup time for: the paper's
    materialised array, the fold-onto-smaller-table tradeoff, and the
    closed form; plus G-3 TArray partial expansion (space vs extra walk).
    """
    # --- WSS strategies (shared cursor state: timed inline) ---------------
    cursor = WSSCursor(p.wss_order)
    materialized = MaterializedWSS(p.wss_order)
    folded = FoldedWSS(p.wss_order, p.stored_order)
    length = (1 << p.wss_order) - 1

    def time_lookups(fn) -> float:
        start = time.perf_counter()
        for i in range(1, p.lookups + 1):
            fn(1 + (i * 2654435761) % length)
        return (time.perf_counter() - start) / p.lookups

    def cursor_term(_pos: int) -> int:
        return cursor.advance()

    wss_records = [
        {"strategy": "closed form (v2+1)", "entries": 0,
         "ns": round(time_lookups(cursor_term) * 1e9, 1)},
        {"strategy": "materialised 2^k",
         "entries": materialized.storage_entries,
         "ns": round(time_lookups(materialized.term) * 1e9, 1)},
        {"strategy": f"folded onto 2^{p.stored_order}",
         "entries": folded.storage_entries,
         "ns": round(time_lookups(folded.term) * 1e9, 1)},
    ]
    # --- TArray expansion ablation (independent points: swept) -----------
    tarray_records = ctx.sweep(
        _e9_tarray_point, [(expanded,) for expanded in (None, 6, 3, 0)]
    )
    ctx.add_points([{"part": "wss", **r} for r in wss_records])
    ctx.add_points([{"part": "tarray", **r} for r in tarray_records])
    ctx.table(
        ["WSS strategy", "stored entries", "ns/term"],
        records=wss_records,
        columns=["strategy", "entries", "ns"],
        title=f"E9a: WSS^{p.wss_order} storage strategies",
    )
    ctx.table(
        ["TArray expansion", "stored entries", "us/packet"],
        records=tarray_records,
        columns=["expansion", "storage", "us"],
        title="E9b: G-3 TArray partial expansion (capacity 255, 64 flows)",
    )
    return {
        "wss": {
            r["strategy"]: {"entries": r["entries"], "ns": r["ns"]}
            for r in wss_records
        },
        "tarray": {
            r["expansion"]: {"storage": r["storage"], "us": r["us_raw"]}
            for r in tarray_records
        },
    }


def e9_space_time(
    *,
    wss_order: int = None,
    stored_order: int = None,
    lookups: int = None,
    quiet: bool = False,
    jobs: int = 1,
) -> Dict:
    """WSS storage strategies and TArray expansion ablation (E9)."""
    return _metrics(
        "e9",
        {"wss_order": wss_order, "stored_order": stored_order,
         "lookups": lookups},
        quiet=quiet, jobs=jobs, seed=1,
    )


# ---------------------------------------------------------------------------
# E10 — measured delay vs analytic bound
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class E10Params:
    n_flows: int = 40
    rounds: int = 30
    weight_cases: Tuple[int, ...] = (1, 2, 4, 7, 12, 32)


def _e10_point(name: str, weight: int, n_flows: int, rounds: int) -> Dict:
    from ..analysis.service_curves import max_ideal_lag

    link = BOTTLENECK_BPS
    packet_time = MTU * 8.0 / link
    capacity_units = 1 << (n_flows + 40).bit_length()
    kwargs = {}
    # The slotted schedulers are validated at full reservation so
    # every slot is busy (idle-slot skipping would otherwise let
    # the work-conserving emulation finish early and trivialise
    # the bound check).
    if name in ("g3", "rrr"):
        kwargs["capacity"] = capacity_units
        competitors = capacity_units - weight
    else:
        competitors = n_flows
    # Register the tagged flow AFTER half the competitors so it
    # does not land in the most favourable slot/scan position.
    weights: Dict[Hashable, float] = {}
    weights.update({f"bg{i}": 1 for i in range(competitors // 2)})
    weights["tag"] = weight
    weights.update(
        {f"bg{i}": 1 for i in range(competitors // 2, competitors)}
    )
    sched = create_scheduler(name, **kwargs)
    for fid, w in weights.items():
        sched.add_flow(fid, w)
    # Keep every flow backlogged for the whole measurement with
    # per-flow packet counts proportional to its weight.
    for fid, w in weights.items():
        for seq_no in range(rounds * int(w) + 8):
            sched.enqueue(Packet(fid, MTU, seq=seq_no))
    total = sum(int(w) for w in weights.values())
    finish, slot = [], 0
    budget = rounds * total
    while len(finish) < rounds * weight and slot < budget:
        packet = sched.dequeue()
        if packet is None:
            break
        slot += 1
        if packet.flow_id == "tag":
            finish.append(slot * packet_time)
    if name == "srr":
        rate = weight / total * link
        bound = srr_delay_bound(weight, n_flows + 1, MTU, link, link / total)
    elif name == "g3":
        rate = weight / capacity_units * link
        bound = g3_delay_bound(weight, capacity_units, MTU, link)
    else:
        rate = weight / capacity_units * link
        bound = rrr_delay_bound(weight, capacity_units, MTU, link)
    # max_ideal_lag raises on an empty curve (a starved flow must not
    # read as "bound certified"); report it as an explicit failure here.
    measured = max_ideal_lag(finish, rate, MTU) if finish else math.inf
    return {
        "scheduler": name,
        "weight": weight,
        "measured": measured,
        "bound": bound,
        "measured_ms": round(measured * 1e3, 3),
        "bound_ms": round(bound * 1e3, 3),
        "ok": measured <= bound + 1e-9,
    }


def _e10_body(p: E10Params, ctx: RunContext) -> Dict:
    """Measured worst lag vs analytic bound for SRR, G-3 and RRR (E10).

    Single node in slot time: every dequeue is one ``L/C`` transmission.
    A tagged flow (several weights) stays backlogged among ``n_flows``
    unit-weight competitors; its per-packet finish times are compared to
    the ideal ``i * L / r`` service (Definition 1) and the worst lag must
    stay below the scheduler's bound.
    """
    tasks = [
        (name, weight, p.n_flows, p.rounds)
        for weight in p.weight_cases for name in ("srr", "g3", "rrr")
    ]
    records = ctx.sweep(_e10_point, tasks)
    ctx.add_points(records)
    ctx.table(
        ["scheduler", "weight", "measured ms", "bound ms", "within bound"],
        records=records,
        columns=["scheduler", "weight", "measured_ms", "bound_ms", "ok"],
        title=(
            f"E10: measured worst lag vs analytic bound "
            f"({p.n_flows} unit-weight competitors, slot-time model)"
        ),
    )
    results: Dict[str, List] = {"srr": [], "g3": [], "rrr": []}
    for record in records:
        results[record["scheduler"]].append({
            "weight": record["weight"],
            "measured": record["measured"],
            "bound": record["bound"],
            "ok": record["ok"],
        })
    return results


def e10_bound_validation(
    *,
    n_flows: int = None,
    rounds: int = None,
    quiet: bool = False,
    jobs: int = 1,
) -> Dict:
    """Measured worst lag vs analytic bound for SRR, G-3 and RRR (E10)."""
    return _metrics(
        "e10",
        {"n_flows": n_flows, "rounds": rounds},
        quiet=quiet, jobs=jobs, seed=1,
    )


# ---------------------------------------------------------------------------
# E11 — variable packet sizes (the "multi-service" in the title)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class E11Params:
    rounds: int = 300
    small: int = 64
    large: int = 1500


def _e11_point(
    label: str, name: str, kwargs: Dict, rounds: int, small: int, large: int
) -> Dict:
    sched = create_scheduler(name, **kwargs)
    sched.add_flow("small", 1)
    sched.add_flow("large", 1)
    # Deep backlogs so NEITHER flow drains inside the measurement —
    # the byte split is only meaningful while both are backlogged.
    for i in range(rounds * (large // small + 2)):
        sched.enqueue(Packet("small", small, seq=i))
    for i in range(rounds * 3):
        sched.enqueue(Packet("large", large, seq=i))
    sent = {"small": 0, "large": 0}
    budget_bytes = rounds * 2 * large
    served = 0
    while served < budget_bytes:
        packet = sched.dequeue()
        if packet is None:
            break
        sent[packet.flow_id] += packet.size
        served += packet.size
    ratio = sent["large"] / max(sent["small"], 1)
    return {
        "scheduler": label,
        "small_bytes": sent["small"],
        "large_bytes": sent["large"],
        "ratio": round(ratio, 3),
        "ratio_raw": ratio,
    }


def _e11_body(p: E11Params, ctx: RunContext) -> Dict:
    """Byte fairness under bimodal packet sizes (E11).

    Two equal-weight flows, one sending ``small``-byte packets and one
    ``large``-byte packets, saturate a scheduler. The paper's base model
    fixes the packet size; its title targets *multi-service* networks, so
    the variable-size behaviour matters:

    * SRR in ``packet`` mode is packet-fair, hence byte-UNfair (the
      large-packet flow wins by ``large/small``);
    * SRR in ``deficit`` mode (the variable-size variant) restores byte
      fairness while keeping the WSS spreading;
    * DRR and the timestamp schedulers are byte-fair by construction.
    """
    cases = [
        ("srr packet", "srr", {"mode": "packet"}),
        ("srr deficit", "srr", {"mode": "deficit", "quantum": p.large}),
        ("drr", "drr", {"quantum": p.large}),
        ("wfq", "wfq", {}),
    ]
    records = ctx.sweep(
        _e11_point,
        [(label, name, kwargs, p.rounds, p.small, p.large)
         for label, name, kwargs in cases],
    )
    ctx.add_points(records)
    ctx.table(
        ["scheduler", "small-flow bytes", "large-flow bytes",
         "byte ratio (1.0 = fair)"],
        records=records,
        columns=["scheduler", "small_bytes", "large_bytes", "ratio"],
        title=(
            f"E11: byte fairness, equal weights, {p.small} B vs {p.large} B "
            "packets (saturated)"
        ),
    )
    return {r["scheduler"]: r["ratio_raw"] for r in records}


def e11_variable_packet_sizes(
    *,
    rounds: int = None,
    small: int = None,
    large: int = None,
    quiet: bool = False,
    jobs: int = 1,
) -> Dict:
    """Byte fairness under bimodal packet sizes (E11)."""
    return _metrics(
        "e11",
        {"rounds": rounds, "small": small, "large": large},
        quiet=quiet, jobs=jobs, seed=1,
    )


# ---------------------------------------------------------------------------
# E12 — admission control and delay quotes (the control plane)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class E12Params:
    schedulers: Tuple[str, ...] = ("srr", "drr", "g3", "wfq", "fifo")
    rate_bps: float = 1_024_000
    sigma_bytes: float = 600.0
    validate: bool = True


def _e12_network(scheduler: str):
    from ..net.scenario import Network

    kwargs = {"capacity": 625} if scheduler == "g3" else {}
    net = Network(default_scheduler=scheduler,
                  default_scheduler_kwargs=kwargs)
    for n in ("edge", "core1", "core2", "exit"):
        net.add_node(n)
    net.add_link("edge", "core1", rate_bps=100e6, delay=0.001)
    net.add_link("core1", "core2", rate_bps=BOTTLENECK_BPS, delay=0.010)
    net.add_link("core2", "exit", rate_bps=BOTTLENECK_BPS, delay=0.010)
    return net


def _e12_quote_point(scheduler: str, rate_bps: float, sigma_bytes: float) -> Dict:
    from ..qos import AdmissionController

    unit = BOTTLENECK_BPS / 625 if scheduler == "g3" else WEIGHT_UNIT_BPS
    cac = AdmissionController(_e12_network(scheduler), weight_unit_bps=unit)
    quote = cac.request(
        "video", "edge", "exit", rate_bps, sigma_bytes=sigma_bytes
    ).quote
    return {
        "scheduler": scheduler,
        "total_ms": quote.milliseconds(),
        "sched_ms": sum(quote.per_hop) * 1e3,
        "guaranteed": quote.guaranteed,
    }


def _e12_body(p: E12Params, ctx: RunContext) -> Dict:
    """End-to-end delay quotes per discipline + empirical validation (E12).

    The call admission controller quotes Corollary-1 bounds for the same
    reservation under each discipline. The table captures the paper's
    practical consequence: SRR's N-dependent bound forces worst-case-N
    quotes (huge), G-3's Theorem 2 quotes are N-independent (tight), the
    timestamp schedulers quote tightly but pay per-packet cost, FIFO can
    promise nothing. With ``validate`` the SRR quote is checked by
    saturating the path and measuring.
    """
    from ..net.shaping import TokenBucketShaper
    from ..net.sources import CBRSource
    from ..qos import AdmissionController

    records = ctx.sweep(
        _e12_quote_point,
        [(scheduler, p.rate_bps, p.sigma_bytes)
         for scheduler in p.schedulers],
    )
    ctx.add_points(records)
    results: Dict[str, Dict] = {
        r["scheduler"]: {
            "total_ms": r["total_ms"],
            "guaranteed": r["guaranteed"],
        }
        for r in records
    }
    measured_ms = None
    if p.validate:
        net = _e12_network("srr")
        cac = AdmissionController(net, weight_unit_bps=WEIGHT_UNIT_BPS)
        res = cac.request(
            "video", "edge", "exit", p.rate_bps, sigma_bytes=p.sigma_bytes
        )
        shaper = TokenBucketShaper(
            sigma_bytes=p.sigma_bytes, rate_bps=p.rate_bps
        )
        net.attach_source(
            "video", CBRSource(p.rate_bps, MTU), shaper=shaper
        )
        i = 0
        while True:
            try:
                fid = f"bg{i}"
                cac.request(fid, "edge", "exit", WEIGHT_UNIT_BPS)
                net.attach_source(fid, CBRSource(WEIGHT_UNIT_BPS, MTU))
                i += 1
            except Exception:
                break
        net.run(until=4.0)
        ctx.record_engine(net.engine_stats())
        delays = net.sinks.delays("video")
        measured_ms = max(delays) * 1e3
        validation = {
            "competitors": i,
            "measured_max_ms": measured_ms,
            "quote_ms": res.quote.milliseconds(),
            "within_quote": measured_ms <= res.quote.milliseconds(),
        }
        results["validation"] = validation
        ctx.add_point({"scheduler": "validation", **validation})
    ctx.table(
        ["scheduler", "e2e quote ms", "sched part ms", "guaranteed"],
        records=records,
        columns=[
            "scheduler",
            lambda r: round(r["total_ms"], 2),
            lambda r: round(r["sched_ms"], 2),
            "guaranteed",
        ],
        title=(
            f"E12: CAC delay quotes for a {p.rate_bps / 1e3:.0f} kb/s "
            f"(sigma={p.sigma_bytes:.0f}B) reservation over two 10 Mb/s hops"
            + (
                f"; SRR quote validated under saturation: measured "
                f"{measured_ms:.1f} ms" if measured_ms is not None else ""
            )
        ),
    )
    return results


def e12_admission_quotes(
    schedulers: Sequence[str] = None,
    *,
    rate_bps: float = None,
    sigma_bytes: float = None,
    validate: bool = None,
    quiet: bool = False,
    jobs: int = 1,
) -> Dict:
    """End-to-end delay quotes per discipline + empirical validation (E12)."""
    return _metrics(
        "e12",
        {"schedulers": schedulers, "rate_bps": rate_bps,
         "sigma_bytes": sigma_bytes, "validate": validate},
        quiet=quiet, jobs=jobs, seed=1,
    )


# ---------------------------------------------------------------------------
# E13 — [ext] churn/fault resilience (the dynamic regime the paper assumes)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class E13Params:
    schedulers: Tuple[str, ...] = ("srr", "drr", "wfq")
    #: Fault intensity multipliers (0.0 = fault-free baseline).
    intensities: Tuple[float, ...] = (0.0, 2.0, 8.0)
    duration: float = 4.0
    n_flows: int = 8
    #: Base (intensity 1.0) fault rates, events/s.
    churn_rate_hz: float = 1.0
    flap_rate_hz: float = 0.5
    burst_rate_hz: float = 0.5
    malformed_rate_hz: float = 0.5
    #: Attach the runtime invariant pack to every port scheduler
    #: (``--check-invariants``); violations are counted, not raised, so
    #: the totals land in the artifact for CI to assert on.
    check_invariants: bool = False


def _e13_point(
    scheduler: str,
    intensity: float,
    duration: float,
    n_flows: int,
    fault_rates: Tuple[float, float, float, float],
    seed: int,
    check_invariants: bool,
) -> Dict:
    from ..core.opcount import OpCounter
    from ..faults import FaultInjector, FaultSpec, build_fault_plan, guard_network
    from ..net.scenario import Network
    from ..net.sources import CBRSource
    from ..obs.metrics import MetricsRegistry, set_registry
    from ..obs.profile import percentile

    churn_hz, flap_hz, burst_hz, malformed_hz = fault_rates
    registry = MetricsRegistry()
    ops = OpCounter()
    kwargs: Dict = {"op_counter": ops}
    if scheduler in ("srr", "drr"):
        kwargs["quantum"] = MTU
    if scheduler == "srr":
        kwargs["mode"] = "deficit"
    # Ports resolve their (fault) counters from the active registry at
    # construction, so the per-point registry must be active while the
    # topology is built; restored immediately after.
    previous = set_registry(registry)
    try:
        net = Network(default_scheduler=scheduler,
                      default_scheduler_kwargs=kwargs)
        for n in ("src", "router", "dst"):
            net.add_node(n)
        net.add_link("src", "router", rate_bps=100e6, delay=0.0001)
        net.add_link("router", "dst", rate_bps=BOTTLENECK_BPS, delay=0.001,
                     buffer_packets=4 * n_flows * 8)
    finally:
        set_registry(previous)
    bottleneck = net.port("router", "dst")
    bottleneck.max_packet_bytes = MTU  # malformed "oversize" drops here
    weights = {f"bg{i}": (i % 4) + 1 for i in range(n_flows)}
    for fid, w in weights.items():
        net.add_flow(fid, "src", "dst", weight=w)
        net.attach_source(
            fid, CBRSource(rate_bps=w * WEIGHT_UNIT_BPS, packet_size=MTU)
        )
    plan = build_fault_plan(
        FaultSpec(
            churn_rate_hz=churn_hz, flap_rate_hz=flap_hz,
            burst_rate_hz=burst_hz, malformed_rate_hz=malformed_hz,
        ).scaled(intensity),
        seed=seed, duration=duration,
        links=[("router", "dst")], churn_route=("src", "dst"),
        burst_node="src", weight_unit_bps=WEIGHT_UNIT_BPS, packet_size=MTU,
    )
    injector = FaultInjector(
        net, plan, fault_route=("src", "dst"), registry=registry,
    )
    injector.install()
    guards = []
    if check_invariants:
        guards = guard_network(
            net, every=16, mode="record", registry=registry,
        )
    # Per-dequeue op profile at the bottleneck: the O(1) claim must hold
    # *through* churn, which is exactly when SRR's matrix/k-order work
    # happens. Wrapped before any guard so the delta brackets the real
    # scheduler call either way.
    sched = bottleneck.scheduler
    inner = sched.dequeue
    deltas: List[int] = []

    def profiled_dequeue():
        before = ops.count
        packet = inner()
        deltas.append(ops.count - before)
        return packet

    sched.dequeue = profiled_dequeue
    if guards:
        # Re-attach the bottleneck guard on top of the profiler.
        for guard in guards:
            if guard.sched is sched:
                guard.detach()
                sched.dequeue = profiled_dequeue
                guard.attach()
    net.run(until=duration)
    shares = [
        net.sinks.flow(fid).throughput_bps(0.0, duration) / w
        for fid, w in weights.items()
    ]
    tag_delays = sorted(net.sinks.delays("bg0"))
    deltas.sort()
    record = {
        "scheduler": scheduler,
        "intensity": intensity,
        "jain": round(jain_index(shares), 5),
        "tag_p99_ms": round(
            percentile(tag_delays, 0.99) * 1e3, 3
        ) if tag_delays else None,
        "tag_max_ms": round(max(tag_delays) * 1e3, 3) if tag_delays else None,
        "faults_fired": len(injector.fired),
        "plan_sig": plan.signature(),
        "p99_ops": int(percentile(deltas, 0.99)) if deltas else 0,
        "worst_ops": int(deltas[-1]) if deltas else 0,
        "served": len(deltas) - deltas.count(0) if deltas else 0,
        "violations": sum(len(g.violations) for g in guards),
        "checks": sum(g.checks_run for g in guards),
        "metrics_snapshot": registry.snapshot(),
        "engine": net.engine_stats(),
    }
    return record


def _e13_body(p: E13Params, ctx: RunContext) -> Dict:
    """SRR fairness/latency degradation under deterministic chaos (E13).

    Sweeps fault intensity per scheduler: seeded link flaps, flow churn
    (the paper's CAC add / signalling remove, live), overload bursts and
    malformed packets, all from a :class:`~repro.faults.FaultPlan` that
    is bit-identical between serial and ``--jobs N`` runs. Confirms the
    E5 O(1) dequeue profile *holds under churn* (worst/p99 ops at the
    bottleneck stay flat while the flow set mutates) and — with
    ``check_invariants`` — that no structural invariant breaks mid-chaos.
    """
    rates = (p.churn_rate_hz, p.flap_rate_hz, p.burst_rate_hz,
             p.malformed_rate_hz)
    tasks = []
    pairs = [
        (scheduler, intensity)
        for scheduler in p.schedulers for intensity in p.intensities
    ]
    for i, (scheduler, intensity) in enumerate(pairs):
        tasks.append((
            scheduler, intensity, p.duration, p.n_flows, rates,
            ctx.child_seed(i), p.check_invariants,
        ))
    records = ctx.sweep(_e13_point, tasks)
    for record in records:
        ctx.record_metrics(record.pop("metrics_snapshot"))
        ctx.record_engine(record.pop("engine"))
    ctx.add_points(records)
    ctx.table(
        ["scheduler", "intensity", "jain", "tag p99 ms", "faults",
         "p99 ops", "worst ops", "violations"],
        records=records,
        columns=["scheduler", "intensity", "jain", "tag_p99_ms",
                 "faults_fired", "p99_ops", "worst_ops", "violations"],
        title="E13: fairness/latency/op-cost under seeded faults "
              "(churn + flaps + bursts + malformed; jain over weighted "
              "background shares)",
    )
    results: Dict = {}
    for record in records:
        results.setdefault(record["scheduler"], {})[record["intensity"]] = {
            "jain": record["jain"],
            "p99_ops": record["p99_ops"],
            "faults_fired": record["faults_fired"],
        }
    results["violations_total"] = sum(r["violations"] for r in records)
    results["checks_total"] = sum(r["checks"] for r in records)
    results["plan_signatures"] = {
        f"{r['scheduler']}@{r['intensity']}": r["plan_sig"] for r in records
    }
    return results


def e13_churn_resilience(
    schedulers: Sequence[str] = None,
    intensities: Sequence[float] = None,
    *,
    duration: float = None,
    n_flows: int = None,
    check_invariants: bool = None,
    quiet: bool = False,
    jobs: int = 1,
) -> Dict:
    """Fairness/latency/O(1) profile under seeded churn and faults (E13)."""
    return _metrics(
        "e13",
        {"schedulers": schedulers, "intensities": intensities,
         "duration": duration, "n_flows": n_flows,
         "check_invariants": check_invariants},
        quiet=quiet, jobs=jobs, seed=1,
    )


# ---------------------------------------------------------------------------
# E14 — [ext] adaptive overload control: SLO compliance under churn
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class E14Params:
    schedulers: Tuple[str, ...] = ("srr", "drr")
    #: Which control-plane arms to run: "both" (on + off per scheduler),
    #: "on", or "off".
    control: str = "both"
    duration: float = 4.0
    #: Guaranteed (CAC-admitted) flows and their aggregate share of the
    #: bottleneck.
    n_guaranteed: int = 4
    guaranteed_fraction: float = 0.55
    #: Churn overload: joins/s, mean hold, weight bits. The defaults
    #: oversubscribe the 10 Mb/s bottleneck ~2x when ungated.
    churn_rate_hz: float = 20.0
    churn_hold_s: float = 1.5
    churn_max_weight_bits: int = 5
    burst_rate_hz: float = 2.0
    #: Watermarks (fractions of bottleneck capacity).
    low: float = 0.70
    high: float = 0.90
    #: SLO target = quoted bound × this margin.
    slo_margin: float = 1.0
    #: The operator-sized booking bound N for the N-dependent quotes.
    #: The paper's worst case (capacity / unit rate = 625 here) quotes a
    #: bound so loose a short run cannot violate it; a realistically
    #: provisioned CAC books for the expected population.
    assumed_max_flows: int = 48
    #: Arm the closed-loop weight/quantum adapter.
    adapt_weights: bool = False


def _e14_point(
    scheduler: str,
    control_on: bool,
    duration: float,
    n_guaranteed: int,
    guaranteed_fraction: float,
    churn_cfg: Tuple[float, float, int, float],
    low: float,
    high: float,
    slo_margin: float,
    assumed_max_flows: int,
    adapt_weights: bool,
    seed: int,
) -> Dict:
    from ..faults import FaultInjector, FaultSpec, build_fault_plan
    from ..net.scenario import Network
    from ..net.sources import CBRSource
    from ..obs.metrics import MetricsRegistry, set_registry
    from ..obs.profile import percentile
    from ..qos import AdmissionController, ControlPlane, SLOWatchdog

    churn_hz, churn_hold, churn_bits, burst_hz = churn_cfg
    registry = MetricsRegistry()
    kwargs: Dict = {}
    if scheduler in ("srr", "drr"):
        kwargs["quantum"] = MTU
    if scheduler == "srr":
        kwargs["mode"] = "deficit"
    previous = set_registry(registry)
    try:
        net = Network(default_scheduler=scheduler,
                      default_scheduler_kwargs=kwargs)
        for n in ("src", "router", "dst"):
            net.add_node(n)
        net.add_link("src", "router", rate_bps=100e6, delay=0.0001)
        # Unbounded bottleneck buffer: overload must show up as delay
        # (the violated promise), not be masked by drop-tail.
        net.add_link("router", "dst", rate_bps=BOTTLENECK_BPS, delay=0.001)
    finally:
        set_registry(previous)
    bottleneck = net.port("router", "dst")
    admission = AdmissionController(
        net, weight_unit_bps=WEIGHT_UNIT_BPS, packet_size=MTU,
        assumed_max_flows=assumed_max_flows,
    )
    # CAC-admitted guaranteed class, well inside capacity on its own.
    rate = guaranteed_fraction * BOTTLENECK_BPS / n_guaranteed
    reservations = []
    for i in range(n_guaranteed):
        reservation = admission.request(
            f"guar{i}", "src", "dst", rate_bps=rate
        )
        reservations.append(reservation)
        net.attach_source(
            f"guar{i}", CBRSource(rate_bps=rate, packet_size=MTU)
        )
    plane = None
    if control_on:
        plane = ControlPlane(
            net, admission, seed=seed, low=low, high=high,
            interval_s=0.05, horizon=duration, mode="record",
            slo_margin=slo_margin, adapt_weights=adapt_weights,
            registry=registry,
        ).arm([bottleneck])
        watchdog = plane.watchdog
        for reservation in reservations:
            plane.watch(reservation)
    else:
        # Uncontrolled arm: same promises watched, nothing defends them.
        watchdog = SLOWatchdog(mode="record", registry=registry)
        watchdog.attach(net.sinks)
        for reservation in reservations:
            watchdog.watch(
                reservation.flow_id,
                reservation.quote.total * slo_margin,
            )
    plan = build_fault_plan(
        FaultSpec(
            churn_rate_hz=churn_hz, churn_hold_s=churn_hold,
            churn_max_weight_bits=churn_bits, burst_rate_hz=burst_hz,
        ),
        seed=seed, duration=duration,
        links=[("router", "dst")], churn_route=("src", "dst"),
        burst_node="src", weight_unit_bps=WEIGHT_UNIT_BPS, packet_size=MTU,
    )
    injector = FaultInjector(
        net, plan, fault_route=("src", "dst"), registry=registry,
        gate=plane,
    )
    injector.install()
    net.run(until=duration)
    if plane is not None:
        plane.stop()
    guar_delays = sorted(
        d for i in range(n_guaranteed) for d in net.sinks.delays(f"guar{i}")
    )
    violations_by_class = {}
    for violation in watchdog.violations:
        violations_by_class[violation.service_class] = (
            violations_by_class.get(violation.service_class, 0) + 1
        )
    # The honored-or-revoked audit: a live (unrevoked) reservation with a
    # recorded violation is a silently broken promise.
    silently_violated = sum(
        1 for r in reservations
        if not r.revoked and watchdog.violation_count(r.flow_id) > 0
        and r.flow_id in admission.reservations
    )
    record = {
        "scheduler": scheduler,
        "control": "on" if control_on else "off",
        "guaranteed_violations": violations_by_class.get("guaranteed", 0),
        "silently_violated": silently_violated,
        "revocations": admission.revocations,
        "quote_ms": round(
            max(r.quote.total for r in reservations) * 1e3, 3
        ),
        "guar_p99_ms": round(
            percentile(guar_delays, 0.99) * 1e3, 3
        ) if guar_delays else None,
        "guar_max_ms": round(
            max(guar_delays) * 1e3, 3
        ) if guar_delays else None,
        "shed": plane.policy.shed if plane is not None else 0,
        "admitted_joins": plane.policy.admitted if plane is not None else 0,
        "rejected": plane.policy.rejected if plane is not None else 0,
        "demoted": (
            plane.governor.demoted_packets
            if plane is not None and plane.governor is not None else 0
        ),
        "reweights": (
            len(plane.adapter.adjustments)
            if plane is not None and plane.adapter is not None else 0
        ),
        "faults_fired": len(injector.fired),
        "plan_sig": plan.signature(),
        "metrics_snapshot": registry.snapshot(),
        "engine": net.engine_stats(),
    }
    return record


def _e14_body(p: E14Params, ctx: RunContext) -> Dict:
    """Guaranteed-class SLO compliance under overload churn (E14).

    Per scheduler, two arms share one fault plan (same seed): the
    *uncontrolled* arm admits guaranteed flows through the CAC and lets
    churn blow through the bottleneck — the weighted share of each
    guaranteed flow drops below its reserved rate, queues grow, and its
    quoted delay bound is violated. The *controlled* arm arms the
    :class:`~repro.qos.ControlPlane`: offered-load estimation at the
    bottleneck, watermark gating of churn joins (probabilistic shedding
    between ``low`` and ``high``), best-effort demotion at the high
    watermark, and the SLO watchdog + governor ensuring any promise that
    cannot be kept is explicitly revoked. Expected: zero guaranteed
    violations with control on, violations without.
    """
    if p.control not in ("both", "on", "off"):
        raise ValueError(
            f"control must be 'both', 'on' or 'off', got {p.control!r}"
        )
    arms = {"both": (False, True), "on": (True,), "off": (False,)}[p.control]
    churn_cfg = (
        p.churn_rate_hz, p.churn_hold_s, p.churn_max_weight_bits,
        p.burst_rate_hz,
    )
    tasks = []
    for si, scheduler in enumerate(p.schedulers):
        # One seed per scheduler, shared by both arms: identical fault
        # plans make on-vs-off a controlled comparison.
        seed = ctx.child_seed(si)
        for control_on in arms:
            tasks.append((
                scheduler, control_on, p.duration, p.n_guaranteed,
                p.guaranteed_fraction, churn_cfg, p.low, p.high,
                p.slo_margin, p.assumed_max_flows, p.adapt_weights, seed,
            ))
    records = ctx.sweep(_e14_point, tasks)
    for record in records:
        ctx.record_metrics(record.pop("metrics_snapshot"))
        ctx.record_engine(record.pop("engine"))
    ctx.add_points(records)
    ctx.table(
        ["scheduler", "control", "SLO viol", "silent", "revoked", "shed",
         "admitted", "quote ms", "p99 ms", "max ms"],
        records=records,
        columns=["scheduler", "control", "guaranteed_violations",
                 "silently_violated", "revocations", "shed",
                 "admitted_joins", "quote_ms", "guar_p99_ms", "guar_max_ms"],
        title="E14: guaranteed-class SLO compliance under overload churn "
              "(watermark shedding + SLO watchdog + governor, on vs off)",
    )
    results: Dict = {}
    for record in records:
        results.setdefault(record["scheduler"], {})[record["control"]] = {
            "guaranteed_violations": record["guaranteed_violations"],
            "silently_violated": record["silently_violated"],
            "revocations": record["revocations"],
            "shed": record["shed"],
            "plan_sig": record["plan_sig"],
        }
    results["controlled_violations"] = sum(
        r["guaranteed_violations"] for r in records if r["control"] == "on"
    )
    results["uncontrolled_violations"] = sum(
        r["guaranteed_violations"] for r in records if r["control"] == "off"
    )
    results["silently_violated_total"] = sum(
        r["silently_violated"] for r in records
    )
    return results


def e14_overload_control(
    schedulers: Sequence[str] = None,
    *,
    control: str = None,
    duration: float = None,
    churn_rate_hz: float = None,
    adapt_weights: bool = None,
    quiet: bool = False,
    jobs: int = 1,
) -> Dict:
    """Guaranteed-class SLO compliance, control plane on vs off (E14)."""
    return _metrics(
        "e14",
        {"schedulers": schedulers, "control": control,
         "duration": duration, "churn_rate_hz": churn_rate_hz,
         "adapt_weights": adapt_weights},
        quiet=quiet, jobs=jobs, seed=1,
    )


# ---------------------------------------------------------------------------
# E15 — [ext] sharded engine: digest equivalence + scaling
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class E15Params:
    #: Generated multi-hop topology: "fat_tree" or "dumbbell2".
    topology: str = "fat_tree"
    k: int = 4
    flows_per_host: int = 1
    groups: int = 8
    hosts_per_group: int = 2
    #: Shard counts to run; 1 is the single-process reference every other
    #: count's digest is asserted against.
    shards: Tuple[int, ...] = (1, 2, 4)
    engines: Tuple[str, ...] = ("heap",)
    duration: float = 0.3
    scheduler: str = "srr"
    #: Fail the run on any digest divergence (the point of the exercise).
    check_digests: bool = True


def _e15_body(p: E15Params, ctx: RunContext) -> Dict:
    """Sharded conservative-lookahead engine: equivalence + scaling (E15).

    For each event-queue engine, runs the generated topology at every
    shard count and asserts the per-flow delivery digests are
    bit-identical to the 1-shard reference — then reports wall-clock
    speedup, boundary-packet traffic and the null-message ratio. The
    shard workers are processes run_sharded spawns itself, so points run
    serially here rather than through ``ctx.sweep`` (no pool-in-pool).
    """
    from ..net.scenario import dumbbell_of_dumbbells, fat_tree
    from ..shard.engine import run_sharded

    if p.topology == "fat_tree":
        spec = fat_tree(
            k=p.k, scheduler=p.scheduler,
            flows_per_host=p.flows_per_host,
        )
    elif p.topology == "dumbbell2":
        spec = dumbbell_of_dumbbells(
            groups=p.groups, hosts_per_group=p.hosts_per_group,
            scheduler=p.scheduler,
        )
    else:
        raise ValueError(
            f"topology must be 'fat_tree' or 'dumbbell2', got {p.topology!r}"
        )
    seed = ctx.child_seed(0)
    records: List[Dict] = []
    mismatches = 0
    for engine in p.engines:
        reference: Optional[str] = None
        base_wall: Optional[float] = None
        for shards in p.shards:
            result = run_sharded(
                spec, until=p.duration, shards=shards, engine=engine,
                seed=seed,
            )
            if reference is None:
                reference = result.digest
                base_wall = result.wall_time_s
            match = result.digest == reference
            if not match:
                mismatches += 1
            records.append({
                "topology": spec.name,
                "engine": engine,
                "shards": shards,
                "events": result.events,
                "delivered": result.delivered_packets,
                "windows": result.windows,
                "boundary": result.boundary_packets,
                "null_pct": round(100.0 * result.null_ratio, 1),
                "wall_s": round(result.wall_time_s, 4),
                "speedup": round(base_wall / result.wall_time_s, 2),
                "events_per_s": int(result.events / result.wall_time_s),
                "digest": result.digest[:16],
                "digest_ok": match,
            })
    ctx.add_points(records)
    ctx.table(
        ["engine", "shards", "events", "windows", "boundary", "null %",
         "wall s", "speedup", "events/s", "digest ok"],
        records=records,
        columns=["engine", "shards", "events", "windows", "boundary",
                 "null_pct", "wall_s", "speedup", "events_per_s",
                 "digest_ok"],
        title=f"E15: sharded engine on {spec.name} — digest equivalence "
              "and scaling vs the 1-shard reference",
    )
    if p.check_digests and mismatches:
        raise AssertionError(
            f"{mismatches} sharded run(s) diverged from the 1-shard digest"
        )
    return {
        "topology": spec.name,
        "digests_ok": mismatches == 0,
        "events": max(r["events"] for r in records),
        "best_speedup": max(r["speedup"] for r in records),
        "best_shards": max(
            records, key=lambda r: r["speedup"]
        )["shards"],
    }


def e15_shard_scaling(
    topology: str = None,
    *,
    shards: Sequence[int] = None,
    engines: Sequence[str] = None,
    duration: float = None,
    quiet: bool = False,
    jobs: int = 1,
) -> Dict:
    """Sharded-engine digest equivalence and speedup (E15)."""
    return _metrics(
        "e15",
        {"topology": topology,
         "shards": None if shards is None else tuple(shards),
         "engines": None if engines is None else tuple(engines),
         "duration": duration},
        quiet=quiet, jobs=jobs, seed=1,
    )


# ---------------------------------------------------------------------------
# E16 — [ext] network-calculus bound tightness
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class E16Params:
    #: Disciplines with a strict service curve in ``repro.analysis.netcalc``.
    disciplines: Tuple[str, ...] = ("srr", "drr", "wrr", "iwrr")
    flow_counts: Tuple[int, ...] = (2, 4, 8)
    #: Independent weight draws per (discipline, n_flows) case.
    seeds_per_case: int = 3
    #: Source rate as a fraction of each flow's reserved share (< 1 keeps
    #: every arrival token-bucket conformant, so the bounds apply).
    utilization: float = 0.6
    horizon_s: float = 0.4
    packet_size: int = 250
    link_bps: float = 2_000_000.0
    quantum: int = 1500
    engine: str = "heap"


def _e16_point(
    discipline: str,
    n_flows: int,
    seed: int,
    engine: str,
    utilization: float,
    horizon_s: float,
    packet_size: int,
    link_bps: float,
    quantum: int,
) -> Dict:
    import random as _random

    from ..conformance.oracles import bounds_certification_run

    rng = _random.Random(seed)
    if discipline == "drr":
        # DRR is the one discipline whose curve accepts fractional quanta.
        weights: List[float] = [
            round(rng.uniform(0.5, 8.0), 3) for _ in range(n_flows)
        ]
    else:
        weights = [rng.choice((1, 2, 3, 4, 6, 8, 16)) for _ in range(n_flows)]
    records = bounds_certification_run(
        discipline,
        [(f"f{i}", w) for i, w in enumerate(weights)],
        engine=engine,
        link_bps=link_bps,
        packet_size=packet_size,
        utilization=utilization,
        horizon_s=horizon_s,
        quantum=quantum,
    )
    ratios = [r["ratio"] for r in records if r["ratio"] is not None]
    certified = bool(ratios) and all(
        r["ratio"] is not None and r["ratio"] <= 1.0 + 1e-9 for r in records
    )
    return {
        "discipline": discipline,
        "n_flows": n_flows,
        "seed": seed,
        "worst_ratio": max(ratios) if ratios else None,
        "mean_ratio": sum(ratios) / len(ratios) if ratios else None,
        "worst_bound_ms": round(
            max(r["bound_s"] for r in records) * 1e3, 3
        ),
        "delivered": sum(r["delivered"] for r in records),
        "certified": certified,
    }


def _e16_body(p: E16Params, ctx: RunContext) -> Dict:
    """Network-calculus bound tightness per discipline (E16).

    For each (discipline, N, weight draw) the certification run computes
    every flow's closed-form delay bound (token-bucket arrival through
    the discipline's rate-latency service curve) and measures the worst
    observed delivery delay under conformant CBR load. The reported
    observed/certified ratio is the bound-tightness figure: <= 1 means
    the bound held (the ``bounds`` conformance oracle asserts exactly
    this on the fuzz corpus), and how far below 1 says how much slack
    the analysis leaves on realistic traffic.
    """
    tasks = []
    i = 0
    for d in p.disciplines:
        for n in p.flow_counts:
            for _ in range(p.seeds_per_case):
                tasks.append((
                    d, n, ctx.child_seed(i), p.engine, p.utilization,
                    p.horizon_s, p.packet_size, p.link_bps, p.quantum,
                ))
                i += 1
    records = ctx.sweep(_e16_point, tasks)
    ctx.add_points(records)

    rows: List[Dict] = []
    all_certified = True
    worst_overall = 0.0
    for d in p.disciplines:
        recs = [r for r in records if r["discipline"] == d]
        ratios = [
            r["worst_ratio"] for r in recs if r["worst_ratio"] is not None
        ]
        means = [
            r["mean_ratio"] for r in recs if r["mean_ratio"] is not None
        ]
        ok = bool(recs) and all(r["certified"] for r in recs)
        all_certified = all_certified and ok
        worst = max(ratios) if ratios else math.inf
        worst_overall = max(worst_overall, worst)
        rows.append({
            "discipline": d,
            "cases": len(recs),
            "worst_ratio": round(worst, 4) if ratios else None,
            "mean_ratio": (
                round(sum(means) / len(means), 4) if means else None
            ),
            "worst_bound_ms": max(r["worst_bound_ms"] for r in recs),
            "certified": ok,
        })
        ctx.metrics.gauge(
            "e16_worst_ratio", discipline=d,
        ).set(round(worst, 6) if ratios else math.inf)
    ctx.table(
        ["discipline", "cases", "worst obs/cert", "mean obs/cert",
         "worst bound ms", "certified"],
        records=rows,
        columns=["discipline", "cases", "worst_ratio", "mean_ratio",
                 "worst_bound_ms", "certified"],
        title="E16: network-calculus bound tightness "
              f"(CBR at {p.utilization:.0%} of reserved rate, "
              f"{p.link_bps / 1e6:g} Mbps link)",
    )
    metrics: Dict = {
        "disciplines": list(p.disciplines),
        "cases": len(records),
        "all_certified": all_certified,
        "worst_ratio": round(worst_overall, 4),
    }
    for row in rows:
        metrics[f"worst_ratio_{row['discipline']}"] = row["worst_ratio"]
    return metrics


def e16_bound_tightness(
    disciplines: Sequence[str] = None,
    *,
    flow_counts: Sequence[int] = None,
    seeds_per_case: int = None,
    quiet: bool = False,
    jobs: int = 1,
) -> Dict:
    """Observed-vs-certified delay ratio per discipline (E16)."""
    return _metrics(
        "e16",
        {"disciplines": None if disciplines is None else tuple(disciplines),
         "flow_counts": None if flow_counts is None else tuple(flow_counts),
         "seeds_per_case": seeds_per_case},
        quiet=quiet, jobs=jobs, seed=1,
    )


# ---------------------------------------------------------------------------
# The declarative experiment registry
# ---------------------------------------------------------------------------

SPECS: Dict[str, ExperimentSpec] = {
    "e1": ExperimentSpec(
        eid="e1",
        title="WSS definition table and properties",
        params_type=E1Params,
        body=_e1_body,
        scales={"quick": {"max_order": 8}, "full": {"max_order": 14}},
    ),
    "e2": ExperimentSpec(
        eid="e2",
        title="service-order smoothness: SRR vs WRR/DRR/RR",
        params_type=E2Params,
        body=_e2_body,
        scales={"quick": {"rounds": 4}, "full": {"rounds": 16}},
    ),
    "e3": ExperimentSpec(
        eid="e3",
        title="end-to-end delay in the Fig. 8 dumbbell",
        params_type=E3Params,
        body=_e3_body,
        scales={
            "quick": {"duration": 3.0, "n_background": 100},
            "full": {"duration": 20.0, "repeats": 5},
        },
    ),
    "e4": ExperimentSpec(
        eid="e4",
        title="delay vs number of flows N (Theorem 1 shape)",
        params_type=E4Params,
        body=_e4_body,
        scales={
            "quick": {"n_values": (16, 64, 128), "duration": 2.0},
            "full": {"duration": 8.0},
        },
    ),
    "e5": ExperimentSpec(
        eid="e5",
        title="per-packet scheduling cost vs N (the O(1) claim)",
        params_type=E5Params,
        body=_e5_body,
        scales={
            "quick": {"n_values": (16, 256, 2048), "measure": 1500},
            "full": {"time_it": True},
        },
        timing_fields=("us_per_packet",),
    ),
    "e6": ExperimentSpec(
        eid="e6",
        title="weighted fairness indices, saturated node",
        params_type=E6Params,
        body=_e6_body,
        scales={"quick": {"rounds": 6}, "full": {"rounds": 24}},
    ),
    "e7": ExperimentSpec(
        eid="e7",
        title="throughput guarantees under best-effort overload",
        params_type=E7Params,
        body=_e7_body,
        scales={
            "quick": {"duration": 3.0, "n_background": 50},
            "full": {"duration": 12.0},
        },
    ),
    "e8": ExperimentSpec(
        eid="e8",
        title="[ext] G-3 vs SRR vs RRR (follow-on Fig. 9)",
        params_type=E8Params,
        body=_e8_body,
        scales={
            "quick": {"duration": 3.0, "n_background": 100},
            "full": {"duration": 16.0},
        },
    ),
    "e9": ExperimentSpec(
        eid="e9",
        title="space-time tradeoffs (WSS storage, TArray expansion)",
        params_type=E9Params,
        body=_e9_body,
        scales={"quick": {"lookups": 4000}, "full": {"lookups": 100000}},
        timing_fields=("ns", "us", "us_raw"),
    ),
    "e10": ExperimentSpec(
        eid="e10",
        title="measured delay vs analytic bounds",
        params_type=E10Params,
        body=_e10_body,
        scales={
            "quick": {"n_flows": 16, "rounds": 12},
            "full": {"n_flows": 80, "rounds": 60},
        },
    ),
    "e11": ExperimentSpec(
        eid="e11",
        title="variable packet sizes: packet vs deficit mode byte fairness",
        params_type=E11Params,
        body=_e11_body,
        scales={"quick": {"rounds": 120}, "full": {"rounds": 600}},
    ),
    "e12": ExperimentSpec(
        eid="e12",
        title="admission control: per-discipline delay quotes + validation",
        params_type=E12Params,
        body=_e12_body,
        scales={"quick": {"validate": False}, "full": {}},
    ),
    "e13": ExperimentSpec(
        eid="e13",
        title="[ext] churn/fault resilience: fairness + O(1) under chaos",
        params_type=E13Params,
        body=_e13_body,
        scales={
            "quick": {
                "intensities": (0.0, 4.0), "duration": 2.0, "n_flows": 4,
            },
            "full": {
                "intensities": (0.0, 1.0, 2.0, 4.0, 8.0, 16.0),
                "duration": 10.0, "n_flows": 16,
            },
        },
    ),
    "e14": ExperimentSpec(
        eid="e14",
        title="[ext] adaptive overload control: SLO compliance under churn",
        params_type=E14Params,
        body=_e14_body,
        scales={
            "quick": {"duration": 3.0, "schedulers": ("srr",)},
            "full": {
                "duration": 8.0,
                "schedulers": ("srr", "drr"),
                "adapt_weights": True,
            },
        },
    ),
    "e15": ExperimentSpec(
        eid="e15",
        title="[ext] sharded engine: digest equivalence + scaling",
        params_type=E15Params,
        body=_e15_body,
        scales={
            "quick": {
                "topology": "dumbbell2", "groups": 4,
                "shards": (1, 2), "duration": 0.15,
            },
            # The headline config: a k=8 fat-tree (128 hosts, 512 flows)
            # driven long enough to cross 10^8 packet events per run
            # (~711k events per simulated second at steady state x 160
            # s), heap and calendar both checked. Expect long wall times
            # on one core; the point is the scaling curve on many.
            "full": {
                "k": 8,
                "flows_per_host": 4,
                "shards": (1, 2, 4, 8),
                "engines": ("heap", "calendar"),
                "duration": 160.0,
            },
        },
    ),
    "e16": ExperimentSpec(
        eid="e16",
        title="[ext] network-calculus bound tightness (observed/certified)",
        params_type=E16Params,
        body=_e16_body,
        scales={
            "quick": {
                "flow_counts": (2, 4), "seeds_per_case": 1,
                "horizon_s": 0.2,
            },
            "full": {},
        },
    ),
}
