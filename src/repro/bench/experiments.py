"""The experiments of EXPERIMENTS.md (E1-E12), as callable functions.

Each ``eN_*`` function runs one experiment at a configurable scale,
prints the paper-style table (unless ``quiet``) and returns a plain dict
of the numbers so the pytest benches can assert on the *shape* of the
results (who wins, by what factor, how quantities scale).

Defaults are sized for interactive runs; the benches pass smaller
durations, the examples larger ones.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, List, Optional, Sequence

import repro.extensions  # noqa: F401  (registers rrr/g3)
from ..analysis.bounds import (
    end_to_end_bound,
    g3_delay_bound,
    rrr_delay_bound,
    srr_delay_bound,
)
from ..analysis.fairness import gap_statistics, jain_index, worst_case_lag
from ..analysis.metrics import summarize_delays
from ..analysis.service_curves import max_ideal_lag
from ..analysis.tables import format_table
from ..core.opcount import OpCounter
from ..core.packet import Packet
from ..core.wss import (
    FoldedWSS,
    MaterializedWSS,
    WSSCursor,
    value_count,
    wss_sequence,
)
from ..extensions.g3 import G3Scheduler
from ..schedulers.registry import create_scheduler
from .scenarios import (
    BOTTLENECK_BPS,
    MTU,
    RRR_GRID_ORDER,
    WEIGHT_UNIT_BPS,
    dumbbell_network,
    single_bottleneck_network,
    slots_for_rate,
)
from .workloads import (
    build_loaded_scheduler,
    geometric_weights,
    ops_per_packet,
    service_sequence,
)

__all__ = [
    "e1_wss_properties",
    "e2_smoothness",
    "e3_end_to_end_delay",
    "e4_delay_vs_n",
    "e5_scheduling_cost",
    "e6_fairness",
    "e7_guarantees",
    "e8_g3_comparison",
    "e9_space_time",
    "e10_bound_validation",
    "e11_variable_packet_sizes",
    "e12_admission_quotes",
]


def _emit(text: str, quiet: bool) -> None:
    if not quiet:
        print()
        print(text)


# ---------------------------------------------------------------------------
# E1 — WSS definition table
# ---------------------------------------------------------------------------

def e1_wss_properties(max_order: int = 10, *, quiet: bool = False) -> Dict:
    """WSS examples and the term-frequency/spacing properties (E1)."""
    rows = []
    for order in range(1, max_order + 1):
        seq = wss_sequence(order)
        counts_ok = all(
            seq.count(v) == value_count(order, v)
            for v in range(1, order + 1)
        )
        spacing_ok = True
        for v in range(1, order + 1):
            positions = [i for i, x in enumerate(seq) if x == v]
            gaps = {b - a for a, b in zip(positions, positions[1:])}
            if gaps - {1 << v}:
                spacing_ok = False
        rows.append(
            [order, len(seq), seq.count(1), counts_ok, spacing_ok]
        )
    table = format_table(
        ["order k", "len=2^k-1", "#value-1", "counts 2^(k-v)", "spacing 2^v"],
        rows,
        title="E1: Weight Spread Sequence properties "
              f"(WSS^4 = {wss_sequence(4)})",
    )
    _emit(table, quiet)
    return {
        "orders": max_order,
        "all_counts_ok": all(r[3] for r in rows),
        "all_spacing_ok": all(r[4] for r in rows),
        "wss4": wss_sequence(4),
    }


# ---------------------------------------------------------------------------
# E2 — service smoothness
# ---------------------------------------------------------------------------

def e2_smoothness(
    schedulers: Sequence[str] = ("srr", "wrr", "drr", "rr"),
    *,
    n_flows: int = 12,
    rounds: int = 8,
    quiet: bool = False,
) -> Dict:
    """Inter-service-distance statistics per scheduler (E2, claim C3).

    All flows stay backlogged; the flow with the largest weight is the
    tagged flow whose gap statistics are reported (it suffers the most
    from bursty service).
    """
    weights = geometric_weights(n_flows, max_exponent=4)
    total_weight = sum(weights.values())
    heavy = max(weights, key=lambda f: weights[f])
    light = min(weights, key=lambda f: weights[f])
    rows = []
    results: Dict[str, Dict] = {}
    for name in schedulers:
        # DRR's quantum is set to the packet size: in the fixed-size model
        # one visit then serves exactly `weight` packets, the honest
        # comparison (a 1500 B quantum would hide the burst inside gap=1
        # statistics while multiplying its size).
        kwargs = {"quantum": MTU} if name == "drr" else {}
        sched = build_loaded_scheduler(
            name,
            weights,
            packets_per_flow=rounds * max(weights.values()) + 8,
            **kwargs,
        )
        seq = service_sequence(sched, rounds * total_weight)
        per = {}
        for label, fid in (("heavy", heavy), ("light", light)):
            stats = gap_statistics(seq, fid)
            per[label] = {
                "max_gap": stats.max_gap,
                "cv": stats.cv,
                "services": stats.services,
            }
            rows.append(
                [name, f"{label} (w={weights[fid]})", stats.services,
                 stats.min_gap, stats.max_gap,
                 round(stats.mean_gap, 2), round(stats.cv, 3)]
            )
        results[name] = per
    table = format_table(
        ["scheduler", "flow", "services", "min gap", "max gap",
         "mean gap", "gap CV"],
        rows,
        title=(
            f"E2: inter-service distance, {n_flows} backlogged flows "
            f"(total weight {total_weight}); lower CV and max gap = smoother"
        ),
    )
    _emit(table, quiet)
    return results


# ---------------------------------------------------------------------------
# E3 — end-to-end delay in the dumbbell
# ---------------------------------------------------------------------------

def e3_end_to_end_delay(
    schedulers: Sequence[str] = ("srr", "drr", "wrr", "wfq"),
    *,
    duration: float = 8.0,
    n_background: int = 500,
    repeats: int = 1,
    base_seed: int = 1,
    quiet: bool = False,
) -> Dict:
    """The Fig. 8 dumbbell: delays of f1 (32 kb/s) and f2 (1024 kb/s) (E3).

    ``repeats > 1`` reruns each scheduler over that many best-effort
    sample paths (seeds ``base_seed, base_seed+10, ...``) and reports the
    mean with a 95% confidence half-width on the max-delay column.
    """
    from ..analysis.stats import summarize_replications

    rows = []
    results: Dict[str, Dict] = {}
    for name in schedulers:
        replicated: Dict[str, Dict[str, List[float]]] = {
            "f1": {"mean": [], "p99": [], "max": [], "count": []},
            "f2": {"mean": [], "p99": [], "max": [], "count": []},
        }
        for rep in range(repeats):
            net = dumbbell_network(
                name,
                n_background=n_background,
                seed=base_seed + 10 * rep,
            )
            net.run(until=duration)
            for fid in ("f1", "f2"):
                stats = summarize_delays(net.sinks.delays(fid))
                replicated[fid]["mean"].append(stats.mean * 1e3)
                replicated[fid]["p99"].append(stats.p99 * 1e3)
                replicated[fid]["max"].append(stats.maximum * 1e3)
                replicated[fid]["count"].append(stats.count)
        per = {}
        for fid in ("f1", "f2"):
            max_summary = summarize_replications(replicated[fid]["max"])
            per[fid] = {
                "mean_ms": sum(replicated[fid]["mean"]) / repeats,
                "p99_ms": sum(replicated[fid]["p99"]) / repeats,
                "max_ms": max_summary.mean,
                "max_ci95_ms": max_summary.ci95,
                "packets": int(sum(replicated[fid]["count"]) / repeats),
            }
            rows.append(
                [name, fid, per[fid]["packets"],
                 round(per[fid]["mean_ms"], 2),
                 round(per[fid]["p99_ms"], 2),
                 round(per[fid]["max_ms"], 2),
                 round(max_summary.ci95, 2)]
            )
        results[name] = per
    table = format_table(
        ["scheduler", "flow", "packets", "mean ms", "p99 ms", "max ms",
         "±95% CI"],
        rows,
        title=(
            f"E3: end-to-end delay, dumbbell with {n_background} background "
            f"flows + Pareto best-effort, {duration:.0f}s simulated, "
            f"{repeats} replication(s)"
        ),
    )
    _emit(table, quiet)
    return results


# ---------------------------------------------------------------------------
# E4 — delay vs number of flows
# ---------------------------------------------------------------------------

def e4_delay_vs_n(
    schedulers: Sequence[str] = ("srr", "drr", "wfq"),
    n_values: Sequence[int] = (16, 64, 128, 256, 512),
    *,
    duration: float = 4.0,
    quiet: bool = False,
) -> Dict:
    """Tagged-flow max delay as N grows (E4, Theorem 1's linear-in-N).

    Includes the SRR analytic bound column (Lemma 2) for comparison.
    """
    rows = []
    results: Dict[str, Dict[int, float]] = {name: {} for name in schedulers}
    results["bound_ms"] = {}
    tagged_rate = 32_000
    # Fixed path components of single_bottleneck_network: access
    # serialisation + access propagation + bottleneck serialisation +
    # bottleneck propagation. The scheduler bound sits on top of these.
    base_delay = (
        MTU * 8.0 / (10 * BOTTLENECK_BPS)
        + 0.0005
        + MTU * 8.0 / BOTTLENECK_BPS
        + 0.001
    )
    for n in n_values:
        bound = base_delay + srr_delay_bound(
            weight=max(1, round(tagged_rate / WEIGHT_UNIT_BPS)),
            n_flows=n + 1,
            packet_size=MTU,
            link_rate_bps=BOTTLENECK_BPS,
            weight_unit_bps=WEIGHT_UNIT_BPS,
        )
        results["bound_ms"][n] = bound * 1e3
        row = [n, round(bound * 1e3, 2)]
        for name in schedulers:
            net = single_bottleneck_network(
                name, n, tagged_rate_bps=tagged_rate
            )
            net.run(until=duration)
            delays = net.sinks.delays("tag")
            worst = max(delays) * 1e3 if delays else float("nan")
            results[name][n] = worst
            row.append(round(worst, 2))
        rows.append(row)
    table = format_table(
        ["N", "SRR bound ms"] + [f"{n} max ms" for n in schedulers],
        rows,
        title=(
            "E4: worst end-to-end delay of a 32 kb/s flow vs number of "
            "competing flows (saturated 10 Mb/s bottleneck)"
        ),
    )
    _emit(table, quiet)
    return results


# ---------------------------------------------------------------------------
# E5 — scheduling cost vs N (the O(1) claim)
# ---------------------------------------------------------------------------

def e5_scheduling_cost(
    schedulers: Sequence[str] = (
        "srr", "drr", "wrr", "strr", "wfq", "scfq", "stfq", "wf2q+", "vc",
        "g3", "rrr",
    ),
    n_values: Sequence[int] = (16, 64, 256, 1024, 4096),
    *,
    measure: int = 3000,
    time_it: bool = False,
    quiet: bool = False,
) -> Dict:
    """Elementary operations (and optionally wall time) per packet vs N (E5)."""
    rows = []
    results: Dict[str, Dict[int, float]] = {name: {} for name in schedulers}
    for name in schedulers:
        for n in n_values:
            kwargs = {}
            if name == "g3":
                kwargs["capacity"] = 1 << (n.bit_length() + 1)
            if name == "rrr":
                kwargs["capacity"] = 1 << (n.bit_length() + 1)
            mean_ops, worst_ops = ops_per_packet(
                name, n, measure=measure, **kwargs
            )
            results[name][n] = mean_ops
            row = [name, n, round(mean_ops, 2), worst_ops]
            if time_it:
                row.append(round(_time_per_packet(name, n, **kwargs) * 1e6, 3))
            rows.append(row)
    headers = ["scheduler", "N", "ops/packet", "worst ops"]
    if time_it:
        headers.append("us/packet")
    table = format_table(
        headers,
        rows,
        title="E5: per-packet scheduling cost vs number of flows "
              "(flat = O(1); growing = O(log N) or worse)",
    )
    _emit(table, quiet)
    return results


def _time_per_packet(name: str, n_flows: int, **kwargs) -> float:
    sched = build_loaded_scheduler(
        name, {i: 1 for i in range(n_flows)}, packets_per_flow=3, **kwargs
    )
    count = min(2000, 3 * n_flows)
    start = time.perf_counter()
    for _ in range(count):
        sched.dequeue()
    return (time.perf_counter() - start) / count


# ---------------------------------------------------------------------------
# E6 — fairness table
# ---------------------------------------------------------------------------

def e6_fairness(
    schedulers: Sequence[str] = ("srr", "wrr", "drr", "wfq", "scfq", "rr"),
    *,
    n_flows: int = 16,
    rounds: int = 12,
    quiet: bool = False,
) -> Dict:
    """Throughput Jain index, worst normalised lag and SFI-style gap
    spread in a saturated single node (E6, claim C2)."""
    weights = geometric_weights(n_flows, max_exponent=3)
    total = sum(weights.values())
    rows = []
    results: Dict[str, Dict] = {}
    for name in schedulers:
        kwargs = {"quantum": MTU} if name == "drr" else {}
        sched = build_loaded_scheduler(
            name,
            weights,
            packets_per_flow=rounds * max(weights.values()) + 8,
            **kwargs,
        )
        seq = service_sequence(sched, rounds * total)
        counts = {f: seq.count(f) for f in weights}
        shares = [counts[f] / weights[f] for f in weights]
        jain = jain_index(shares)
        # Synthetic trace: slot index as time (fixed L makes this exact).
        trace = [(float(i), fid, MTU) for i, fid in enumerate(seq)]
        lag = worst_case_lag(trace, weights)
        worst_lag_pkts = max(lag.values()) / MTU
        rows.append([name, round(jain, 4), round(worst_lag_pkts, 2)])
        results[name] = {"jain": jain, "worst_lag_packets": worst_lag_pkts}
    table = format_table(
        ["scheduler", "Jain (weighted)", "worst lag (packets)"],
        rows,
        title=(
            f"E6: weighted fairness over {rounds} rounds, {n_flows} "
            "backlogged flows (Jain of service/weight; fluid-lag in packets)"
        ),
    )
    _emit(table, quiet)
    return results


# ---------------------------------------------------------------------------
# E7 — throughput guarantees under overload
# ---------------------------------------------------------------------------

def e7_guarantees(
    schedulers: Sequence[str] = ("srr", "drr", "wfq", "fifo"),
    *,
    duration: float = 6.0,
    n_background: int = 100,
    quiet: bool = False,
) -> Dict:
    """Reserved flows' goodput vs reservation with best-effort overload (E7).

    FIFO is included to show the failure mode the QoS schedulers prevent.
    """
    rows = []
    results: Dict[str, Dict] = {}
    warmup = min(1.0, duration / 4)
    for name in schedulers:
        # Heavy overload: the two best-effort sources alone offer ~1.6x
        # the bottleneck rate, so without isolation the reserved flows
        # queue behind a permanently growing best-effort backlog.
        net = dumbbell_network(
            name,
            n_background=n_background,
            best_effort_peak_bps=16_000_000,
            be_max_queue=2000,
        )
        net.run(until=duration)
        per = {}
        for fid, reserved in (("f1", 32_000), ("f2", 1_024_000)):
            rec = net.sinks.flow(fid)
            goodput = rec.throughput_bps(warmup, duration)
            delays = net.sinks.delays(fid)
            max_ms = max(delays) * 1e3 if delays else float("nan")
            per[fid] = {
                "goodput_bps": goodput,
                "reserved_bps": reserved,
                "max_ms": max_ms,
            }
            rows.append(
                [name, fid, reserved / 1e3, round(goodput / 1e3, 1),
                 round(goodput / reserved, 3), round(max_ms, 1)]
            )
        results[name] = per
    table = format_table(
        ["scheduler", "flow", "reserved kb/s", "goodput kb/s", "ratio",
         "max delay ms"],
        rows,
        title=(
            f"E7: reserved-flow goodput under best-effort overload, "
            f"{n_background} background flows, {duration:.0f}s"
        ),
    )
    _emit(table, quiet)
    return results


# ---------------------------------------------------------------------------
# E8 — G-3 vs SRR vs RRR (the supplied text's Fig. 9)
# ---------------------------------------------------------------------------

def e8_g3_comparison(
    schedulers: Sequence[str] = ("g3", "srr", "rrr"),
    *,
    duration: float = 8.0,
    n_background: int = 500,
    quiet: bool = False,
) -> Dict:
    """Extension experiment: the follow-on paper's Fig. 9 comparison (E8).

    Analytic G-3 end-to-end bounds for the two bottleneck hops plus 20 ms
    propagation: ~122 ms for f1, ~25.8 ms for f2 — printed alongside.
    """
    capacity_units = BOTTLENECK_BPS // WEIGHT_UNIT_BPS
    bounds = {
        "f1": end_to_end_bound(
            0, 32_000,
            [g3_delay_bound(2, capacity_units, MTU, BOTTLENECK_BPS)] * 2,
        ) + 0.020 + 2 * 0.001,
        "f2": end_to_end_bound(
            0, 1_024_000,
            [g3_delay_bound(64, capacity_units, MTU, BOTTLENECK_BPS)] * 2,
        ) + 0.020 + 2 * 0.001,
    }
    rows = []
    results: Dict[str, Dict] = {"bounds": {k: v * 1e3 for k, v in bounds.items()}}
    for name in schedulers:
        net = dumbbell_network(name, n_background=n_background)
        net.run(until=duration)
        per = {}
        for fid in ("f1", "f2"):
            delays = net.sinks.delays(fid)
            stats = summarize_delays(delays)
            per[fid] = {"max_ms": stats.maximum * 1e3,
                        "mean_ms": stats.mean * 1e3}
            rows.append(
                [name, fid,
                 round(stats.mean * 1e3, 2),
                 round(stats.maximum * 1e3, 2),
                 round(bounds[fid] * 1e3, 1) if name == "g3" else "-"]
            )
        results[name] = per
    table = format_table(
        ["scheduler", "flow", "mean ms", "max ms", "G-3 bound ms"],
        rows,
        title=(
            "E8 [ext]: Fig. 9 of the follow-on text — G-3 vs SRR vs RRR "
            f"end-to-end delays ({n_background} bg flows, {duration:.0f}s)"
        ),
    )
    _emit(table, quiet)
    return results


# ---------------------------------------------------------------------------
# E9 — space-time tradeoffs
# ---------------------------------------------------------------------------

def e9_space_time(
    *,
    wss_order: int = 16,
    stored_order: int = 9,
    lookups: int = 20000,
    quiet: bool = False,
) -> Dict:
    """WSS storage strategies and TArray expansion ablation (E9).

    Compares stored entries and per-term lookup time for: the paper's
    materialised array, the fold-onto-smaller-table tradeoff, and the
    closed form; plus G-3 TArray partial expansion (space vs extra walk).
    """
    # --- WSS strategies ---------------------------------------------------
    cursor = WSSCursor(wss_order)
    materialized = MaterializedWSS(wss_order)
    folded = FoldedWSS(wss_order, stored_order)
    length = (1 << wss_order) - 1

    def time_lookups(fn) -> float:
        start = time.perf_counter()
        for i in range(1, lookups + 1):
            fn(1 + (i * 2654435761) % length)
        return (time.perf_counter() - start) / lookups

    def cursor_term(_pos: int) -> int:
        return cursor.advance()

    wss_rows = [
        ["closed form (v2+1)", 0, round(time_lookups(cursor_term) * 1e9, 1)],
        ["materialised 2^k", materialized.storage_entries,
         round(time_lookups(materialized.term) * 1e9, 1)],
        [f"folded onto 2^{stored_order}", folded.storage_entries,
         round(time_lookups(folded.term) * 1e9, 1)],
    ]
    # --- TArray expansion ablation -----------------------------------------
    tarray_rows = []
    tarray_results = {}
    for expanded in (None, 6, 3, 0):
        sched = G3Scheduler(capacity=255, expanded_levels=expanded)
        for i in range(64):
            sched.add_flow(i, 1)
            sched.enqueue(Packet(i, MTU))
        for i in range(64):
            sched.enqueue(Packet(i, MTU, seq=1))
        storage = sum(
            t.tarray.storage_entries for t in sched.trees.values()
        )
        count = 128
        start = time.perf_counter()
        for _ in range(count):
            sched.dequeue()
        per_packet = (time.perf_counter() - start) / count
        label = "full" if expanded is None else f"top {expanded} levels"
        tarray_rows.append([label, storage, round(per_packet * 1e6, 2)])
        tarray_results[label] = {"storage": storage, "us": per_packet * 1e6}
    table = format_table(
        ["WSS strategy", "stored entries", "ns/term"],
        wss_rows,
        title=f"E9a: WSS^{wss_order} storage strategies",
    )
    _emit(table, quiet)
    table2 = format_table(
        ["TArray expansion", "stored entries", "us/packet"],
        tarray_rows,
        title="E9b: G-3 TArray partial expansion (capacity 255, 64 flows)",
    )
    _emit(table2, quiet)
    return {
        "wss": {row[0]: {"entries": row[1], "ns": row[2]} for row in wss_rows},
        "tarray": tarray_results,
    }


# ---------------------------------------------------------------------------
# E11 — variable packet sizes (the "multi-service" in the title)
# ---------------------------------------------------------------------------

def e11_variable_packet_sizes(
    *,
    rounds: int = 300,
    small: int = 64,
    large: int = 1500,
    quiet: bool = False,
) -> Dict:
    """Byte fairness under bimodal packet sizes (E11).

    Two equal-weight flows, one sending ``small``-byte packets and one
    ``large``-byte packets, saturate a scheduler. The paper's base model
    fixes the packet size; its title targets *multi-service* networks, so
    the variable-size behaviour matters:

    * SRR in ``packet`` mode is packet-fair, hence byte-UNfair (the
      large-packet flow wins by ``large/small``);
    * SRR in ``deficit`` mode (the variable-size variant) restores byte
      fairness while keeping the WSS spreading;
    * DRR and the timestamp schedulers are byte-fair by construction.
    """
    cases = [
        ("srr packet", "srr", {"mode": "packet"}),
        ("srr deficit", "srr", {"mode": "deficit", "quantum": large}),
        ("drr", "drr", {"quantum": large}),
        ("wfq", "wfq", {}),
    ]
    rows = []
    results: Dict[str, float] = {}
    for label, name, kwargs in cases:
        sched = create_scheduler(name, **kwargs)
        sched.add_flow("small", 1)
        sched.add_flow("large", 1)
        # Deep backlogs so NEITHER flow drains inside the measurement —
        # the byte split is only meaningful while both are backlogged.
        for i in range(rounds * (large // small + 2)):
            sched.enqueue(Packet("small", small, seq=i))
        for i in range(rounds * 3):
            sched.enqueue(Packet("large", large, seq=i))
        sent = {"small": 0, "large": 0}
        budget_bytes = rounds * 2 * large
        served = 0
        while served < budget_bytes:
            packet = sched.dequeue()
            if packet is None:
                break
            sent[packet.flow_id] += packet.size
            served += packet.size
        ratio = sent["large"] / max(sent["small"], 1)
        results[label] = ratio
        rows.append(
            [label, sent["small"], sent["large"], round(ratio, 3)]
        )
    table = format_table(
        ["scheduler", "small-flow bytes", "large-flow bytes",
         "byte ratio (1.0 = fair)"],
        rows,
        title=(
            f"E11: byte fairness, equal weights, {small} B vs {large} B "
            "packets (saturated)"
        ),
    )
    _emit(table, quiet)
    return results


# ---------------------------------------------------------------------------
# E10 — measured delay vs analytic bound
# ---------------------------------------------------------------------------

def e10_bound_validation(
    *,
    n_flows: int = 40,
    rounds: int = 30,
    quiet: bool = False,
) -> Dict:
    """Measured worst lag vs analytic bound for SRR, G-3 and RRR (E10).

    Single node in slot time: every dequeue is one ``L/C`` transmission.
    A tagged flow (several weights) stays backlogged among ``n_flows``
    unit-weight competitors; its per-packet finish times are compared to
    the ideal ``i * L / r`` service (Definition 1) and the worst lag must
    stay below the scheduler's bound.
    """
    link = BOTTLENECK_BPS
    packet_time = MTU * 8.0 / link
    rows = []
    results: Dict[str, List] = {"srr": [], "g3": [], "rrr": []}
    cases = [1, 2, 4, 7, 12, 32]
    capacity_units = 1 << (n_flows + 40).bit_length()
    rrr_capacity = 1 << (n_flows + 40).bit_length()
    for weight in cases:
        for name in ("srr", "g3", "rrr"):
            kwargs = {}
            # The slotted schedulers are validated at full reservation so
            # every slot is busy (idle-slot skipping would otherwise let
            # the work-conserving emulation finish early and trivialise
            # the bound check).
            if name == "g3":
                kwargs["capacity"] = capacity_units
                competitors = capacity_units - weight
            elif name == "rrr":
                kwargs["capacity"] = rrr_capacity
                competitors = rrr_capacity - weight
            else:
                competitors = n_flows
            # Register the tagged flow AFTER half the competitors so it
            # does not land in the most favourable slot/scan position.
            weights: Dict[Hashable, float] = {}
            weights.update({f"bg{i}": 1 for i in range(competitors // 2)})
            weights["tag"] = weight
            weights.update(
                {f"bg{i}": 1 for i in range(competitors // 2, competitors)}
            )
            sched = create_scheduler(name, **kwargs)
            for fid, w in weights.items():
                sched.add_flow(fid, w)
            # Keep every flow backlogged for the whole measurement with
            # per-flow packet counts proportional to its weight.
            for fid, w in weights.items():
                for seq_no in range(rounds * int(w) + 8):
                    sched.enqueue(Packet(fid, MTU, seq=seq_no))
            total = sum(int(w) for w in weights.values())
            finish, slot = [], 0
            budget = rounds * total
            while len(finish) < rounds * weight and slot < budget:
                packet = sched.dequeue()
                if packet is None:
                    break
                slot += 1
                if packet.flow_id == "tag":
                    finish.append(slot * packet_time)
            rate = weight / (capacity_units if name in ("g3", "rrr") else total) * link
            if name == "srr":
                rate = weight / total * link
                bound = srr_delay_bound(
                    weight, n_flows + 1, MTU, link, link / total
                )
            elif name == "g3":
                rate = weight / capacity_units * link
                bound = g3_delay_bound(weight, capacity_units, MTU, link)
            else:
                rate = weight / rrr_capacity * link
                bound = rrr_delay_bound(weight, rrr_capacity, MTU, link)
            measured = max_ideal_lag(finish, rate, MTU)
            ok = measured <= bound + 1e-9
            results[name].append(
                {"weight": weight, "measured": measured, "bound": bound,
                 "ok": ok}
            )
            rows.append(
                [name, weight, round(measured * 1e3, 3),
                 round(bound * 1e3, 3), ok]
            )
    table = format_table(
        ["scheduler", "weight", "measured ms", "bound ms", "within bound"],
        rows,
        title=(
            f"E10: measured worst lag vs analytic bound "
            f"({n_flows} unit-weight competitors, slot-time model)"
        ),
    )
    _emit(table, quiet)
    return results


# ---------------------------------------------------------------------------
# E12 — admission control and delay quotes (the control plane)
# ---------------------------------------------------------------------------

def e12_admission_quotes(
    schedulers: Sequence[str] = ("srr", "drr", "g3", "wfq", "fifo"),
    *,
    rate_bps: float = 1_024_000,
    sigma_bytes: float = 600.0,
    validate: bool = True,
    quiet: bool = False,
) -> Dict:
    """End-to-end delay quotes per discipline + empirical validation (E12).

    The call admission controller quotes Corollary-1 bounds for the same
    reservation under each discipline. The table captures the paper's
    practical consequence: SRR's N-dependent bound forces worst-case-N
    quotes (huge), G-3's Theorem 2 quotes are N-independent (tight), the
    timestamp schedulers quote tightly but pay per-packet cost, FIFO can
    promise nothing. With ``validate`` the SRR quote is checked by
    saturating the path and measuring.
    """
    from ..net.scenario import Network
    from ..net.shaping import TokenBucketShaper
    from ..net.sources import CBRSource
    from ..qos import AdmissionController

    def build(scheduler: str) -> Network:
        kwargs = {"capacity": 625} if scheduler == "g3" else {}
        net = Network(default_scheduler=scheduler,
                      default_scheduler_kwargs=kwargs)
        for n in ("edge", "core1", "core2", "exit"):
            net.add_node(n)
        net.add_link("edge", "core1", rate_bps=100e6, delay=0.001)
        net.add_link("core1", "core2", rate_bps=BOTTLENECK_BPS, delay=0.010)
        net.add_link("core2", "exit", rate_bps=BOTTLENECK_BPS, delay=0.010)
        return net

    rows = []
    results: Dict[str, Dict] = {}
    for scheduler in schedulers:
        unit = (
            BOTTLENECK_BPS / 625 if scheduler == "g3" else WEIGHT_UNIT_BPS
        )
        cac = AdmissionController(build(scheduler), weight_unit_bps=unit)
        quote = cac.request(
            "video", "edge", "exit", rate_bps, sigma_bytes=sigma_bytes
        ).quote
        results[scheduler] = {
            "total_ms": quote.milliseconds(),
            "guaranteed": quote.guaranteed,
        }
        rows.append([
            scheduler,
            round(quote.milliseconds(), 2),
            round(sum(quote.per_hop) * 1e3, 2),
            quote.guaranteed,
        ])
    measured_ms = None
    if validate:
        net = build("srr")
        cac = AdmissionController(net, weight_unit_bps=WEIGHT_UNIT_BPS)
        res = cac.request(
            "video", "edge", "exit", rate_bps, sigma_bytes=sigma_bytes
        )
        shaper = TokenBucketShaper(sigma_bytes=sigma_bytes, rate_bps=rate_bps)
        net.attach_source(
            "video", CBRSource(rate_bps, MTU), shaper=shaper
        )
        i = 0
        while True:
            try:
                fid = f"bg{i}"
                cac.request(fid, "edge", "exit", WEIGHT_UNIT_BPS)
                net.attach_source(fid, CBRSource(WEIGHT_UNIT_BPS, MTU))
                i += 1
            except Exception:
                break
        net.run(until=4.0)
        delays = net.sinks.delays("video")
        measured_ms = max(delays) * 1e3
        results["validation"] = {
            "competitors": i,
            "measured_max_ms": measured_ms,
            "quote_ms": res.quote.milliseconds(),
            "within_quote": measured_ms <= res.quote.milliseconds(),
        }
    table = format_table(
        ["scheduler", "e2e quote ms", "sched part ms", "guaranteed"],
        rows,
        title=(
            f"E12: CAC delay quotes for a {rate_bps / 1e3:.0f} kb/s "
            f"(sigma={sigma_bytes:.0f}B) reservation over two 10 Mb/s hops"
            + (
                f"; SRR quote validated under saturation: measured "
                f"{measured_ms:.1f} ms" if measured_ms is not None else ""
            )
        ),
    )
    _emit(table, quiet)
    return results
