"""Time-Slot Sequence (TSS) and bit-reversal — Definitions 4-5 of the
author's follow-on (G-3) paper.

``TSS^n`` spreads the ``2^n`` leaves of a perfect binary tree of depth
``n`` into the order the RRR flip-bit walk would visit them::

    TSS^0 = (0)
    b_i^n = 2 * b_i^(n-1)              for 0 <= i < 2^(n-1)
    b_i^n = 2 * b_(i-2^(n-1))^(n-1)+1  for 2^(n-1) <= i < 2^n

Lemma 4 gives the closed form ``b_i^n = RB(i, n)`` — the *bit reversal*
of ``i`` in ``n`` bits — which this module uses directly (and the tests
cross-validate against the recursion).

Lemma 5 is the even-spreading property the extensions rely on: the leaves
owned by tree node ``v(l, i)`` occupy positions ``RB(i, l) + y * 2^l`` of
``TSS^n`` — a perfectly regular stride-``2^l`` comb. Those positions are
what :func:`node_slot_positions` returns; the G-3 Time-Slot Array writes a
flow id into exactly those entries.
"""

from __future__ import annotations

from typing import Iterator, List

from ..core.errors import ConfigurationError

__all__ = [
    "reverse_bits",
    "tss_term",
    "tss_sequence",
    "tss_sequence_recursive",
    "node_slot_positions",
    "first_slot_after",
]


def reverse_bits(value: int, width: int) -> int:
    """``RB(value, width)``: reverse the ``width``-bit binary representation.

    Examples from the paper: ``RB(0b011, 3) == 0b110 == 6`` and
    ``RB(0b0001, 4) == 0b1000 == 8``.
    """
    if width < 0:
        raise ConfigurationError(f"width must be >= 0, got {width}")
    if not 0 <= value < (1 << width):
        raise ConfigurationError(
            f"value {value} does not fit in {width} bits"
        )
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def tss_term(index: int, order: int) -> int:
    """The ``index``-th term of ``TSS^order`` (0-based) via Lemma 4."""
    if order < 0:
        raise ConfigurationError(f"order must be >= 0, got {order}")
    if not 0 <= index < (1 << order):
        raise ConfigurationError(
            f"index {index} outside TSS^{order} (size {1 << order})"
        )
    return reverse_bits(index, order)


def tss_sequence(order: int) -> List[int]:
    """Materialise ``TSS^order`` (a permutation of ``0 .. 2^order - 1``)."""
    return [tss_term(i, order) for i in range(1 << order)]


def tss_sequence_recursive(order: int) -> List[int]:
    """``TSS^order`` by the paper's recursion (Definition 4); for tests."""
    if order < 0:
        raise ConfigurationError(f"order must be >= 0, got {order}")
    seq = [0]
    for _ in range(order):
        seq = [2 * b for b in seq] + [2 * b + 1 for b in seq]
    return seq


def iter_tss(order: int) -> Iterator[int]:
    """Yield ``TSS^order`` lazily."""
    for i in range(1 << order):
        yield reverse_bits(i, order)


def node_slot_positions(level: int, index: int, order: int) -> List[int]:
    """Positions in ``TSS^order`` of the leaves owned by node ``v(level, index)``.

    By Lemma 5 these are ``RB(index, level) + y * 2^level`` for
    ``y = 0 .. 2^(order-level) - 1`` — evenly spread with stride
    ``2^level``.
    """
    if not 0 <= level <= order:
        raise ConfigurationError(
            f"level {level} outside tree of depth {order}"
        )
    if not 0 <= index < (1 << level):
        raise ConfigurationError(f"node index {index} invalid at level {level}")
    base = reverse_bits(index, level)
    stride = 1 << level
    return [base + y * stride for y in range(1 << (order - level))]


def first_slot_after(position: int, level: int, index: int, order: int) -> int:
    """First slot position >= ``position`` (mod ``2^order``) belonging to
    node ``v(level, index)``.

    This is the paper's rule for carrying out TArray updates "in front of"
    the running Schedule pointer: ``x = (RB(i, l) + y * 2^l) mod 2^n`` with
    ``y = ceil((p - RB(i, l)) / 2^l)``.
    """
    size = 1 << order
    if not 0 <= position < size:
        raise ConfigurationError(f"position {position} outside TArray^{order}")
    base = reverse_bits(index, level)
    stride = 1 << level
    y = -(-(position - base) // stride)  # ceil division
    return (base + y * stride) % size
