"""The author's follow-on schedulers (RRR, G-3) and their data structures.

These are *extensions*: the titled paper's contribution is SRR
(:mod:`repro.core`); RRR is the prior scheduler G-3 borrows its trees
from, and G-3 is the author's later combination of SRR's WSS with those
trees. They are implemented here (a) as additional comparators for the
benchmark suite (experiment E8 reproduces the supplied text's Fig. 9) and
(b) because they exercise the WSS machinery from a second angle.

Importing this package registers ``"rrr"`` and ``"g3"`` in the scheduler
registry.
"""

from ..schedulers.registry import register_scheduler
from .g3 import G3Scheduler
from .pwbt import PWBTAllocator
from .rrr import RRRScheduler
from .tarray import TimeSlotArray
from .tss import (
    first_slot_after,
    node_slot_positions,
    reverse_bits,
    tss_sequence,
    tss_sequence_recursive,
    tss_term,
)

register_scheduler(G3Scheduler.name, G3Scheduler)
register_scheduler(RRRScheduler.name, RRRScheduler)

__all__ = [
    "G3Scheduler",
    "PWBTAllocator",
    "RRRScheduler",
    "TimeSlotArray",
    "first_slot_after",
    "node_slot_positions",
    "reverse_bits",
    "tss_sequence",
    "tss_sequence_recursive",
    "tss_term",
]
