"""Time-Slot Array (TArray) — the flattened, pre-spread PWBT of G-3.

``TArray^n[p]`` holds the id of the flow owning leaf ``v(n, RB(p, n))`` of
the depth-``n`` PWBT: reading the array left to right reproduces exactly
the service order of RRR's flip-bit tree walk, but each lookup is a single
array read — this is how G-3 removes RRR's O(depth) per-slot cost.

Updating the array when a block ``(offset, e)`` changes owner touches the
``2^(n-l)`` evenly spaced positions of Lemma 5 (stride ``2^l`` where
``l = n - e``); :meth:`TimeSlotArray.write_block` performs that comb
write. The paper notes the update can be pipelined ahead of the running
schedule pointer (``first_slot_after``); the simulator applies updates
atomically between slots, which is behaviourally equivalent at slot
granularity.

The paper's space-time tradeoff for very deep trees (expand only the top
``t`` levels into the array and walk the remaining ``n - t`` levels) is
provided by the ``expanded_levels`` parameter and ablated in E9.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from ..core.errors import ConfigurationError
from .tss import node_slot_positions, reverse_bits

__all__ = ["TimeSlotArray"]


class TimeSlotArray:
    """The spread representation of one depth-``n`` PWBT.

    Args:
        depth: Tree depth ``n``; the array has ``2^n`` entries.
        expanded_levels: How many top levels are expanded into the array.
            ``None`` (default) expands all of them (one array read per
            slot). With ``t < n`` the array stores ``2^t`` entries and a
            lookup walks the remaining ``n - t`` levels of sub-tree —
            trading ``2^(n-t)``-fold space reduction for ``n - t`` extra
            operations, exactly the paper's Section IV-B scheme.
    """

    def __init__(self, depth: int, *, expanded_levels: Optional[int] = None) -> None:
        if not 0 <= depth <= 30:
            raise ConfigurationError(f"depth must be in 0..30, got {depth}")
        if expanded_levels is None:
            expanded_levels = depth
        if not 0 <= expanded_levels <= depth:
            raise ConfigurationError(
                f"expanded_levels must be in 0..{depth}, got {expanded_levels}"
            )
        self.depth = depth
        self.expanded_levels = expanded_levels
        self.size = 1 << depth
        # With full expansion: slots[p] = owner of leaf RB(p, depth).
        # With partial expansion: slots[p] = *sub-tree base offset* of node
        # v(t, RB(p, t)); lookups walk the allocation map below that node.
        self._slots: List[Optional[Hashable]] = [None] * (1 << expanded_levels)
        # Sub-tree owner map used only under partial expansion:
        # (offset, exponent) blocks, queried through `owner_lookup`.
        self._owner_lookup = None

    # -- fully expanded operation -------------------------------------

    def write_block(self, offset: int, exponent: int, owner: Optional[Hashable]) -> int:
        """Set every slot of block ``(offset, exponent)`` to ``owner``.

        Returns the number of array entries written. Under partial
        expansion only the covered top-level entries are rewritten (the
        walk resolves the rest), which is why updates stay cheap there.
        """
        self._check_block(offset, exponent)
        n = self.depth
        level = n - exponent
        t = self.expanded_levels
        if level <= t:
            # The block spans whole expanded-level nodes: write the comb
            # of node v(level, offset >> exponent) at the expanded depth.
            index = offset >> exponent
            positions = node_slot_positions(level, index, t)
            for p in positions:
                self._slots[p] = owner
            return len(positions)
        # Block lies strictly below the expanded levels: nothing stored
        # here; the walk resolves it via the owner lookup.
        return 0

    def set_owner_lookup(self, fn) -> None:
        """Install the sub-tree owner resolver used under partial expansion.

        ``fn(slot_index) -> owner`` must return the flow owning leaf
        ``slot_index`` (tree coordinates, not TArray coordinates).
        """
        self._owner_lookup = fn

    def owner(self, position: int) -> Optional[Hashable]:
        """Flow occupying TArray ``position`` (the Schedule lookup)."""
        if not 0 <= position < self.size:
            raise ConfigurationError(
                f"position {position} outside TArray of size {self.size}"
            )
        t = self.expanded_levels
        n = self.depth
        if t == n:
            return self._slots[position]
        # Partial expansion: position p maps to leaf RB(p, n). Its top-t
        # node is the leaf's first t address bits.
        leaf = reverse_bits(position, n)
        top_index = leaf >> (n - t)
        stored = self._slots[reverse_bits(top_index, t)]
        if stored is not None:
            return stored
        if self._owner_lookup is None:
            return None
        return self._owner_lookup(leaf)

    def service_order(self):
        """The full slot-owner sequence (testing/diagnostics; O(size))."""
        return [self.owner(p) for p in range(self.size)]

    @property
    def storage_entries(self) -> int:
        """Stored entries (E9 space accounting)."""
        return len(self._slots)

    def _check_block(self, offset: int, exponent: int) -> None:
        if not 0 <= exponent <= self.depth:
            raise ConfigurationError(f"bad exponent {exponent}")
        if offset % (1 << exponent) or not 0 <= offset < self.size:
            raise ConfigurationError(
                f"bad block offset {offset} for exponent {exponent}"
            )

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"TimeSlotArray(depth={self.depth}, "
            f"expanded={self.expanded_levels})"
        )
