"""RRR — the Recursive Round Robin scheduler (Garg & Chen, 1999).

RRR is the *delay-friendly but slow* half of the pair of schedulers the
SRR author later combined into G-3. The output link is modelled as
``2^g`` unit time-slots per round, organised as a Weighted Binary Tree:
node ``v(l, i)`` stands for ``2^(g-l)`` slots. A flow of (slot) weight
``w = Σ 2^(e_j)`` is allocated one tree node per set bit.

Scheduling walks the tree from the root once per slot, alternating at
every intermediate node via a flip bit (Fig. 2 of the supplied text).
The walk reaches either an allocated node — that flow owns the slot — or
a free node — an idle slot, granted to best-effort traffic. The walk
costs O(g) = O(log capacity) per slot; this is exactly the complexity
problem G-3's Time-Slot Arrays remove, and experiment E5 measures it.

Delay: each single-bit allocation of weight ``2^e`` recurs with perfect
period ``2^(g-e)`` slots, so per-bit service is ideally smooth; the
weakness (Eq. 11 and the discussion under it) is that a flow's *number of
bits* ``m`` grows with the precision ``g`` of the slot grid — a 32 kb/s
flow on a 10 Mb/s link needs many bits, each contributing ``L/r`` to the
delay bound. Experiment E8 reproduces this effect against SRR and G-3.

Slot semantics under a work-conserving pull interface: slots whose owner
has no packet are offered to best-effort flows (weight 0); if nothing is
eligible the scan advances at zero cost. With a saturated link (all E8
runs) this coincides with the slotted model.
"""

from __future__ import annotations

from typing import ClassVar, Deque, Dict, Hashable, List, Optional, Tuple

from collections import deque

from ..core.errors import AdmissionError, ConfigurationError, InvalidWeightError
from ..core.flow import FlowState
from ..core.interfaces import FlowTableScheduler
from ..core.packet import Packet
from .pwbt import PWBTAllocator

__all__ = ["RRRScheduler"]


class RRRScheduler(FlowTableScheduler):
    """Recursive Round Robin over a ``2^g``-slot Weighted Binary Tree.

    Args:
        capacity: Slots per round; must be a power of two (the paper
            normalises the link rate to 1 and codes weights as ``g``-bit
            binary fractions, which is the same thing).

    Weights are integer slot counts (``weight / capacity`` of the link);
    a weight of 0 registers a best-effort flow served in idle slots.
    """

    name: ClassVar[str] = "rrr"
    requires_integer_weights: ClassVar[bool] = False  # validated manually
    supports_zero_weight: ClassVar[bool] = True

    def __init__(self, capacity: int = 256, **kwargs) -> None:
        super().__init__(**kwargs)
        if capacity < 1 or capacity & (capacity - 1):
            raise ConfigurationError(
                f"RRR capacity must be a power of two, got {capacity}"
            )
        self.capacity = capacity
        self.depth = capacity.bit_length() - 1
        self.tree = PWBTAllocator(self.depth)
        # flip[(level, index)] for intermediate nodes, default 0.
        self._flip: Dict[Tuple[int, int], int] = {}
        # flow_id -> list of (offset, exponent) blocks.
        self._blocks: Dict[Hashable, List[Tuple[int, int]]] = {}
        self._best_effort: Deque[Hashable] = deque()

    # -- flow management ---------------------------------------------------

    def add_flow(
        self,
        flow_id: Hashable,
        weight: float = 1,
        *,
        max_queue: Optional[int] = None,
    ) -> None:
        if isinstance(weight, bool) or not isinstance(weight, int):
            raise InvalidWeightError(
                f"RRR weights are integer slot counts, got {weight!r}"
            )
        if weight < 0:
            raise InvalidWeightError(f"weight must be >= 0, got {weight}")
        if weight > self.capacity:
            raise AdmissionError(
                f"weight {weight} exceeds round capacity {self.capacity}"
            )
        super().add_flow(flow_id, max(weight, 1), max_queue=max_queue)
        flow = self._flows[flow_id]
        flow.weight = weight  # restore 0 for best-effort flows
        if weight == 0:
            self._best_effort.append(flow_id)
            return
        blocks: List[Tuple[int, int]] = []
        try:
            for e in _set_bits_descending(weight):
                offset = self.tree.allocate(e, flow_id)
                blocks.append((offset, e))
        except AdmissionError:
            for offset, e in blocks:
                self.tree.free(offset, e)
            del self._flows[flow_id]
            raise
        self._blocks[flow_id] = blocks

    def _on_flow_removed(self, flow: FlowState) -> None:
        for offset, e in self._blocks.pop(flow.flow_id, []):
            self.tree.free(offset, e)
        try:
            self._best_effort.remove(flow.flow_id)
        except ValueError:
            pass

    # -- scheduling --------------------------------------------------------

    def dequeue(self) -> Optional[Packet]:
        if self._backlog_packets == 0:
            return None
        # A full round of slots is guaranteed to reach every allocated
        # flow; +1 slack for the best-effort path.
        for _ in range(self.capacity + 1):
            owner = self._walk_one_slot()
            packet = self._serve_slot(owner)
            if packet is not None:
                return packet
        return None  # unreachable while backlog > 0; defensive

    def _walk_one_slot(self) -> Optional[Hashable]:
        """One root-to-allocation flip-bit walk (Fig. 2); O(depth) ops."""
        ops = self._ops
        level, index = 0, 0
        tree = self.tree
        depth = self.depth
        while True:
            ops.bump()
            exponent = depth - level
            offset = index << exponent
            entry = tree.allocation_at(offset)
            if entry is not None and entry[0] == exponent:
                return entry[1]
            if tree.is_free_block(offset, exponent):
                return None  # idle slot
            if level == depth:
                return None  # fully split but leaf unallocated (transient)
            key = (level, index)
            flip = self._flip.get(key, 0)
            self._flip[key] = flip ^ 1
            index = 2 * index + flip
            level += 1

    def _serve_slot(self, owner: Optional[Hashable]) -> Optional[Packet]:
        """Serve the slot's owner if backlogged, else best-effort traffic."""
        if owner is not None:
            flow = self._flows.get(owner)
            if flow is not None and flow.queue:
                return self._account_departure(flow.take())
        # Idle slot (or owner idle): round-robin over best-effort flows.
        be = self._best_effort
        for _ in range(len(be)):
            fid = be[0]
            be.rotate(-1)
            flow = self._flows.get(fid)
            if flow is not None and flow.queue:
                return self._account_departure(flow.take())
        return None

    # -- introspection -----------------------------------------------------

    def slot_sequence(self, count: int) -> List[Optional[Hashable]]:
        """The next ``count`` slot owners (None = idle); advances flips.

        Diagnostic mirror of the paper's Fig. 1 output line.
        """
        return [self._walk_one_slot() for _ in range(count)]

    @property
    def reserved_slots(self) -> int:
        """Currently allocated slots per round."""
        return self.tree.allocated_slots


def _set_bits_descending(value: int) -> List[int]:
    bits = []
    b = value.bit_length() - 1
    while value:
        if value >> b & 1:
            bits.append(b)
            value ^= 1 << b
        b -= 1
    return bits
