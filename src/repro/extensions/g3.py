"""G-3 — the author's follow-on scheduler combining SRR's WSS with RRR's
trees (implemented here as a clearly-labelled *extension*; the primary
contribution of this repository is SRR).

Construction (Section III-D of the supplied text):

* the link capacity ``C`` (in unit slots per round) is written in binary;
  its coefficients form the Square Weight Matrix (SWM) — at most one flow
  of weight ``2^i`` per column, here simply the bitmask of ``C``;
* for every set bit ``n_i`` of ``C`` there is a Perfect Weighted Binary
  Tree of depth ``n_i`` (:class:`~repro.extensions.pwbt.PWBTAllocator`)
  whose ``2^(n_i)`` leaves are unit time-slots, spread into a Time-Slot
  Array (:class:`~repro.extensions.tarray.TimeSlotArray`) by the
  bit-reversal Time-Slot Sequence;
* scheduling scans ``WSS^k`` (``k = ⌊log2 C⌋ + 1``): term value ``v``
  selects SWM column ``i = k - v``; if bit ``i`` of ``C`` is set, the next
  entry of ``TArray^i`` names the flow to serve, and the per-array pointer
  advances. One array read per slot — O(1), unlike RRR's O(depth) walk.

Delay: every single-bit reservation ``2^e`` placed in tree ``n`` recurs
with perfect period ``C / 2^e`` slots (Lemma 5 + Lemma 6), giving the
N-independent bound of Theorem 2 — the property SRR alone lacks.

Flow admission allocates one tree block per set bit of the flow's weight
(``Add_flow``), failing with :class:`~repro.core.errors.AdmissionError`
when fragmentation or exhaustion prevents it. ``defragment()`` implements
the paper's *Shaping* goal (at most one free block per size class) as an
atomic compaction pass: blocks are re-packed and the TArrays rewritten
between slots. The paper instead interleaves relocation with scheduling
("swapping" after a marked node's visit) to avoid a pause; at simulation
granularity the two are behaviourally equivalent, and the low-level
single-block relocation primitive is available and tested separately
(:meth:`~repro.extensions.pwbt.PWBTAllocator.relocate`).

Slot semantics under the work-conserving pull interface: a slot whose
owner has no packet queued is offered to best-effort flows (registered
with weight 0 — the paper's ``f_0``); when nothing is eligible the scan
skips ahead at zero cost. On a saturated link (experiment E8) this is
exactly the paper's slotted behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import ClassVar, Deque, Dict, Hashable, List, Optional, Tuple

from ..core.errors import (
    AdmissionError,
    ConfigurationError,
    InvalidWeightError,
)
from ..core.flow import FlowState
from ..core.interfaces import FlowTableScheduler
from ..core.packet import Packet
from .pwbt import PWBTAllocator
from .tarray import TimeSlotArray

__all__ = ["G3Scheduler"]


class _Tree:
    """One SWM column: a PWBT allocator plus its spread Time-Slot Array."""

    __slots__ = ("exponent", "allocator", "tarray", "pointer")

    def __init__(self, exponent: int, expanded_levels: Optional[int]) -> None:
        self.exponent = exponent
        self.allocator = PWBTAllocator(exponent)
        levels = exponent if expanded_levels is None else min(expanded_levels, exponent)
        self.tarray = TimeSlotArray(exponent, expanded_levels=levels)
        self.tarray.set_owner_lookup(self._leaf_owner)
        self.pointer = 0

    def _leaf_owner(self, leaf: int) -> Optional[Hashable]:
        return self.allocator.owner_at(leaf)


class G3Scheduler(FlowTableScheduler):
    """The G-3 packet scheduler (extension; see module docstring).

    Args:
        capacity: Link capacity in unit slots per WSS round. A flow of
            weight ``w`` is guaranteed ``w`` of every ``capacity`` slots.
        expanded_levels: Optional cap on TArray expansion depth (the
            space-time tradeoff of Section IV-B; ``None`` = fully
            expanded).
        auto_shape: Defragment-and-retry when an admission fails due to
            fragmentation rather than exhaustion.
    """

    name: ClassVar[str] = "g3"
    requires_integer_weights: ClassVar[bool] = False  # validated manually
    supports_zero_weight: ClassVar[bool] = True

    def __init__(
        self,
        capacity: int = 255,
        *,
        expanded_levels: Optional[int] = None,
        auto_shape: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if not isinstance(capacity, int) or capacity < 1:
            raise ConfigurationError(
                f"capacity must be a positive integer, got {capacity!r}"
            )
        self.capacity = capacity
        self.order = capacity.bit_length()  # the paper's k
        self.auto_shape = auto_shape
        # One tree per set bit of C, keyed by SWM column (bit position).
        self.trees: Dict[int, _Tree] = {
            e: _Tree(e, expanded_levels)
            for e in range(self.order)
            if capacity >> e & 1
        }
        self._wss_position = 0
        # flow_id -> list of (column, offset, exponent) slot blocks.
        self._blocks: Dict[Hashable, List[Tuple[int, int, int]]] = {}
        self._best_effort: Deque[Hashable] = deque()

    # -- flow management ---------------------------------------------------

    def add_flow(
        self,
        flow_id: Hashable,
        weight: float = 1,
        *,
        max_queue: Optional[int] = None,
    ) -> None:
        if isinstance(weight, bool) or not isinstance(weight, int):
            raise InvalidWeightError(
                f"G-3 weights are integer slot counts, got {weight!r}"
            )
        if weight < 0:
            raise InvalidWeightError(f"weight must be >= 0, got {weight}")
        super().add_flow(flow_id, max(weight, 1), max_queue=max_queue)
        flow = self._flows[flow_id]
        flow.weight = weight  # restore 0 for best-effort flows
        if weight == 0:
            self._best_effort.append(flow_id)
            return
        try:
            self._blocks[flow_id] = self._allocate_weight(flow_id, weight)
        except AdmissionError:
            del self._flows[flow_id]
            raise

    def _allocate_weight(
        self, flow_id: Hashable, weight: int
    ) -> List[Tuple[int, int, int]]:
        blocks: List[Tuple[int, int, int]] = []
        try:
            for e in _set_bits_descending(weight):
                placed = self._allocate_block(flow_id, e)
                if placed is None and self.auto_shape:
                    self.shape()
                    placed = self._allocate_block(flow_id, e)
                if placed is None:
                    raise AdmissionError(
                        f"cannot reserve 2^{e} slots for flow {flow_id!r} "
                        f"(capacity {self.capacity}, "
                        f"free {self.free_slots} slots)"
                    )
                blocks.append(placed)
        except AdmissionError:
            for column, offset, exp in blocks:
                self._release_block(column, offset, exp)
            raise
        return blocks

    def _allocate_block(
        self, flow_id: Hashable, exponent: int
    ) -> Optional[Tuple[int, int, int]]:
        """Best-fit a ``2^exponent`` block across the trees; None if full."""
        best: Optional[Tuple[int, int]] = None  # (smallest fit exponent, column)
        for column, tree in self.trees.items():
            if exponent > tree.exponent:
                continue
            for e in range(exponent, tree.exponent + 1):
                if tree.allocator.free_blocks(e):
                    if best is None or e < best[0]:
                        best = (e, column)
                    break
        if best is None:
            return None
        column = best[1]
        tree = self.trees[column]
        offset = tree.allocator.allocate(exponent, flow_id)
        tree.tarray.write_block(offset, exponent, flow_id)
        return (column, offset, exponent)

    def _release_block(self, column: int, offset: int, exponent: int) -> None:
        tree = self.trees[column]
        tree.allocator.free(offset, exponent)
        tree.tarray.write_block(offset, exponent, None)

    def _on_flow_removed(self, flow: FlowState) -> None:
        for column, offset, exponent in self._blocks.pop(flow.flow_id, []):
            self._release_block(column, offset, exponent)
        try:
            self._best_effort.remove(flow.flow_id)
        except ValueError:
            pass

    def shape_step(self) -> bool:
        """One incremental *Shaping* move (the paper's Fig. 6).

        Finds a size class with two free blocks, empties the buddy of one
        onto the other (relocating whatever allocations live there, with
        their Time-Slot Array entries), and lets the vacated buddy merge.
        Returns True when a move was performed, False when every size
        class already has at most one free block (the shaped state).

        The paper defers the swap until the marked node's next visit so
        the swapped flow is never worse off; performed atomically between
        slots (as here) the service perturbation is at most one slot at
        simulation granularity.
        """
        for e in range(self.order):
            donors = []
            receivers = []
            for column, tree in self.trees.items():
                if e > tree.exponent:
                    continue
                for off in tree.allocator.free_blocks(e):
                    receivers.append((column, off))
                    if e < tree.exponent:  # root blocks have no buddy
                        donors.append((column, off))
            if len(receivers) < 2 or not donors:
                continue
            src_col, src_free = donors[0]
            dst_col, dst_off = next(
                r for r in receivers if r != (src_col, src_free)
            )
            buddy = src_free ^ (1 << e)
            src_tree = self.trees[src_col]
            dst_tree = self.trees[dst_col]
            contents = src_tree.allocator.extract_region(buddy, e)
            dst_tree.allocator.implant_region(dst_off, e, contents)
            src_tree.tarray.write_block(buddy, e, None)
            for rel, sub_e, owner in contents:
                dst_tree.tarray.write_block(dst_off + rel, sub_e, owner)
                self._update_block_record(
                    owner,
                    (src_col, buddy + rel, sub_e),
                    (dst_col, dst_off + rel, sub_e),
                )
            return True
        return False

    def shape(self, max_steps: int = 10_000) -> int:
        """Run :meth:`shape_step` to quiescence; returns moves performed.

        Terminates because every move merges two free blocks of a size
        class into one of the next (the total free-block count strictly
        decreases)."""
        steps = 0
        while steps < max_steps and self.shape_step():
            steps += 1
        return steps

    def _update_block_record(self, owner, old, new) -> None:
        blocks = self._blocks.get(owner)
        if blocks is None:
            raise AssertionError(f"moved block of unknown flow {owner!r}")
        blocks[blocks.index(old)] = new

    def defragment(self) -> None:
        """Compact all reservations (the paper's *Shaping* objective).

        Frees every block and re-packs flows largest-block-first with
        best-fit placement, rewriting the Time-Slot Arrays. Afterwards at
        most one free block of each size class exists, so any reservation
        that fits in the free capacity is admissible.
        """
        flows = sorted(
            self._blocks,
            key=lambda fid: int(self._flows[fid].weight),
            reverse=True,
        )
        for fid in flows:
            for column, offset, exponent in self._blocks[fid]:
                self._release_block(column, offset, exponent)
            self._blocks[fid] = []
        for fid in flows:
            weight = int(self._flows[fid].weight)
            blocks = []
            for e in _set_bits_descending(weight):
                placed = self._allocate_block(fid, e)
                if placed is None:  # cannot happen: same demand as before
                    raise AdmissionError(
                        f"defragmentation failed to re-place flow {fid!r}"
                    )
                blocks.append(placed)
            self._blocks[fid] = blocks

    # -- scheduling --------------------------------------------------------

    def dequeue(self) -> Optional[Packet]:
        if self._backlog_packets == 0:
            return None
        ops = self._ops
        order = self.order
        length = (1 << order) - 1
        # One full WSS round visits every reserved slot and offers every
        # idle slot to best-effort traffic, so it must find a packet.
        for _ in range(length + 1):
            position = self._wss_position + 1
            if position > length:
                position = 1
            self._wss_position = position
            ops.bump()
            column = order - (position & -position).bit_length()
            tree = self.trees.get(column)
            if tree is None:
                continue  # SWM coefficient a_column == 0
            owner = tree.tarray.owner(tree.pointer)
            tree.pointer = (tree.pointer + 1) % (1 << column) if column else 0
            ops.bump()
            packet = self._serve_slot(owner)
            if packet is not None:
                return packet
        return None  # unreachable while backlog > 0; defensive

    def _serve_slot(self, owner: Optional[Hashable]) -> Optional[Packet]:
        if owner is not None:
            flow = self._flows.get(owner)
            if flow is not None and flow.queue:
                return self._account_departure(flow.take())
        # idle_sched: grant the slot to best-effort traffic.
        be = self._best_effort
        for _ in range(len(be)):
            fid = be[0]
            be.rotate(-1)
            flow = self._flows.get(fid)
            if flow is not None and flow.queue:
                return self._account_departure(flow.take())
        return None

    # -- introspection -----------------------------------------------------

    @property
    def free_slots(self) -> int:
        """Unreserved unit slots per round."""
        return sum(t.allocator.free_slots for t in self.trees.values())

    @property
    def reserved_slots(self) -> int:
        """Reserved unit slots per round."""
        return self.capacity - self.free_slots

    def slot_sequence(self, count: int) -> List[Optional[Hashable]]:
        """Next ``count`` slot owners (None = idle slot), advancing the
        scan exactly as ``dequeue`` would; diagnostic mirror of the
        paper's Section III-C service line."""
        out: List[Optional[Hashable]] = []
        order = self.order
        length = (1 << order) - 1
        while len(out) < count:
            position = self._wss_position + 1
            if position > length:
                position = 1
            self._wss_position = position
            column = order - (position & -position).bit_length()
            tree = self.trees.get(column)
            if tree is None:
                continue
            owner = tree.tarray.owner(tree.pointer)
            tree.pointer = (tree.pointer + 1) % (1 << column) if column else 0
            out.append(owner)
        return out

    def check_invariants(self) -> None:
        """Cross-check allocators against TArrays (test helper)."""
        for column, tree in self.trees.items():
            tree.allocator.check_invariants()
            for position in range(1 << column):
                expected = None
                leaf = _reverse_bits(position, column)
                expected = tree.allocator.owner_at(leaf)
                actual = tree.tarray.owner(position)
                if actual != expected:
                    raise AssertionError(
                        f"TArray^{column}[{position}] = {actual!r}, "
                        f"allocator says {expected!r}"
                    )


def _set_bits_descending(value: int) -> List[int]:
    bits = []
    b = value.bit_length() - 1
    while value:
        if value >> b & 1:
            bits.append(b)
            value ^= 1 << b
        b -= 1
    return bits


def _reverse_bits(value: int, width: int) -> int:
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result
