"""Perfect Weighted Binary Tree (PWBT) slot allocation — a buddy allocator.

The RRR/G-3 extensions carve an output link of ``2^n`` unit time-slots
into binary blocks: tree node ``v(l, i)`` stands for the block of
``2^(n-l)`` consecutive slots starting at ``i * 2^(n-l)``. Allocating a
node to a flow, *splitting* a too-large node, and *merging* freed sibling
nodes (the paper's ``split``/``merge``/``List_l`` machinery) are exactly
the operations of a classical binary buddy allocator, which is how this
module implements them:

* free blocks are kept in per-exponent free lists (``List_l`` of the
  paper holds the free nodes of weight ``2^l``);
* ``allocate(e)`` takes the smallest sufficient free block and splits it
  down, pushing the peeled-off buddies onto their free lists;
* ``free(...)`` coalesces with the buddy block whenever the buddy is
  free, walking up the tree.

The module also provides the *shaping* primitive the G-3 paper sketches
(Fig. 6) to fight fragmentation: :meth:`PWBTAllocator.relocate` moves an
allocated block (or a subdivided block's entire contents) onto a free
block of equal size so that buddies can merge. The G-3 scheduler performs
the corresponding Time-Slot Array rewrites.

Block <-> node correspondence used throughout: block ``(offset, e)``
(``offset`` aligned to ``2^e``) is node ``v(n - e, offset >> e)``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..core.errors import AdmissionError, ConfigurationError

__all__ = ["Block", "PWBTAllocator"]

#: An allocated block: (offset, exponent). The block spans
#: ``[offset, offset + 2**exponent)`` leaf slots.
Block = Tuple[int, int]


class PWBTAllocator:
    """Buddy allocator over the ``2^depth`` leaf slots of one PWBT.

    Args:
        depth: Tree depth ``n``; the root represents ``2^n`` unit slots.

    The allocator tracks owners so the G-3/RRR schedulers can enumerate a
    flow's blocks and so invariants are checkable.
    """

    def __init__(self, depth: int) -> None:
        if not 0 <= depth <= 30:
            raise ConfigurationError(
                f"PWBT depth must be in 0..30, got {depth}"
            )
        self.depth = depth
        self.size = 1 << depth
        # exponent -> set of free block offsets (each aligned to 2^e).
        self._free: Dict[int, Set[int]] = {e: set() for e in range(depth + 1)}
        self._free[depth].add(0)
        # offset -> (exponent, owner) for allocated blocks.
        self._allocated: Dict[int, Tuple[int, Hashable]] = {}

    # -- queries -----------------------------------------------------------

    @property
    def free_slots(self) -> int:
        """Total unallocated unit slots."""
        return sum((1 << e) * len(offs) for e, offs in self._free.items())

    @property
    def allocated_slots(self) -> int:
        """Total allocated unit slots."""
        return self.size - self.free_slots

    def free_blocks(self, exponent: int) -> List[int]:
        """Sorted offsets of the free blocks of size ``2^exponent``
        (the paper's ``List_exponent``)."""
        return sorted(self._free[exponent])

    def largest_free_exponent(self) -> Optional[int]:
        """Largest ``e`` with a free block, or ``None`` when full."""
        for e in range(self.depth, -1, -1):
            if self._free[e]:
                return e
        return None

    def has_free(self, exponent: int) -> bool:
        """True when a block of size >= ``2^exponent`` is free."""
        return any(self._free[e] for e in range(exponent, self.depth + 1))

    def owner_at(self, slot: int) -> Optional[Hashable]:
        """Owner of the allocated block covering unit ``slot`` (or None)."""
        if not 0 <= slot < self.size:
            raise ConfigurationError(f"slot {slot} outside tree")
        for e in range(self.depth + 1):
            offset = slot & ~((1 << e) - 1)
            entry = self._allocated.get(offset)
            if entry is not None and entry[0] == e:
                return entry[1]
        return None

    def allocation_at(self, offset: int) -> Optional[Tuple[int, Hashable]]:
        """``(exponent, owner)`` if a block is allocated exactly at
        ``offset``, else ``None`` (the tree-walk primitive RRR needs)."""
        return self._allocated.get(offset)

    def is_free_block(self, offset: int, exponent: int) -> bool:
        """True when block ``(offset, exponent)`` is on the free list."""
        return offset in self._free[exponent]

    def allocations(self) -> List[Tuple[int, int, Hashable]]:
        """All allocated blocks as ``(offset, exponent, owner)``, sorted."""
        return sorted(
            (off, e, owner) for off, (e, owner) in self._allocated.items()
        )

    def allocations_within(self, offset: int, exponent: int):
        """Allocated blocks fully inside block ``(offset, exponent)``."""
        end = offset + (1 << exponent)
        return [
            (off, e, owner)
            for off, (e, owner) in sorted(self._allocated.items())
            if offset <= off and off + (1 << e) <= end
        ]

    # -- allocate / free ---------------------------------------------------

    def allocate(self, exponent: int, owner: Hashable) -> int:
        """Allocate a block of ``2^exponent`` slots to ``owner``.

        Implements the paper's ``get_free_node`` + ``split``: the smallest
        sufficient free block is split down to the requested size, its
        peeled-off halves joining their free lists.

        Returns:
            The block offset.

        Raises:
            AdmissionError: when no free block of sufficient size exists
                (the paper's ``Add_flow`` failure).
        """
        if not 0 <= exponent <= self.depth:
            raise ConfigurationError(
                f"exponent {exponent} outside 0..{self.depth}"
            )
        for e in range(exponent, self.depth + 1):
            if self._free[e]:
                offset = min(self._free[e])  # deterministic choice
                self._free[e].discard(offset)
                # Split down: release the upper buddy at each level.
                while e > exponent:
                    e -= 1
                    self._free[e].add(offset + (1 << e))
                self._allocated[offset] = (exponent, owner)
                return offset
        raise AdmissionError(
            f"no free block of 2^{exponent} slots "
            f"(free={self.free_slots}/{self.size}, fragmented)"
        )

    def allocate_at(self, offset: int, exponent: int, owner: Hashable) -> None:
        """Allocate the specific *free* block ``(offset, exponent)``.

        Used by shaping/relocation; the block must currently be on the
        free list of exactly this exponent.
        """
        if offset not in self._free[exponent]:
            raise ConfigurationError(
                f"block (offset={offset}, e={exponent}) is not free"
            )
        self._free[exponent].discard(offset)
        self._allocated[offset] = (exponent, owner)

    def free(self, offset: int, exponent: int) -> None:
        """Release block ``(offset, exponent)``, coalescing with free
        buddies (the paper's ``merge``)."""
        entry = self._allocated.pop(offset, None)
        if entry is None or entry[0] != exponent:
            if entry is not None:
                self._allocated[offset] = entry
            raise ConfigurationError(
                f"block (offset={offset}, e={exponent}) is not allocated"
            )
        e = exponent
        while e < self.depth:
            buddy = offset ^ (1 << e)
            if buddy not in self._free[e]:
                break
            self._free[e].discard(buddy)
            offset &= ~(1 << e)
            e += 1
        self._free[e].add(offset)

    def relocate(self, src: Block, dst: Block) -> List[Tuple[int, int, Hashable]]:
        """Move the entire contents of block ``src`` onto free block ``dst``
        (both within this allocator).

        Both blocks must have the same exponent; ``dst`` must be free.
        ``src`` may be allocated whole or subdivided — every allocated
        sub-block is re-created at the same relative position inside
        ``dst`` (this is the shaping *swapping* step of the paper's
        Fig. 6, generalised to subdivided siblings).

        Returns:
            The moved blocks as ``(new_offset, exponent, owner)`` so the
            caller (G-3) can rewrite its Time-Slot Arrays.
        """
        src_off, e = src
        dst_off, dst_e = dst
        if e != dst_e:
            raise ConfigurationError("relocate requires equal-size blocks")
        contents = self.extract_region(src_off, e)
        self.implant_region(dst_off, dst_e, contents)
        return [
            (dst_off + rel, sub_e, owner) for rel, sub_e, owner in contents
        ]

    def extract_region(
        self, offset: int, exponent: int
    ) -> List[Tuple[int, int, Hashable]]:
        """Remove every allocation inside block ``(offset, exponent)`` and
        coalesce the region into free space.

        Returns the removed contents as ``(relative_offset, exponent,
        owner)`` — the shape ``implant_region`` (on this or another
        allocator) reproduces. Used by G-3's cross-tree shaping moves.
        """
        self._check_region(offset, exponent)
        contents = []
        for off, sub_e, owner in self.allocations_within(offset, exponent):
            del self._allocated[off]
            self._free[sub_e].add(off)
            contents.append((off - offset, sub_e, owner))
        self._coalesce_region(offset, exponent)
        return contents

    def implant_region(
        self,
        offset: int,
        exponent: int,
        contents: List[Tuple[int, int, Hashable]],
    ) -> None:
        """Recreate extracted ``contents`` inside free block
        ``(offset, exponent)``: allocate each sub-block at its relative
        position and leave the gaps as properly buddy-decomposed free
        blocks."""
        self._check_region(offset, exponent)
        if offset not in self._free[exponent]:
            raise ConfigurationError(
                f"destination block (offset={offset}, e={exponent}) is not free"
            )
        self._free[exponent].discard(offset)
        allocated = []
        for rel, sub_e, owner in contents:
            if rel % (1 << sub_e) or rel + (1 << sub_e) > (1 << exponent):
                raise ConfigurationError(
                    f"content block (rel={rel}, e={sub_e}) does not fit"
                )
            self._allocated[offset + rel] = (sub_e, owner)
            allocated.append((offset + rel, sub_e))
        self._free_gaps(offset, exponent, sorted(allocated))

    def _free_gaps(
        self, offset: int, exponent: int, allocated: List[Tuple[int, int]]
    ) -> None:
        """Add the unallocated parts of a region to the free lists as
        maximal aligned blocks (recursive buddy decomposition)."""
        end = offset + (1 << exponent)
        inside = [
            (off, e) for off, e in allocated if offset <= off < end
        ]
        if not inside:
            self._free[exponent].add(offset)
            return
        if len(inside) == 1 and inside[0] == (offset, exponent):
            return  # fully covered by one allocation
        half = exponent - 1
        mid = offset + (1 << half)
        self._free_gaps(offset, half, [b for b in inside if b[0] < mid])
        self._free_gaps(mid, half, [b for b in inside if b[0] >= mid])

    def _check_region(self, offset: int, exponent: int) -> None:
        if not 0 <= exponent <= self.depth:
            raise ConfigurationError(f"bad exponent {exponent}")
        if offset % (1 << exponent) or not 0 <= offset < self.size:
            raise ConfigurationError(
                f"bad region offset {offset} for exponent {exponent}"
            )

    # -- internals ---------------------------------------------------------

    def _coalesce_region(self, offset: int, exponent: int) -> None:
        """Merge all free sub-blocks of region ``(offset, exponent)`` into
        one free block (the region must be fully free)."""
        end = offset + (1 << exponent)
        # Drop every free sub-block inside the region...
        for sub_e in range(exponent + 1):
            for off in list(self._free[sub_e]):
                if offset <= off < end:
                    self._free[sub_e].discard(off)
        # ...and re-add the region as one block, coalescing upward with
        # buddies outside the region.
        e = exponent
        while e < self.depth:
            buddy = offset ^ (1 << e)
            if buddy not in self._free[e]:
                break
            self._free[e].discard(buddy)
            offset &= ~(1 << e)
            e += 1
        self._free[e].add(offset)

    def check_invariants(self) -> None:
        """Verify the partition property (test helper; O(size))."""
        covered = [0] * self.size
        for off, (e, _owner) in self._allocated.items():
            if off % (1 << e):
                raise AssertionError(f"misaligned allocation ({off}, {e})")
            for s in range(off, off + (1 << e)):
                covered[s] += 1
        for e, offs in self._free.items():
            for off in offs:
                if off % (1 << e):
                    raise AssertionError(f"misaligned free block ({off}, {e})")
                for s in range(off, off + (1 << e)):
                    covered[s] += 1
        bad = [s for s, c in enumerate(covered) if c != 1]
        if bad:
            raise AssertionError(f"slots not covered exactly once: {bad[:10]}")
        # No two free buddies may coexist (they should have merged).
        for e in range(self.depth):
            for off in self._free[e]:
                if (off ^ (1 << e)) in self._free[e]:
                    raise AssertionError(
                        f"unmerged free buddies at exponent {e}: {off}"
                    )

    def __repr__(self) -> str:
        return (
            f"PWBTAllocator(depth={self.depth}, "
            f"free={self.free_slots}/{self.size})"
        )
