"""Result artifacts: ``results/<exp>/<timestamp>-<seed>.json``.

Every CLI run persists its :class:`~repro.harness.result.RunResult` as a
JSON artifact so sweeps can be re-analysed (or diffed across commits)
without re-simulation. The artifact embeds a pytest-benchmark-compatible
``summary`` block (same shape as the ``BENCH_*.json`` files
``pytest-benchmark --benchmark-json`` writes: ``machine_info`` plus a
``benchmarks`` list with per-name ``stats``), so existing benchmark
tooling can ingest harness runs directly.
"""

from __future__ import annotations

import itertools
import os
import platform
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Union

from .io import atomic_write_json, load_json_checked
from .result import RunResult

#: Schema tag stamped into (and validated from) run-result artifacts.
RESULT_SCHEMA = "repro.harness/run-result/v1"

__all__ = [
    "artifact_path",
    "benchmark_summary",
    "load_artifact",
    "write_artifact",
]


def benchmark_summary(result: RunResult) -> Dict[str, Any]:
    """A pytest-benchmark-style summary block for one run."""
    wall = result.wall_time_s
    return {
        "machine_info": {
            "python_version": platform.python_version(),
            "python_implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "benchmarks": [
            {
                "name": result.experiment,
                "fullname": f"repro.bench::{result.experiment}",
                "params": {"seed": result.config.seed,
                           "scale": result.config.scale,
                           "jobs": result.config.jobs},
                "stats": {
                    "min": wall, "max": wall, "mean": wall, "median": wall,
                    "stddev": 0.0, "rounds": 1, "iterations": 1,
                },
                "extra_info": {
                    "points": len(result.points),
                    "events_processed": result.engine.get(
                        "events_processed", 0
                    ),
                },
            }
        ],
    }


def artifact_path(
    result: RunResult,
    results_dir: Union[str, Path] = "results",
    attempt: int = 0,
) -> Path:
    """``<results_dir>/<exp>/<timestamp>-<seed>[-<attempt>].json``.

    ``attempt`` uniquifies collisions: two runs of the same seed within
    one timestamp granule (back-to-back CI retries, fast sweeps) would
    otherwise map to the same name and silently overwrite each other.
    """
    started = result.started_at
    try:
        ts = datetime.fromisoformat(started)
    except (TypeError, ValueError):
        ts = datetime.now(timezone.utc)
    stamp = ts.strftime("%Y%m%dT%H%M%S.%f")
    suffix = "" if attempt == 0 else f"-{attempt}"
    name = f"{stamp}-{result.config.seed}{suffix}.json"
    return Path(results_dir) / result.experiment / name


def write_artifact(
    result: RunResult, results_dir: Union[str, Path] = "results"
) -> Path:
    """Persist one run atomically; returns the path written.

    Atomic (tmp + ``os.replace``) so a crash mid-write leaves no
    truncated artifact behind for :func:`load_artifact` to choke on. The
    target name is claimed with ``O_EXCL`` first, walking the attempt
    counter past existing files, so a same-timestamp same-seed rerun gets
    a fresh ``-<n>`` name instead of clobbering the earlier artifact.
    """
    payload = result.to_json_dict()
    payload["summary"] = benchmark_summary(result)
    for attempt in itertools.count():
        path = artifact_path(result, results_dir, attempt)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        return atomic_write_json(path, payload)
    raise AssertionError("unreachable")  # pragma: no cover


def load_artifact(path: Union[str, Path]) -> RunResult:
    """Read an artifact back into a :class:`RunResult`.

    Raises :class:`~repro.core.errors.ArtifactError` (not a bare
    ``JSONDecodeError``) on missing, truncated or wrong-schema files.
    """
    data = load_json_checked(path, schema=RESULT_SCHEMA)
    return RunResult.from_json_dict(data)
