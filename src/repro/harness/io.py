"""Crash-tolerant file IO shared by artifacts, checkpoints and traces.

Every results file this repository produces goes through
:func:`atomic_write_text`: the payload is written to a sibling temp file
and moved into place with ``os.replace``, which is atomic on POSIX and
Windows. A reader therefore either sees the previous complete file or the
new complete file — never a truncated half-write from a crashed or killed
process (the failure mode the crash-tolerant sweep harness is built
around).

The loaders are the other half of the contract: :func:`load_json_checked`
turns missing files, partial JSON and schema mismatches into a structured
:class:`~repro.core.errors.ArtifactError` instead of an uncaught
``json.JSONDecodeError`` — so a resumable sweep can treat a corrupt
checkpoint as "re-run this point" rather than dying.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..core.errors import ArtifactError

__all__ = ["atomic_write_text", "atomic_write_json", "load_json_checked"]


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` atomically (tmp + ``os.replace``).

    The temp file lives in the destination directory (same filesystem, so
    the rename is atomic) and carries the writer's pid, so concurrent
    sweep workers writing different points never collide on it.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path: Union[str, Path], payload: Any) -> Path:
    """Serialise ``payload`` and write it atomically as ``path``."""
    return atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=False) + "\n"
    )


def load_json_checked(
    path: Union[str, Path], *, schema: Optional[str] = None
) -> Dict[str, Any]:
    """Load a JSON object, rejecting (not crashing on) bad files.

    Raises :class:`ArtifactError` when the file is unreadable, is not
    valid JSON (truncated partial writes included), is not an object, or
    — when ``schema`` is given — carries a different ``"schema"`` field.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ArtifactError(
            f"artifact {path} is not valid JSON (truncated write?): {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise ArtifactError(
            f"artifact {path} holds {type(data).__name__}, expected an object"
        )
    if schema is not None:
        found = data.get("schema")
        if found is not None and found != schema:
            raise ArtifactError(
                f"artifact {path} has schema {found!r}, expected {schema!r}"
            )
    return data
