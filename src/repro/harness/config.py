"""Typed run configuration: ExperimentConfig, ExperimentSpec, RunContext.

An :class:`ExperimentSpec` is the declarative description of one
experiment: its id, title, a frozen dataclass of typed parameters (the
replacement for ad-hoc ``**kwargs``), per-scale parameter presets, and a
body function. An :class:`ExperimentConfig` is one concrete run of a
spec: resolved parameters plus ``seed``/``scale``/``jobs``. The body
receives a :class:`RunContext`, which carries the seed and job count,
runs sweeps, and collects the per-point records and rendered tables that
end up in the :class:`~repro.harness.result.RunResult`.
"""

from __future__ import annotations

import random
from dataclasses import MISSING, dataclass, field, fields, is_dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.tables import records_table
from ..core.errors import ConfigurationError
from ..net.eventq import QUEUE_KINDS
from ..obs.metrics import MetricsRegistry
from .sweep import FailedRun, child_seed, sweep

__all__ = [
    "SCALES",
    "ExperimentConfig",
    "ExperimentSpec",
    "RunContext",
    "build_config",
    "resolve_params",
]

#: The recognised run scales, smallest to largest.
SCALES = ("quick", "default", "full")


def _jsonable(value: Any) -> Any:
    """Normalise params for JSON: tuples -> lists, dict keys -> str."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class ExperimentConfig:
    """One concrete, reproducible experiment run.

    ``params`` holds the fully resolved per-experiment parameters (the
    field names of the spec's params dataclass); ``seed`` is the root of
    every RNG used by the run; ``scale`` records which preset produced
    the params; ``jobs`` is the sweep fan-out.
    """

    experiment: str
    seed: int = 1
    scale: str = "default"
    jobs: int = 1
    quiet: bool = True
    #: Crash-tolerance knobs forwarded to :func:`repro.harness.sweep.sweep`
    #: (all off by default; like ``jobs`` they cannot change results, only
    #: whether a run survives a hung or crashing point).
    timeout: Optional[float] = None
    retries: int = 0
    retry_backoff: float = 0.0
    checkpoint_dir: Optional[str] = None
    #: Event-queue backend for every Simulator in the run (``"heap"`` /
    #: ``"calendar"``); ``None`` leaves the process default in place.
    #: Like ``jobs``, this cannot change results — only wall time — so
    #: the stable result form excludes it.
    engine: Optional[str] = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "seed": self.seed,
            "scale": self.scale,
            "jobs": self.jobs,
            "quiet": self.quiet,
            "timeout": self.timeout,
            "retries": self.retries,
            "retry_backoff": self.retry_backoff,
            "checkpoint_dir": self.checkpoint_dir,
            "engine": self.engine,
            "params": _jsonable(dict(self.params)),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ExperimentConfig":
        return cls(
            experiment=data["experiment"],
            seed=data.get("seed", 1),
            scale=data.get("scale", "default"),
            jobs=data.get("jobs", 1),
            quiet=data.get("quiet", True),
            timeout=data.get("timeout"),
            retries=data.get("retries", 0),
            retry_backoff=data.get("retry_backoff", 0.0),
            checkpoint_dir=data.get("checkpoint_dir"),
            engine=data.get("engine"),
            params=dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one experiment.

    Attributes:
        eid: Short id (``"e1"`` .. ``"e12"``).
        title: One-line description (CLI listing).
        params_type: A (frozen) dataclass of typed parameters with
            defaults — the ``default`` scale.
        body: ``body(params, ctx) -> metrics dict``. The metrics dict is
            the experiment's summary result (the legacy return value);
            per-point records and tables are collected on the ctx.
        scales: Parameter overrides per scale name (``"quick"``/
            ``"full"``); the ``default`` scale is the dataclass defaults.
        timing_fields: Names of point/metric fields whose *measured
            value* is wall-clock time (timing experiments). These are
            inherently run-volatile, so the stable result form excludes
            them from the parallel-vs-serial identity.
    """

    eid: str
    title: str
    params_type: type
    body: Callable[[Any, "RunContext"], Dict]
    scales: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    timing_fields: Tuple[str, ...] = ()

    def param_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in fields(self.params_type))


def resolve_params(
    spec: ExperimentSpec,
    scale: str = "default",
    overrides: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Defaults -> scale preset -> explicit overrides, validated."""
    if scale not in SCALES:
        raise ConfigurationError(
            f"unknown scale {scale!r}; choose from {SCALES}"
        )
    if not is_dataclass(spec.params_type):
        raise ConfigurationError(
            f"{spec.eid}: params_type must be a dataclass"
        )
    names = set(spec.param_names())
    resolved: Dict[str, Any] = {}
    for f in fields(spec.params_type):
        if f.default is not MISSING:
            resolved[f.name] = f.default
        elif f.default_factory is not MISSING:
            resolved[f.name] = f.default_factory()
        else:
            raise ConfigurationError(
                f"{spec.eid}: parameter {f.name!r} has no default"
            )
    for layer_name, layer in (
        (f"scale {scale!r}", spec.scales.get(scale, {})),
        ("overrides", overrides or {}),
    ):
        for key, value in layer.items():
            if key not in names:
                raise ConfigurationError(
                    f"{spec.eid}: unknown parameter {key!r} in {layer_name}; "
                    f"known: {sorted(names)}"
                )
            resolved[key] = value
    return resolved


def build_config(
    spec: ExperimentSpec,
    *,
    seed: int = 1,
    scale: str = "default",
    jobs: int = 1,
    quiet: bool = True,
    timeout: Optional[float] = None,
    retries: int = 0,
    retry_backoff: float = 0.0,
    checkpoint_dir: Optional[str] = None,
    engine: Optional[str] = None,
    overrides: Optional[Mapping[str, Any]] = None,
) -> ExperimentConfig:
    """Resolve a full :class:`ExperimentConfig` for one run of ``spec``."""
    if engine is not None and engine not in QUEUE_KINDS:
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose from {sorted(QUEUE_KINDS)}"
        )
    return ExperimentConfig(
        experiment=spec.eid,
        seed=seed,
        scale=scale,
        jobs=jobs,
        quiet=quiet,
        timeout=timeout,
        retries=retries,
        retry_backoff=retry_backoff,
        checkpoint_dir=checkpoint_dir,
        engine=engine,
        params=resolve_params(spec, scale, overrides),
    )


class RunContext:
    """Per-run services handed to an experiment body.

    Collects the run's per-point records, rendered tables, and engine /
    op-count observability totals; provides deterministic child RNGs and
    the (possibly parallel) :meth:`sweep`.
    """

    def __init__(
        self,
        seed: int = 1,
        jobs: int = 1,
        quiet: bool = True,
        timeout: Optional[float] = None,
        retries: int = 0,
        retry_backoff: float = 0.0,
        checkpoint_dir: Optional[str] = None,
    ) -> None:
        self.seed = seed
        self.jobs = jobs
        self.quiet = quiet
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.checkpoint_dir = checkpoint_dir
        self.points: List[Dict[str, Any]] = []
        self.tables: List[str] = []
        self.engine: Dict[str, Any] = {}
        #: Sweep points that exhausted their attempts (``FailedRun``
        #: records): the run completes without them and their structured
        #: failure records land in ``RunResult.failed``.
        self.failed: List[Any] = []
        #: Counts ``sweep()`` calls so each gets its own checkpoint
        #: subdirectory (a body may sweep more than once).
        self._sweep_calls = 0
        #: The run's metrics registry. Sweep points run in child
        #: processes, so bodies snapshot a per-point registry there and
        #: merge the snapshots here (:meth:`record_metrics`) in task
        #: order; the merged snapshot lands in ``RunResult.obs``.
        self.metrics = MetricsRegistry()
        #: Optional flight-recorder accounting block
        #: (:meth:`record_flight`); lands as ``RunResult.obs["flight"]``.
        self.flight: Optional[Dict[str, Any]] = None

    # -- determinism -------------------------------------------------------

    def child_seed(self, index: int) -> int:
        """Deterministic seed for sweep point ``index`` of this run."""
        return child_seed(self.seed, index)

    def rng(self, index: int = 0) -> random.Random:
        """An independent, deterministic RNG for point ``index``."""
        return random.Random(self.child_seed(index))

    # -- sweeping ----------------------------------------------------------

    def sweep(self, fn: Callable, tasks: Sequence[Tuple]) -> List[Any]:
        """Run ``fn`` over ``tasks`` honouring this run's ``jobs`` and
        crash-tolerance knobs.

        With ``timeout``/``retries``/``checkpoint_dir`` active, points
        that exhaust their attempts are collected on :attr:`failed` as
        structured ``FailedRun`` records and only the successful results
        are returned (still in task order) — one bad point no longer
        aborts the run. With all knobs off this is the plain
        zero-overhead sweep.
        """
        robust = (
            self.timeout is not None
            or self.retries > 0
            or self.checkpoint_dir is not None
        )
        call_dir = None
        if self.checkpoint_dir is not None:
            call_dir = str(
                Path(self.checkpoint_dir) / f"sweep-{self._sweep_calls}"
            )
        self._sweep_calls += 1
        if not robust:
            return sweep(fn, tasks, jobs=self.jobs, seed=self.seed)
        results = sweep(
            fn,
            tasks,
            jobs=self.jobs,
            timeout=self.timeout,
            retries=self.retries,
            backoff=self.retry_backoff,
            failures="collect",
            seed=self.seed,
            checkpoint_dir=call_dir,
        )
        kept = []
        for outcome in results:
            if isinstance(outcome, FailedRun):
                self.failed.append(outcome)
            else:
                kept.append(outcome)
        return kept

    # -- result collection -------------------------------------------------

    def add_point(self, record: Mapping[str, Any]) -> None:
        """Record one per-sweep-point metrics record."""
        self.points.append(dict(record))

    def add_points(self, records: Sequence[Mapping[str, Any]]) -> None:
        for record in records:
            self.add_point(record)

    def record_metrics(self, snapshot: Mapping[str, Mapping[str, Any]]) -> None:
        """Merge a child registry snapshot into this run's registry.

        Counters/histograms add, gauges take the max, so the merged
        result is independent of ``--jobs`` as long as bodies merge in
        task (submission) order — which :meth:`sweep` already guarantees
        for its returned records.
        """
        self.metrics.merge_snapshot(snapshot)

    def record_flight(self, block: Mapping[str, Any]) -> None:
        """Attach a flight-recorder summary to this run's obs artifact.

        Bodies that drain a :class:`~repro.obs.flight.FlightRecorder`
        (fast-core E5 points, lean-loop scenarios) record the totals
        here; ``repro.obs report`` renders the block alongside the
        metrics families.
        """
        self.flight = dict(block)

    def record_engine(self, stats: Mapping[str, Any]) -> None:
        """Accumulate simulator/op-count observability counters.

        Summable counters (event counts, wall times, op counts) from each
        sweep point are added together — except ``max_*`` high-water
        marks, which take the maximum — and the totals surface in
        ``RunResult.engine``. String values (``queue_kind``) pass through
        verbatim: every point in a run uses the same backend.
        """
        for key, value in stats.items():
            if isinstance(value, str):
                self.engine[key] = value
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            if key.startswith("max_"):
                self.engine[key] = max(self.engine.get(key, 0), value)
            else:
                self.engine[key] = self.engine.get(key, 0) + value

    def table(
        self,
        headers: Sequence[str],
        rows: Sequence[Sequence] = None,
        *,
        records: Sequence[Mapping[str, Any]] = None,
        columns: Sequence = None,
        title: Optional[str] = None,
        precision: int = 3,
    ) -> str:
        """Render, collect and (unless quiet) print one result table.

        Either pass pre-built ``rows``, or ``records`` + ``columns`` to
        derive the rows from the same per-point records stored in the
        :class:`RunResult` (see
        :func:`repro.analysis.tables.records_table`).
        """
        if records is not None:
            text = records_table(
                records, columns, headers=headers, title=title,
                precision=precision,
            )
        else:
            from ..analysis.tables import format_table

            text = format_table(
                headers, rows or [], title=title, precision=precision
            )
        self.tables.append(text)
        if not self.quiet:
            print()
            print(text)
        return text
