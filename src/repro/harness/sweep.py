"""Deterministic parameter sweeps with optional process-pool fan-out.

``sweep(fn, tasks, jobs=N)`` maps a module-level function over a list of
argument tuples. With ``jobs == 1`` the calls run inline; with
``jobs > 1`` they fan out across a :class:`ProcessPoolExecutor`. Either
way the result list is ordered by sweep point (the executor keys results
back to their submission index), so a parallel run is bit-identical to a
serial one *provided* each point is self-contained — which is why every
stochastic point receives its own child seed (:func:`child_seed`) instead
of sharing a process-global RNG.
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError

__all__ = ["sweep", "child_seed", "spawn_seeds"]

# SplitMix64 constants: a cheap, well-mixed way to derive independent
# child seeds from (root seed, point index) without platform-dependent
# hashing.
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK = (1 << 64) - 1


def child_seed(seed: int, index: int) -> int:
    """Deterministic per-point RNG seed derived from ``(seed, index)``.

    Independent of execution order and process, so serial and parallel
    sweeps draw identical randomness at every point.
    """
    z = (int(seed) * _GOLDEN + (index + 1) * _MIX1) & _MASK
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK
    return (z ^ (z >> 31)) & ((1 << 63) - 1)


def spawn_seeds(seed: int, n: int) -> List[int]:
    """``n`` independent child seeds for an ``n``-point sweep."""
    return [child_seed(seed, i) for i in range(n)]


def _apply(fn: Callable, args: Tuple) -> Any:
    return fn(*args)


def sweep(
    fn: Callable,
    tasks: Sequence[Tuple],
    *,
    jobs: Optional[int] = 1,
) -> List[Any]:
    """Run ``fn(*task)`` for every task, returning results in task order.

    Args:
        fn: A picklable (module-level) function when ``jobs > 1``.
        tasks: One argument tuple per sweep point.
        jobs: ``1`` runs inline; ``> 1`` uses a process pool of that many
            workers; ``None``/``0`` uses ``os.cpu_count()``.

    Results are keyed and re-ordered by sweep point, never by completion
    order, so parallelism cannot change the output.
    """
    tasks = [tuple(t) for t in tasks]
    if jobs is None or jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 1 or len(tasks) <= 1:
        return [fn(*task) for task in tasks]
    from concurrent.futures import ProcessPoolExecutor

    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_apply, fn, task) for task in tasks]
        return [f.result() for f in futures]
