"""Deterministic, crash-tolerant parameter sweeps with process fan-out.

``sweep(fn, tasks, jobs=N)`` maps a module-level function over a list of
argument tuples. With ``jobs == 1`` the calls run inline; with
``jobs > 1`` they fan out across worker processes. Either way the result
list is ordered by sweep point (results are keyed back to their
submission index), so a parallel run is bit-identical to a serial one
*provided* each point is self-contained — which is why every stochastic
point receives its own child seed (:func:`child_seed`) instead of sharing
a process-global RNG.

Crash tolerance (opt-in, all off by default):

* ``timeout=`` — a per-point wall-clock budget. Points run in their own
  subprocess (a pool cannot kill a hung task) and are terminated at the
  deadline.
* ``retries=`` — failed/timed-out points are re-run up to this many extra
  attempts; each attempt's re-derived child seed
  (``child_seed(child_seed(seed, index), attempt)``) is recorded.
* ``backoff=`` — seeded exponential backoff with jitter between retry
  attempts: attempt ``a`` waits ``min(cap, base * 2**a) * (0.5 +
  0.5*u)`` seconds, where ``u`` is drawn from an RNG seeded by the
  attempt's own child seed — so the delay schedule is reproducible from
  the artifact, and a thundering herd of retrying points decorrelates.
  Each wait is recorded as ``backoff_s`` in the failed attempt's history
  entry. Backoff shifts only *when* an attempt starts, never its seed or
  result.
* ``failures="collect"`` — a point that exhausts its attempts becomes a
  structured :class:`FailedRun` *in the result list* instead of aborting
  the sweep; with the default ``"raise"`` the first failure raises a
  :class:`SweepPointError` carrying the point index, config hash and
  child seed, so failed points are diagnosable from the artifact alone.
* ``checkpoint_dir=`` — every completed point is persisted atomically as
  ``point-<index>.json``; a re-run with the same directory skips points
  whose checkpoint exists, validates, and succeeded (``--resume``:
  failed or corrupt checkpoints re-run).
"""

from __future__ import annotations

import hashlib
import os
import random
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.errors import ArtifactError, ConfigurationError, ReproError
from ..obs.telemetry import get_telemetry
from .io import atomic_write_json, load_json_checked

__all__ = [
    "FailedRun",
    "SweepPointError",
    "backoff_delay",
    "sweep",
    "child_seed",
    "spawn_seeds",
    "task_hash",
]

# SplitMix64 constants: a cheap, well-mixed way to derive independent
# child seeds from (root seed, point index) without platform-dependent
# hashing.
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK = (1 << 64) - 1

#: Schema tag of per-point checkpoint files (resume validation).
POINT_SCHEMA = "repro.harness/sweep-point/v1"


def child_seed(seed: int, index: int) -> int:
    """Deterministic per-point RNG seed derived from ``(seed, index)``.

    Independent of execution order and process, so serial and parallel
    sweeps draw identical randomness at every point.
    """
    z = (int(seed) * _GOLDEN + (index + 1) * _MIX1) & _MASK
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK
    return (z ^ (z >> 31)) & ((1 << 63) - 1)


def spawn_seeds(seed: int, n: int) -> List[int]:
    """``n`` independent child seeds for an ``n``-point sweep."""
    return [child_seed(seed, i) for i in range(n)]


def backoff_delay(
    seed: int, index: int, attempt: int, *, base: float, cap: float
) -> float:
    """Seconds to wait after failed ``attempt`` (0-based) of point
    ``index`` before the next attempt.

    Exponential growth (``base * 2**attempt``) clamped at ``cap``, then
    jittered into ``[0.5x, 1.0x]`` by a uniform draw from an RNG seeded
    with the failed attempt's own child seed — fully reproducible from
    ``(seed, index, attempt)``, no process-global RNG touched.
    """
    if base <= 0:
        return 0.0
    raw = min(cap, base * (2.0 ** attempt))
    u = random.Random(child_seed(child_seed(seed, index), attempt)).random()
    return raw * (0.5 + 0.5 * u)


def task_hash(fn: Callable, task: Tuple) -> str:
    """Short content hash of ``(fn, task)`` identifying one sweep point.

    Used to key checkpoints (so resuming against changed parameters
    re-runs rather than reuses) and stamped into failure records so a
    failed point is identifiable from the artifact alone.
    """
    ident = (
        f"{getattr(fn, '__module__', '?')}."
        f"{getattr(fn, '__qualname__', repr(fn))}{task!r}"
    )
    return hashlib.sha256(ident.encode()).hexdigest()[:12]


def _task_repr(task: Tuple, limit: int = 200) -> str:
    text = repr(task)
    return text if len(text) <= limit else text[: limit - 3] + "..."


@dataclass
class FailedRun:
    """Structured record of a sweep point that exhausted its attempts.

    Appears in the result list (``failures="collect"``) and in checkpoint
    artifacts instead of aborting the whole sweep; carries everything
    needed to reproduce the point: its index, config hash, the re-derived
    child seed of every attempt, and the per-attempt error history.
    """

    index: int
    error_type: str
    error: str
    attempts: int
    timed_out: bool
    config_hash: str
    task: str
    child_seeds: List[int] = field(default_factory=list)
    history: List[Dict[str, Any]] = field(default_factory=list)

    SCHEMA = "repro.harness/failed-run/v1"

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.SCHEMA,
            "index": self.index,
            "error_type": self.error_type,
            "error": self.error,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
            "config_hash": self.config_hash,
            "task": self.task,
            "child_seeds": list(self.child_seeds),
            "history": [dict(h) for h in self.history],
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "FailedRun":
        return cls(
            index=data["index"],
            error_type=data.get("error_type", "?"),
            error=data.get("error", ""),
            attempts=data.get("attempts", 1),
            timed_out=data.get("timed_out", False),
            config_hash=data.get("config_hash", ""),
            task=data.get("task", ""),
            child_seeds=list(data.get("child_seeds", [])),
            history=[dict(h) for h in data.get("history", [])],
        )


class SweepPointError(ReproError):
    """A sweep point failed (``failures="raise"``), wrapped with context.

    Carries the :class:`FailedRun` record plus its headline fields as
    attributes, so the point index, config hash and child seed survive
    into logs and artifacts instead of a bare pool exception.
    """

    def __init__(self, failure: FailedRun) -> None:
        self.failure = failure
        self.index = failure.index
        self.config_hash = failure.config_hash
        self.child_seed = (
            failure.child_seeds[-1] if failure.child_seeds else None
        )
        if failure.timed_out:
            cause = "timed out"
        else:
            first_line = failure.error.splitlines()[0] if failure.error else ""
            cause = f"{failure.error_type}: {first_line}"
        super().__init__(
            f"sweep point {failure.index} {failure.task} failed after "
            f"{failure.attempts} attempt(s) [config {failure.config_hash}, "
            f"child seed {self.child_seed}]: {cause}"
        )


def _apply(fn: Callable, args: Tuple) -> Any:
    return fn(*args)


def _failure_entry(exc: BaseException) -> Dict[str, Any]:
    return {
        "error_type": type(exc).__name__,
        "error": f"{exc}\n{traceback.format_exc()}",
        "timed_out": False,
    }


def _failed_run(
    index: int,
    task: Tuple,
    config_hash: str,
    seed: int,
    history: List[Dict[str, Any]],
) -> FailedRun:
    last = history[-1]
    point_seed = child_seed(seed, index)
    return FailedRun(
        index=index,
        error_type=last["error_type"],
        error=last["error"],
        attempts=len(history),
        timed_out=bool(last["timed_out"]),
        config_hash=config_hash,
        task=_task_repr(task),
        child_seeds=[child_seed(point_seed, a) for a in range(len(history))],
        history=history,
    )


# -- checkpoint files (resume) ----------------------------------------------

def _checkpoint_path(directory: Union[str, Path], index: int) -> Path:
    return Path(directory) / f"point-{index:05d}.json"


def _load_checkpoint(
    directory: Union[str, Path], index: int, config_hash: str
) -> Optional[Tuple[str, Any]]:
    """``("ok", result)`` when a valid successful checkpoint exists.

    Anything else — missing file, truncated JSON, schema or config-hash
    mismatch, or a recorded failure — means "run this point (again)".
    """
    path = _checkpoint_path(directory, index)
    if not path.exists():
        return None
    try:
        data = load_json_checked(path, schema=POINT_SCHEMA)
    except ArtifactError:
        return None
    if data.get("schema") != POINT_SCHEMA:
        return None
    if data.get("config_hash") != config_hash or data.get("status") != "ok":
        return None
    return ("ok", data.get("result"))


def _write_checkpoint(
    directory: Union[str, Path],
    index: int,
    config_hash: str,
    outcome: Any,
) -> None:
    payload: Dict[str, Any] = {
        "schema": POINT_SCHEMA,
        "index": index,
        "config_hash": config_hash,
    }
    if isinstance(outcome, FailedRun):
        payload["status"] = "failed"
        payload["failure"] = outcome.to_json_dict()
    else:
        payload["status"] = "ok"
        payload["result"] = outcome[1]
    try:
        atomic_write_json(_checkpoint_path(directory, index), payload)
    except TypeError:
        # Result not JSON-serialisable: the sweep still returns it, the
        # point just cannot be skipped by a future --resume.
        pass


# -- execution engines -------------------------------------------------------

def _run_inline(
    fn: Callable,
    tasks: Sequence[Tuple],
    indices: Sequence[int],
    *,
    retries: int,
    seed: int,
    hashes: Sequence[str],
    backoff: float = 0.0,
    backoff_cap: float = 30.0,
) -> Dict[int, Any]:
    """Serial in-process execution with retries (no timeout support)."""
    tele = get_telemetry()
    failed = 0
    outcomes: Dict[int, Any] = {}
    for done, index in enumerate(indices):
        history: List[Dict[str, Any]] = []
        for attempt in range(retries + 1):
            try:
                outcomes[index] = ("ok", fn(*tasks[index]))
                break
            except Exception as exc:
                entry = _failure_entry(exc)
                if attempt < retries and backoff > 0:
                    delay = backoff_delay(
                        seed, index, attempt, base=backoff, cap=backoff_cap
                    )
                    entry["backoff_s"] = round(delay, 6)
                    time.sleep(delay)
                history.append(entry)
        else:
            outcomes[index] = _failed_run(
                index, tasks[index], hashes[index], seed, history
            )
            failed += 1
        if tele is not None:
            tele.heartbeat(kind="sweep", done=done + 1, total=len(indices),
                           failed=failed)
    return outcomes


def _point_worker(conn: Any, fn: Callable, task: Tuple) -> None:
    """Subprocess body: run one point, ship ("ok", result) or ("err", ...)."""
    try:
        result = fn(*task)
    except BaseException as exc:
        payload = ("err", type(exc).__name__, f"{exc}\n{traceback.format_exc()}")
    else:
        payload = ("ok", result)
    try:
        conn.send(payload)
    except Exception as exc:  # e.g. unpicklable result
        conn.send(("err", type(exc).__name__, f"result not sendable: {exc}"))
    finally:
        conn.close()


def _run_isolated(
    fn: Callable,
    tasks: Sequence[Tuple],
    indices: Sequence[int],
    *,
    jobs: int,
    timeout: Optional[float],
    retries: int,
    seed: int,
    hashes: Sequence[str],
    backoff: float = 0.0,
    backoff_cap: float = 30.0,
) -> Dict[int, Any]:
    """Process-per-point execution: up to ``jobs`` live workers, each
    attempt terminated at its deadline. A pool cannot cancel a running
    task, which is exactly why hung points need their own process.

    Retrying points re-enter the queue with a ``not_before`` launch time
    (seeded exponential backoff), so they wait without blocking other
    points' launches."""
    import multiprocessing as mp
    from multiprocessing.connection import wait as conn_wait

    ctx = mp.get_context()
    tele = get_telemetry()
    retried = 0
    #: (index, attempt, earliest monotonic launch time).
    pending: deque = deque((index, 0, 0.0) for index in indices)
    histories: Dict[int, List[Dict[str, Any]]] = {i: [] for i in indices}
    live: Dict[Any, Tuple[int, int, Any, Optional[float]]] = {}
    outcomes: Dict[int, Any] = {}

    def settle(index: int, entry: Dict[str, Any], attempt: int) -> None:
        nonlocal retried
        histories[index].append(entry)
        if attempt < retries:
            retried += 1
            not_before = 0.0
            if backoff > 0:
                delay = backoff_delay(
                    seed, index, attempt, base=backoff, cap=backoff_cap
                )
                entry["backoff_s"] = round(delay, 6)
                not_before = time.monotonic() + delay
            pending.append((index, attempt + 1, not_before))
        else:
            outcomes[index] = _failed_run(
                index, tasks[index], hashes[index], seed, histories[index]
            )

    while pending or live:
        if tele is not None:
            tele.heartbeat(
                kind="sweep",
                done=len(outcomes),
                total=len(indices),
                live=len(live),
                failed=sum(
                    1 for o in outcomes.values() if isinstance(o, FailedRun)
                ),
                retried=retried,
            )
        now = time.monotonic()
        deferred: List[Tuple[int, int, float]] = []
        while pending and len(live) < jobs:
            index, attempt, not_before = pending.popleft()
            if not_before > now:
                deferred.append((index, attempt, not_before))
                continue
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_point_worker,
                args=(child_conn, fn, tasks[index]),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            deadline = None if timeout is None else time.monotonic() + timeout
            live[parent_conn] = (index, attempt, proc, deadline)
        pending.extendleft(reversed(deferred))
        wakeups = [d for (_, _, _, d) in live.values() if d is not None]
        if deferred and len(live) < jobs:
            # Capacity is free but every launchable point is backing
            # off: wake when the earliest becomes eligible.
            wakeups.append(min(nb for (_, _, nb) in deferred))
        if not live:
            time.sleep(max(0.0, min(wakeups) - time.monotonic()))
            continue
        wait_for = (
            max(0.0, min(wakeups) - time.monotonic()) if wakeups else None
        )
        ready = set(conn_wait(list(live), timeout=wait_for))
        now = time.monotonic()
        for conn in list(live):
            index, attempt, proc, deadline = live[conn]
            if conn in ready:
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    msg = (
                        "err",
                        "WorkerDied",
                        f"worker exited with code {proc.exitcode} "
                        "before sending a result",
                    )
                proc.join()
                conn.close()
                del live[conn]
                if msg[0] == "ok":
                    outcomes[index] = ("ok", msg[1])
                else:
                    settle(
                        index,
                        {"error_type": msg[1], "error": msg[2],
                         "timed_out": False},
                        attempt,
                    )
            elif deadline is not None and now >= deadline:
                proc.terminate()
                proc.join()
                conn.close()
                del live[conn]
                settle(
                    index,
                    {
                        "error_type": "TimeoutError",
                        "error": (
                            f"point exceeded timeout={timeout}s "
                            f"(attempt {attempt + 1})"
                        ),
                        "timed_out": True,
                    },
                    attempt,
                )
    return outcomes


# -- the sweep entry point ---------------------------------------------------

def sweep(
    fn: Callable,
    tasks: Sequence[Tuple],
    *,
    jobs: Optional[int] = 1,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.0,
    backoff_cap: float = 30.0,
    failures: str = "raise",
    seed: int = 0,
    checkpoint_dir: Optional[Union[str, Path]] = None,
) -> List[Any]:
    """Run ``fn(*task)`` for every task, returning results in task order.

    Args:
        fn: A picklable (module-level) function when ``jobs > 1`` or
            ``timeout`` is set.
        tasks: One argument tuple per sweep point.
        jobs: ``1`` runs inline; ``> 1`` uses that many worker processes;
            ``None``/``0`` uses ``os.cpu_count()``.
        timeout: Per-point wall-clock budget in seconds; a point past its
            deadline is terminated (its attempt counts as failed).
        retries: Extra attempts granted to a failed/timed-out point; each
            attempt's re-derived child seed is recorded in the failure
            record.
        backoff: Base delay (seconds) of the seeded exponential backoff
            between retry attempts (see :func:`backoff_delay`); ``0``
            (default) retries immediately. Each wait is recorded as
            ``backoff_s`` in that attempt's failure-history entry.
        backoff_cap: Upper clamp (seconds) on the un-jittered delay.
        failures: ``"raise"`` (default) raises :class:`SweepPointError`
            on the first point that exhausts its attempts;
            ``"collect"`` places a :class:`FailedRun` in the result list
            instead, so one bad point cannot abort the sweep.
        seed: The sweep's root seed — only used to *record* the
            per-attempt child seeds in failure records.
        checkpoint_dir: When given, completed points are persisted there
            atomically and valid successful checkpoints are skipped on a
            re-run (resume); failed or corrupt ones re-run.

    Results are keyed and re-ordered by sweep point, never by completion
    order, so parallelism cannot change the output.
    """
    tasks = [tuple(t) for t in tasks]
    if jobs is None or jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if failures not in ("raise", "collect"):
        raise ConfigurationError(
            f"failures must be 'raise' or 'collect', got {failures!r}"
        )
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if backoff < 0:
        raise ConfigurationError(f"backoff must be >= 0, got {backoff}")
    if backoff_cap <= 0:
        raise ConfigurationError(
            f"backoff_cap must be positive, got {backoff_cap}"
        )
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"timeout must be positive, got {timeout}")

    robust = (
        timeout is not None
        or retries > 0
        or failures == "collect"
        or checkpoint_dir is not None
    )
    if not robust:
        return _sweep_fast(fn, tasks, jobs, seed)

    hashes = [task_hash(fn, task) for task in tasks]
    outcomes: Dict[int, Any] = {}
    pending: List[int] = []
    for index in range(len(tasks)):
        cached = (
            _load_checkpoint(checkpoint_dir, index, hashes[index])
            if checkpoint_dir is not None else None
        )
        if cached is not None:
            outcomes[index] = cached
        else:
            pending.append(index)
    if pending:
        if timeout is not None or (jobs > 1 and len(pending) > 1):
            fresh = _run_isolated(
                fn, tasks, pending, jobs=jobs, timeout=timeout,
                retries=retries, seed=seed, hashes=hashes,
                backoff=backoff, backoff_cap=backoff_cap,
            )
        else:
            fresh = _run_inline(
                fn, tasks, pending, retries=retries, seed=seed, hashes=hashes,
                backoff=backoff, backoff_cap=backoff_cap,
            )
        for index, outcome in fresh.items():
            outcomes[index] = outcome
            if checkpoint_dir is not None:
                _write_checkpoint(checkpoint_dir, index, hashes[index], outcome)

    results: List[Any] = []
    for index in range(len(tasks)):
        outcome = outcomes[index]
        if isinstance(outcome, FailedRun):
            if failures == "raise":
                raise SweepPointError(outcome)
            results.append(outcome)
        else:
            results.append(outcome[1])
    return results


def _sweep_fast(
    fn: Callable, tasks: List[Tuple], jobs: int, seed: int
) -> List[Any]:
    """The zero-overhead path (no timeout/retries/collect/checkpoint):
    inline loop or process pool, exceptions wrapped with point context."""
    tele = get_telemetry()
    if jobs == 1 or len(tasks) <= 1:
        results = []
        for index, task in enumerate(tasks):
            try:
                results.append(fn(*task))
            except Exception as exc:
                raise SweepPointError(
                    _failed_run(
                        index, task, task_hash(fn, task), seed,
                        [_failure_entry(exc)],
                    )
                ) from exc
            if tele is not None:
                tele.heartbeat(kind="sweep", done=index + 1,
                               total=len(tasks))
        return results
    from concurrent.futures import ProcessPoolExecutor

    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_apply, fn, task) for task in tasks]
        results = []
        for index, (future, task) in enumerate(zip(futures, tasks)):
            try:
                results.append(future.result())
            except Exception as exc:
                raise SweepPointError(
                    _failed_run(
                        index, task, task_hash(fn, task), seed,
                        [_failure_entry(exc)],
                    )
                ) from exc
            if tele is not None:
                tele.heartbeat(kind="sweep", done=index + 1,
                               total=len(tasks))
        return results
