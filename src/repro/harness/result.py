"""Structured run results: the RunResult record and its JSON form.

A :class:`RunResult` is the machine-readable record of one experiment
run: the resolved config, the summary metrics (the dict the legacy
``eN_*`` functions returned), the per-sweep-point records every table row
is derived from, the rendered tables themselves, engine/op-count
observability totals, wall time, and environment/git metadata. It
round-trips through JSON losslessly (tuples normalise to lists), which is
what the ``results/`` artifacts and their tests rely on.
"""

from __future__ import annotations

import platform
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

from .config import ExperimentConfig, _jsonable

__all__ = ["RunResult", "environment_metadata"]


def _strip_keys(value: Any, keys) -> Any:
    """Recursively drop dict entries whose key is in ``keys``."""
    if isinstance(value, dict):
        return {
            k: _strip_keys(v, keys)
            for k, v in value.items() if k not in keys
        }
    if isinstance(value, list):
        return [_strip_keys(v, keys) for v in value]
    return value


def environment_metadata() -> Dict[str, Any]:
    """Python/platform/git metadata identifying where a run happened."""
    meta: Dict[str, Any] = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "argv": list(sys.argv),
    }
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
        if commit.returncode == 0:
            meta["git_commit"] = commit.stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=5,
        )
        if dirty.returncode == 0:
            meta["git_dirty"] = bool(dirty.stdout.strip())
    except (OSError, subprocess.SubprocessError):
        pass  # not a git checkout / git unavailable: metadata is best-effort
    return meta


@dataclass
class RunResult:
    """The structured outcome of one experiment run."""

    experiment: str
    config: ExperimentConfig
    metrics: Dict[str, Any]
    points: List[Dict[str, Any]] = field(default_factory=list)
    tables: List[str] = field(default_factory=list)
    engine: Dict[str, float] = field(default_factory=dict)
    #: Observability block: ``{"metrics": <registry snapshot>}`` with
    #: sorted canonical keys. Deliberately NOT volatile — the registry
    #: must be bit-identical across ``--jobs`` values, and the
    #: parallel-vs-serial identity tests enforce that here.
    obs: Dict[str, Any] = field(default_factory=dict)
    #: Structured ``FailedRun`` records (JSON form) for sweep points that
    #: exhausted their attempts under the crash-tolerant harness. Whether
    #: a point times out depends on wall clock, so this is volatile.
    failed: List[Dict[str, Any]] = field(default_factory=list)
    started_at: str = ""
    wall_time_s: float = 0.0
    environment: Dict[str, Any] = field(default_factory=dict)
    #: Point/metric field names that measure wall-clock time (declared
    #: by the spec); excluded from the stable comparison form.
    timing_fields: List[str] = field(default_factory=list)

    #: JSON fields that legitimately differ between two runs of the same
    #: config (used by the parallel-vs-serial equality tests and CI).
    VOLATILE_FIELDS = (
        "started_at", "wall_time_s", "environment", "engine", "failed",
    )

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.harness/run-result/v1",
            "experiment": self.experiment,
            "config": self.config.to_json_dict(),
            "metrics": _jsonable(self.metrics),
            "points": _jsonable(self.points),
            "tables": list(self.tables),
            "engine": _jsonable(self.engine),
            "obs": _jsonable(self.obs),
            "failed": _jsonable(self.failed),
            "started_at": self.started_at,
            "wall_time_s": self.wall_time_s,
            "environment": _jsonable(self.environment),
            "timing_fields": list(self.timing_fields),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        return cls(
            experiment=data["experiment"],
            config=ExperimentConfig.from_json_dict(data["config"]),
            metrics=dict(data.get("metrics", {})),
            points=[dict(p) for p in data.get("points", [])],
            tables=list(data.get("tables", [])),
            engine=dict(data.get("engine", {})),
            obs=dict(data.get("obs", {})),
            failed=[dict(f) for f in data.get("failed", [])],
            started_at=data.get("started_at", ""),
            wall_time_s=data.get("wall_time_s", 0.0),
            environment=dict(data.get("environment", {})),
            timing_fields=list(data.get("timing_fields", [])),
        )

    def stable_json_dict(self) -> Dict[str, Any]:
        """The JSON form minus run-volatile fields (timestamps, wall
        time, environment) — two runs of the same config at the same
        code must agree on this exactly, regardless of ``--jobs``."""
        data = self.to_json_dict()
        for key in self.VOLATILE_FIELDS:
            data.pop(key, None)
        data["config"].pop("jobs", None)
        data["config"].pop("quiet", None)
        # Crash-tolerance knobs, like jobs, cannot change results — only
        # whether a run survives a hung/crashing point.
        data["config"].pop("timeout", None)
        data["config"].pop("retries", None)
        data["config"].pop("retry_backoff", None)
        data["config"].pop("checkpoint_dir", None)
        # The event-queue backend pops in identical (time, seq) order on
        # every kind, so it cannot change results either — the heap-vs-
        # calendar artifact-identity tests compare this stable form.
        data["config"].pop("engine", None)
        # Per-point engine records carry the same volatility (the
        # simulator's wall-time counter) down at point granularity, and
        # timing experiments measure wall clock as their data.
        drop = set(self.timing_fields) | {"engine"}
        data["points"] = [_strip_keys(p, drop) for p in data["points"]]
        data["metrics"] = _strip_keys(
            data["metrics"], set(self.timing_fields)
        )
        if self.timing_fields:
            # Rendered tables embed the timing columns.
            data.pop("tables", None)
        return data
