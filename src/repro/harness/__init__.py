"""The experiment run harness (config -> sweep -> result -> artifact).

This package is the machinery shared by every experiment in
:mod:`repro.bench`: typed run configuration, deterministic (optionally
process-parallel) parameter sweeps, and structured, machine-readable
result artifacts. The experiments themselves stay in the bench layer as
thin declarative bodies; everything about *running* them — seeding,
timing, fan-out, table emission, JSON artifacts — lives here.

Layering: ``repro.harness`` depends only on the standard library,
:mod:`repro.analysis.tables` (for table rendering), and
:mod:`repro.obs.metrics` (the per-run metrics registry merged into
``RunResult.obs``) — both themselves stdlib-only; it never imports the
bench layer, so scenario/workload code cannot leak into the runner
machinery.
"""

from .config import (
    SCALES,
    ExperimentConfig,
    ExperimentSpec,
    RunContext,
    build_config,
    resolve_params,
)
from .io import atomic_write_json, atomic_write_text, load_json_checked
from .result import RunResult, environment_metadata
from .run import run_config_for_spec, run_spec
from .sweep import (
    FailedRun,
    SweepPointError,
    backoff_delay,
    child_seed,
    spawn_seeds,
    sweep,
    task_hash,
)
from .artifacts import (
    artifact_path,
    benchmark_summary,
    load_artifact,
    write_artifact,
)

__all__ = [
    "SCALES",
    "ExperimentConfig",
    "ExperimentSpec",
    "FailedRun",
    "RunContext",
    "RunResult",
    "SweepPointError",
    "artifact_path",
    "atomic_write_json",
    "atomic_write_text",
    "backoff_delay",
    "benchmark_summary",
    "build_config",
    "child_seed",
    "environment_metadata",
    "load_artifact",
    "load_json_checked",
    "resolve_params",
    "run_config_for_spec",
    "run_spec",
    "spawn_seeds",
    "sweep",
    "task_hash",
    "write_artifact",
]
