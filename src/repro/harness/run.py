"""Execute one ExperimentConfig against its spec, producing a RunResult."""

from __future__ import annotations

import time
from datetime import datetime, timezone
from typing import Any, Mapping, Optional

from .config import ExperimentConfig, ExperimentSpec, RunContext, build_config
from .result import RunResult, environment_metadata

__all__ = ["run_spec", "run_config_for_spec"]


def run_config_for_spec(
    spec: ExperimentSpec, config: ExperimentConfig
) -> RunResult:
    """Run ``spec`` under a fully resolved ``config``."""
    params = spec.params_type(**dict(config.params))
    ctx = RunContext(
        seed=config.seed,
        jobs=config.jobs,
        quiet=config.quiet,
        timeout=config.timeout,
        retries=config.retries,
        checkpoint_dir=config.checkpoint_dir,
    )
    started = datetime.now(timezone.utc)
    t0 = time.perf_counter()
    metrics = spec.body(params, ctx)
    wall = time.perf_counter() - t0
    return RunResult(
        experiment=spec.eid,
        config=config,
        metrics=metrics,
        points=ctx.points,
        tables=ctx.tables,
        engine=dict(ctx.engine),
        obs={"metrics": ctx.metrics.snapshot()},
        failed=[f.to_json_dict() for f in ctx.failed],
        started_at=started.isoformat(),
        wall_time_s=wall,
        environment=environment_metadata(),
        timing_fields=list(spec.timing_fields),
    )


def run_spec(
    spec: ExperimentSpec,
    *,
    seed: int = 1,
    scale: str = "default",
    jobs: int = 1,
    quiet: bool = True,
    timeout: Optional[float] = None,
    retries: int = 0,
    checkpoint_dir: Optional[str] = None,
    overrides: Optional[Mapping[str, Any]] = None,
) -> RunResult:
    """Build the config for ``spec`` and run it in one call."""
    config = build_config(
        spec, seed=seed, scale=scale, jobs=jobs, quiet=quiet,
        timeout=timeout, retries=retries, checkpoint_dir=checkpoint_dir,
        overrides=overrides,
    )
    return run_config_for_spec(spec, config)
