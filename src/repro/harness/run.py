"""Execute one ExperimentConfig against its spec, producing a RunResult."""

from __future__ import annotations

import os
import time
from datetime import datetime, timezone
from typing import Any, Mapping, Optional

from ..net.eventq import ENGINE_ENV_VAR
from .config import ExperimentConfig, ExperimentSpec, RunContext, build_config
from .result import RunResult, environment_metadata

__all__ = ["run_spec", "run_config_for_spec"]


def run_config_for_spec(
    spec: ExperimentSpec, config: ExperimentConfig
) -> RunResult:
    """Run ``spec`` under a fully resolved ``config``.

    ``config.engine`` is applied as the process-default event-queue
    backend (the ``REPRO_ENGINE`` environment variable) for the duration
    of the body, so every Simulator the body builds — including those in
    forked sweep-pool workers, which inherit the environment — uses the
    requested backend without threading an argument through every point
    function. The prior value is restored afterwards.
    """
    params = spec.params_type(**dict(config.params))
    ctx = RunContext(
        seed=config.seed,
        jobs=config.jobs,
        quiet=config.quiet,
        timeout=config.timeout,
        retries=config.retries,
        retry_backoff=config.retry_backoff,
        checkpoint_dir=config.checkpoint_dir,
    )
    saved = os.environ.get(ENGINE_ENV_VAR)
    if config.engine is not None:
        os.environ[ENGINE_ENV_VAR] = config.engine
    started = datetime.now(timezone.utc)
    t0 = time.perf_counter()
    try:
        metrics = spec.body(params, ctx)
    finally:
        if config.engine is not None:
            if saved is None:
                os.environ.pop(ENGINE_ENV_VAR, None)
            else:
                os.environ[ENGINE_ENV_VAR] = saved
    wall = time.perf_counter() - t0
    return RunResult(
        experiment=spec.eid,
        config=config,
        metrics=metrics,
        points=ctx.points,
        tables=ctx.tables,
        engine=dict(ctx.engine),
        obs=(
            {"metrics": ctx.metrics.snapshot(), "flight": ctx.flight}
            if ctx.flight is not None
            else {"metrics": ctx.metrics.snapshot()}
        ),
        failed=[f.to_json_dict() for f in ctx.failed],
        started_at=started.isoformat(),
        wall_time_s=wall,
        environment=environment_metadata(),
        timing_fields=list(spec.timing_fields),
    )


def run_spec(
    spec: ExperimentSpec,
    *,
    seed: int = 1,
    scale: str = "default",
    jobs: int = 1,
    quiet: bool = True,
    timeout: Optional[float] = None,
    retries: int = 0,
    retry_backoff: float = 0.0,
    checkpoint_dir: Optional[str] = None,
    engine: Optional[str] = None,
    overrides: Optional[Mapping[str, Any]] = None,
) -> RunResult:
    """Build the config for ``spec`` and run it in one call."""
    config = build_config(
        spec, seed=seed, scale=scale, jobs=jobs, quiet=quiet,
        timeout=timeout, retries=retries, retry_backoff=retry_backoff,
        checkpoint_dir=checkpoint_dir, engine=engine, overrides=overrides,
    )
    return run_config_for_spec(spec, config)
