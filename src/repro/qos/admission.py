"""Call admission control with per-path delay quotes.

The paper assumes the control plane around the scheduler: "a flow is
added into the scheduler by a call admission controller (CAC) and removed
from the scheduler by a signalling protocol". This module is that
controller for the simulated network: it tracks per-link reserved
bandwidth, admits or rejects reservation requests, installs admitted
flows on every port of their path (via
:class:`~repro.net.scenario.Network`), and — where the port's scheduling
discipline has an analytic latency — returns an end-to-end **delay
quote** composed per Corollary 1 (LR servers):

    D <= sigma / rho + Σ_i latency(i) + Σ_i (propagation + store&forward)

Quotes are scheduler-aware:

* **SRR** — Lemma 2. The bound depends on the number of active flows N,
  which the controller cannot know in advance; quotes therefore use a
  worst-case N (``assumed_max_flows``, default: link capacity divided by
  the unit rate). This is precisely the practical cost of SRR's
  N-dependent bound that the follow-on work fixes.
* **DRR** — the Stiliadis-Varma latency, same N-dependence via the frame.
* **G-3 / RRR** — Theorem 2 / Eq. 11: N-independent, computed exactly.
* **WFQ family (wfq/scfq/stfq/wf2q+/vc/strr)** — the PGPS-style
  ``sigma/r + L/r + L/C`` per node (a valid quote for WFQ and WF²Q+;
  for the approximate disciplines it is indicative, and flagged so).
* **FIFO / RR / WRR** — no meaningful per-flow bound: the quote's
  ``guaranteed`` flag is False and only the fixed path delay is quoted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..analysis.bounds import (
    drr_delay_bound,
    g3_delay_bound,
    rrr_delay_bound,
    srr_delay_bound,
    wfq_delay_bound,
)
from ..core.errors import AdmissionError, ConfigurationError
from ..net.port import OutputPort
from ..net.scenario import Network

__all__ = ["DelayQuote", "Reservation", "AdmissionController"]

#: Disciplines whose quotes are hard analytic bounds.
_EXACT = {"srr", "drr", "g3", "rrr", "wfq", "wf2q+"}
#: Disciplines quoted with the PGPS formula as an approximation.
_APPROXIMATE = {"scfq", "stfq", "vc", "strr"}


@dataclass(frozen=True)
class DelayQuote:
    """An end-to-end delay promise for an admitted flow."""

    #: Total end-to-end bound in seconds (burst + scheduling + path).
    total: float
    #: The burst term sigma/rho.
    burst: float
    #: Per-hop scheduler latencies, in path order.
    per_hop: Tuple[float, ...]
    #: Fixed path delay (propagation + store-and-forward), seconds.
    path: float
    #: True when every hop's latency is a hard analytic bound.
    guaranteed: bool

    def milliseconds(self) -> float:
        """The total bound in milliseconds."""
        return self.total * 1e3


@dataclass
class Reservation:
    """An admitted flow's control-plane record.

    ``quote`` is the *current* promise; ``initial_quote`` the one made at
    admission time (they differ once :meth:`AdmissionController.requote`
    has folded in the measured active-flow count). A reservation that the
    overload governor tears down keeps its record with ``revoked`` set —
    a revoked flow's quote is explicitly withdrawn, never silently
    violated.
    """

    flow_id: Hashable
    src: str
    dst: str
    rate_bps: float
    weight: float
    sigma_bytes: float
    path: List[str] = field(default_factory=list)
    quote: Optional[DelayQuote] = None
    initial_quote: Optional[DelayQuote] = None
    #: Times the quote has been recomputed against measured N.
    requotes: int = 0
    revoked: bool = False
    revoke_reason: Optional[str] = None


class AdmissionController:
    """Per-link bandwidth accounting + admission + delay quotes.

    Args:
        network: The :class:`~repro.net.scenario.Network` to install
            admitted flows into. Every port the controller touches must
            run the same *kind* of scheduler it was told about via the
            network's configuration (the controller inspects each port's
            scheduler instance).
        weight_unit_bps: Rate represented by one integer weight unit for
            the round-robin disciplines (SRR/DRR/WRR weights are
            ``ceil(rate / unit)``).
        utilization_limit: Admit while reserved rate stays below
            ``limit * link rate`` on every hop (default 1.0; set lower to
            keep headroom for best-effort traffic).
        packet_size: The fixed packet size L used in the bound formulas.
        assumed_max_flows: The N plugged into N-dependent bounds (SRR,
            DRR). Default: ``link_rate / weight_unit_bps`` per link —
            the worst case a fully booked link allows.
        adaptive_quotes: When True, quotes use the *measured* per-port
            active-flow count (clamped to the worst case above) instead
            of the frozen worst-case N, both at admission time and on
            :meth:`requote`. Off by default: the conservative worst-case
            quote is the paper's CAC and the baseline the existing
            experiments assert against.
    """

    def __init__(
        self,
        network: Network,
        *,
        weight_unit_bps: float = 16_000,
        utilization_limit: float = 1.0,
        packet_size: int = 200,
        assumed_max_flows: Optional[int] = None,
        adaptive_quotes: bool = False,
    ) -> None:
        if not 0 < utilization_limit <= 1.0:
            raise ConfigurationError("utilization_limit must be in (0, 1]")
        if weight_unit_bps <= 0:
            raise ConfigurationError("weight_unit_bps must be positive")
        self.network = network
        self.weight_unit_bps = weight_unit_bps
        self.utilization_limit = utilization_limit
        self.packet_size = packet_size
        self.assumed_max_flows = assumed_max_flows
        self.adaptive_quotes = adaptive_quotes
        #: port -> reserved bits/s (id(port) keyed to avoid hashing ports).
        self._reserved: Dict[int, float] = {}
        self.reservations: Dict[Hashable, Reservation] = {}
        #: Reservations the governor explicitly tore down (still
        #: inspectable: "honored or revoked, never silently violated").
        self.revoked: Dict[Hashable, Reservation] = {}
        self.rejections = 0
        self.revocations = 0

    # -- admission -----------------------------------------------------------

    def request(
        self,
        flow_id: Hashable,
        src: str,
        dst: str,
        rate_bps: float,
        *,
        sigma_bytes: float = 0.0,
        max_queue: Optional[int] = None,
    ) -> Reservation:
        """Admit a ``(sigma, rate)`` flow or raise :class:`AdmissionError`.

        On success the flow is installed on every port along its path and
        the returned :class:`Reservation` carries the delay quote.
        """
        if rate_bps <= 0:
            raise ConfigurationError("rate must be positive")
        if flow_id in self.reservations:
            raise AdmissionError(f"flow {flow_id!r} already reserved")
        self.network.compute_routes()
        from ..net.routing import shortest_path

        path = shortest_path(self.network.adjacency, src, dst)
        ports = [
            self.network.nodes[a].ports[b] for a, b in zip(path, path[1:])
        ]
        # Bandwidth check on every hop first (no partial installs).
        for port in ports:
            budget = port.link.rate_bps * self.utilization_limit
            if self._reserved.get(id(port), 0.0) + rate_bps > budget + 1e-9:
                self.rejections += 1
                raise AdmissionError(
                    f"link {port.name} cannot fit {rate_bps / 1e3:.0f} kb/s "
                    f"(reserved {self._reserved.get(id(port), 0.0) / 1e3:.0f} "
                    f"of {budget / 1e3:.0f} kb/s)"
                )
        weight = self._weight_for(ports[0], rate_bps)
        try:
            self.network.add_flow(
                flow_id, src, dst, weight=weight, max_queue=max_queue
            )
        except AdmissionError:
            # A slotted scheduler (G-3/RRR) refused structurally
            # (fragmentation) even though bandwidth fits.
            self.rejections += 1
            raise
        for port in ports:
            self._reserved[id(port)] = (
                self._reserved.get(id(port), 0.0) + rate_bps
            )
        reservation = Reservation(
            flow_id, src, dst, rate_bps, weight, sigma_bytes, path
        )
        reservation.quote = self._quote(
            ports, rate_bps, weight, sigma_bytes,
            measured_n=self.adaptive_quotes,
        )
        reservation.initial_quote = reservation.quote
        self.reservations[flow_id] = reservation
        return reservation

    def release(self, flow_id: Hashable, *, strict: bool = False) -> bool:
        """Tear down a reservation (the paper's signalling-protocol exit).

        Idempotent: releasing an unknown or already-released flow is a
        no-op returning False (pass ``strict=True`` for the old raising
        behaviour). The reservation record is popped *first*, so even if
        teardown fails partway, a second release cannot subtract the
        bandwidth again. Links that vanished since admission (mid-path
        failure, reconfiguration) are skipped rather than KeyError-ing,
        and per-link accounting snaps to exactly 0 when the last
        reservation leaves, so repeated admit/release cycles cannot
        accumulate float drift into a phantom reservation.
        """
        reservation = self.reservations.pop(flow_id, None)
        if reservation is None:
            if strict:
                raise ConfigurationError(f"no reservation for {flow_id!r}")
            return False
        path = reservation.path
        for a, b in zip(path, path[1:]):
            node = self.network.nodes.get(a)
            port = node.ports.get(b) if node is not None else None
            if port is None:
                continue  # link torn down since admission
            remaining = max(
                0.0, self._reserved.get(id(port), 0.0) - reservation.rate_bps
            )
            if remaining <= 1e-9:
                self._reserved.pop(id(port), None)
            else:
                self._reserved[id(port)] = remaining
        try:
            self.network.remove_flow(flow_id)
        except ConfigurationError:
            # The data-plane flow was already gone (e.g. torn down
            # directly on the network); the control-plane release still
            # succeeded.
            pass
        return True

    def reserved_bps(self, src: str, dst: str) -> float:
        """Reserved bandwidth on the ``src -> dst`` link direction."""
        port = self.network.port(src, dst)
        return self._reserved.get(id(port), 0.0)

    # -- adaptive re-quoting and revocation ----------------------------------

    def requote(self, flow_id: Hashable) -> Optional[DelayQuote]:
        """Recompute a reservation's N-dependent quote against the
        *measured* per-port active-flow count.

        The SRR/DRR bounds scale with the number of active flows N; the
        admission-time quote plugs in a frozen worst case. Once flows
        churn, the real N on each hop is known — this recomputes the
        quote from the live scheduler flow tables (honestly: fewer
        flows than booked tightens the quote, more flows than booked
        loosens it past the promise, which is the overload governor's
        cue to revoke), stores it on ``reservation.quote`` with
        ``initial_quote`` preserved, and bumps ``requotes``.

        Returns the new quote, or None for unknown/revoked flows.
        """
        reservation = self.reservations.get(flow_id)
        if reservation is None:
            return None
        ports = self._ports_for(reservation.path)
        if ports is None:
            return None  # a link on the path was torn down
        reservation.quote = self._quote(
            ports,
            reservation.rate_bps,
            reservation.weight,
            reservation.sigma_bytes,
            measured_n=True,
        )
        reservation.requotes += 1
        return reservation.quote

    def requote_all(self) -> Dict[Hashable, DelayQuote]:
        """Re-quote every live reservation; flow id -> new quote."""
        quotes: Dict[Hashable, DelayQuote] = {}
        for flow_id in list(self.reservations):
            quote = self.requote(flow_id)
            if quote is not None:
                quotes[flow_id] = quote
        return quotes

    def revoke(self, flow_id: Hashable, *, reason: str = "overload") -> bool:
        """Explicitly withdraw a reservation (graceful degradation).

        The flow is torn down exactly as :meth:`release` would, but the
        record survives in :attr:`revoked` with ``revoked=True`` and the
        reason — so an audit can prove every admitted quote was either
        honored or explicitly revoked, never silently violated. Returns
        False for unknown (or already revoked) flows.
        """
        reservation = self.reservations.get(flow_id)
        if reservation is None:
            return False
        reservation.revoked = True
        reservation.revoke_reason = reason
        self.revoked[flow_id] = reservation
        self.revocations += 1
        self.release(flow_id)
        return True

    def _ports_for(self, path: List[str]) -> Optional[List[OutputPort]]:
        ports: List[OutputPort] = []
        for a, b in zip(path, path[1:]):
            node = self.network.nodes.get(a)
            port = node.ports.get(b) if node is not None else None
            if port is None:
                return None
            ports.append(port)
        return ports

    # -- quoting ---------------------------------------------------------

    def _weight_for(self, port: OutputPort, rate_bps: float) -> float:
        name = getattr(port.scheduler, "name", "")
        if name in ("wfq", "scfq", "stfq", "wf2q+", "vc", "strr"):
            return rate_bps
        if name == "rrr":
            capacity = port.scheduler.capacity
            return max(1, math.ceil(rate_bps / port.link.rate_bps * capacity))
        if name == "g3":
            capacity = port.scheduler.capacity
            return max(1, math.ceil(rate_bps / port.link.rate_bps * capacity))
        return max(1, math.ceil(rate_bps / self.weight_unit_bps))

    def _quote(
        self,
        ports: List[OutputPort],
        rate_bps: float,
        weight: float,
        sigma_bytes: float,
        *,
        measured_n: bool = False,
    ) -> DelayQuote:
        L = self.packet_size
        per_hop: List[float] = []
        guaranteed = True
        path_delay = 0.0
        for port in ports:
            link = port.link
            path_delay += link.delay + link.serialization_time(L)
            name = getattr(port.scheduler, "name", "")
            if name == "srr":
                n = self._n_for(port, measured_n)
                per_hop.append(
                    srr_delay_bound(
                        int(weight), n, L, link.rate_bps, self.weight_unit_bps
                    )
                )
            elif name == "drr":
                n = self._n_for(port, measured_n)
                quantum = getattr(port.scheduler, "quantum", 1500)
                per_hop.append(
                    drr_delay_bound(weight, n * 1.0 + weight, quantum, L,
                                    link.rate_bps)
                )
            elif name == "g3":
                per_hop.append(
                    g3_delay_bound(
                        int(weight), port.scheduler.capacity, L, link.rate_bps
                    )
                )
            elif name == "rrr":
                per_hop.append(
                    rrr_delay_bound(
                        int(weight), port.scheduler.capacity, L, link.rate_bps
                    )
                )
            elif name in _EXACT | _APPROXIMATE:  # the timestamp family
                per_hop.append(
                    wfq_delay_bound(sigma_bytes, rate_bps, L, link.rate_bps)
                    - sigma_bytes * 8.0 / rate_bps  # burst term added once
                )
                if name in _APPROXIMATE:
                    guaranteed = False
            else:
                # FIFO/RR/WRR: no per-flow bound exists.
                per_hop.append(0.0)
                guaranteed = False
        burst = sigma_bytes * 8.0 / rate_bps
        total = burst + sum(per_hop) + path_delay
        return DelayQuote(
            total=total,
            burst=burst,
            per_hop=tuple(per_hop),
            path=path_delay,
            guaranteed=guaranteed,
        )

    def _assumed_flows(self, link_rate_bps: float) -> int:
        if self.assumed_max_flows is not None:
            return self.assumed_max_flows
        return max(1, int(link_rate_bps // self.weight_unit_bps))

    def _n_for(self, port: OutputPort, measured: bool) -> int:
        """The N for a port's N-dependent bound: worst case, or measured.

        Measured N reads the live scheduler flow table — churn flows
        installed behind the controller's back included, so when churn
        blows past the booking bound the measured quote honestly
        *exceeds* the admission-time promise. That honesty is what the
        overload governor enforces against: a re-quote looser than the
        promise (by more than its slack) triggers revocation rather
        than a silently broken bound.
        """
        worst = self._assumed_flows(port.link.rate_bps)
        if not measured:
            return worst
        count = getattr(port.scheduler, "flow_count", None)
        if count is None:
            return worst
        return max(1, int(count))

    def __repr__(self) -> str:
        return (
            f"AdmissionController(reservations={len(self.reservations)}, "
            f"rejections={self.rejections})"
        )
