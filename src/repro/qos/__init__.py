"""QoS control plane: admission control and end-to-end delay quotes.

The data plane (schedulers, ports) enforces per-flow service; this
package is the control plane the paper assumes exists around it — a call
admission controller tracking per-link reservations and quoting
end-to-end delay bounds per the LR-server composition (Corollary 1),
plus the adaptive overload controller (:mod:`repro.qos.control`) that
closes the loop: rate estimation, watermark admission with probabilistic
shedding, SLO watchdogs, and graceful degradation under churn.
"""

from .admission import AdmissionController, DelayQuote, Reservation
from .control import (
    AdmissionDecision,
    ControlPlane,
    EWMARateEstimator,
    OverloadGovernor,
    RateEstimatorBank,
    SLOWatchdog,
    WatermarkPolicy,
    WeightAdapter,
    WindowRateEstimator,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ControlPlane",
    "DelayQuote",
    "EWMARateEstimator",
    "OverloadGovernor",
    "RateEstimatorBank",
    "Reservation",
    "SLOWatchdog",
    "WatermarkPolicy",
    "WeightAdapter",
    "WindowRateEstimator",
]
