"""QoS control plane: admission control and end-to-end delay quotes.

The data plane (schedulers, ports) enforces per-flow service; this
package is the control plane the paper assumes exists around it — a call
admission controller tracking per-link reservations and quoting
end-to-end delay bounds per the LR-server composition (Corollary 1).
"""

from .admission import AdmissionController, DelayQuote, Reservation

__all__ = ["AdmissionController", "DelayQuote", "Reservation"]
