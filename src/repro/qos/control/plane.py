"""The control plane: one periodic controller tying the loop together.

:class:`ControlPlane` is what an experiment arms on a network. It

* feeds per-port and per-flow **rate estimators** from the output ports'
  arrival hooks (offered load, measured before any drop decision);
* serves as the fault injector's churn **gate** (:meth:`admit_join`):
  predicted load = estimated offered load, plus the rates of joins
  admitted within the last estimator time constant (the EWMA has not
  seen their packets yet), plus the candidate — run through the
  :class:`~repro.qos.control.policy.WatermarkPolicy`;
* attaches the per-flow :class:`~repro.qos.control.slo.SLOWatchdog` to
  the delivery stream and registers each reservation's quoted bound as
  its target (:meth:`watch`);
* on a fixed simulation-time tick, drives the
  :class:`~repro.qos.control.governor.OverloadGovernor` (demote
  best-effort while the load sits at/above the high watermark; re-quote
  and revoke when churn invalidates the booking bound) and the optional
  :class:`~repro.qos.control.governor.WeightAdapter`;
* mirrors its state into the active metrics registry and emits
  ``control`` telemetry frames for ``python -m repro.obs top``.

Determinism: every *decision* is a function of simulation state and the
seeded shed RNG — wall time touches only telemetry emission, which
affects nothing inside the run, so ``--jobs N`` and heap/calendar
engines stay bit-identical.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ...core.errors import ConfigurationError
from ...obs.metrics import MetricsRegistry
from ...obs.metrics import get_registry as _active_registry
from ...obs.telemetry import get_telemetry
from .estimators import RateEstimatorBank
from .governor import OverloadGovernor, WeightAdapter
from .policy import WatermarkPolicy
from .slo import SLOWatchdog

__all__ = ["ControlPlane"]

#: Zone name -> numeric gauge value (for the metrics registry).
_ZONE_LEVEL = {"admit": 0, "shed": 1, "reject": 2}


class ControlPlane:
    """Adaptive overload controller for one network's bottleneck ports.

    Args:
        network: The live :class:`~repro.net.scenario.Network`.
        admission: The :class:`~repro.qos.admission.AdmissionController`
            whose reservations this plane protects (may be None for a
            gate-only plane).
        seed: Seeds the shed RNG (derive via ``child_seed`` per point).
        low/high: Watermarks, as fractions of bottleneck capacity.
        interval_s: Governor tick period (simulation seconds).
        horizon: Absolute sim time after which ticking stops (keeps
            open-ended ``run()`` calls terminating, like the monitors).
        tau_s: Rate-estimator time constant.
        slo_margin: Watchdog target = quote total × this factor.
        mode: Watchdog mode — ``"record"`` (default; violations counted
            and the governor revokes) or ``"raise"`` (first violation
            aborts the run).
        adapt_weights: Arm the weight/quantum adapter on the bottleneck
            scheduler.
    """

    def __init__(
        self,
        network: Any,
        admission: Optional[Any] = None,
        *,
        seed: int = 0,
        low: float = 0.75,
        high: float = 0.95,
        interval_s: float = 0.05,
        horizon: Optional[float] = None,
        tau_s: float = 0.25,
        slo_margin: float = 1.0,
        mode: str = "record",
        adapt_weights: bool = False,
        quote_slack: float = 1.25,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if interval_s <= 0:
            raise ConfigurationError(
                f"interval_s must be positive, got {interval_s}"
            )
        if slo_margin <= 0:
            raise ConfigurationError(
                f"slo_margin must be positive, got {slo_margin}"
            )
        self.network = network
        self.admission = admission
        self.interval_s = interval_s
        self.horizon = horizon
        self.tau_s = tau_s
        self.slo_margin = slo_margin
        self.adapt_weights = adapt_weights
        registry = registry if registry is not None else _active_registry()
        self.policy = WatermarkPolicy(
            low, high, rng=random.Random(seed)
        )
        self.port_rates = RateEstimatorBank(kind="ewma", tau_s=tau_s)
        self.flow_rates = RateEstimatorBank(kind="ewma", tau_s=tau_s)
        self.watchdog = SLOWatchdog(mode=mode, registry=registry)
        self.governor: Optional[OverloadGovernor] = None
        if admission is not None:
            self.governor = OverloadGovernor(
                admission, quote_slack=quote_slack
            )
            self.governor.watchdog = self.watchdog
            self.watchdog.add_violation_listener(self.governor.on_violation)
        self.adapter: Optional[WeightAdapter] = None
        #: Gated bottleneck ports (set by :meth:`arm`).
        self.ports: List[Any] = []
        self._capacity: Dict[int, float] = {}
        #: Joins admitted recently whose packets the EWMA has not seen
        #: yet: (admit_time, rate_bps), pruned after ``tau_s``.
        self._recent_admits: List[Tuple[float, float]] = []
        self.zone = "admit"
        self.ticks = 0
        self._armed = False
        self._stopped = False
        self._pending = None
        # Registry mirror.
        self._g_load = registry.gauge("control_load")
        self._g_zone = registry.gauge("control_zone")
        self._c_admitted = registry.counter("control_admitted_total")
        self._c_shed = registry.counter("control_shed_total")
        self._c_rejected = registry.counter("control_rejected_total")
        self._c_revoked = registry.counter("control_revocations_total")
        self._c_demoted = registry.counter("control_demoted_total")
        self._c_reweights = registry.counter("control_reweights_total")
        # Telemetry (wall-clock rate-limited; never feeds back into the
        # simulation).
        self._telemetry = get_telemetry()
        self._last_frame_wall = float("-inf")

    # -- lifecycle -----------------------------------------------------------

    def arm(self, ports: Optional[List[Any]] = None) -> "ControlPlane":
        """Hook the plane into the network and start the governor tick.

        ``ports`` are the bottleneck output ports to estimate and police
        (default: every port in the network). Idempotent.
        """
        if self._armed:
            return self
        self._armed = True
        if ports is None:
            ports = [
                port
                for node in self.network.nodes.values()
                for port in node.ports.values()
            ]
        self.ports = list(ports)
        for port in self.ports:
            self._capacity[id(port)] = port.link.rate_bps
            port.on_arrival.append(self._make_arrival_hook(port))
            if self.governor is not None and port.policer is None:
                port.policer = self.governor.police
        self.watchdog.attach(self.network.sinks)
        if self.adapt_weights and self.ports:
            self.adapter = WeightAdapter(self.ports[0].scheduler)
            self.network.sinks.add_listener(self._feed_adapter)
        self._pending = self.network.sim.schedule(
            self.interval_s, self._tick
        )
        self._emit_frame(force=True, event="armed")
        return self

    def stop(self) -> None:
        """Stop the governor tick (idempotent); hooks stay but are inert
        for scheduling purposes (pure observation)."""
        if self._stopped:
            return
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._emit_frame(force=True, event="stopped")

    # -- estimator feeds -----------------------------------------------------

    def _make_arrival_hook(self, port: Any):
        # Offered load: every packet presented to a gated port, before
        # any drop decision. Ports keyed by identity (names can clash
        # across nodes in principle); flows by flow id.
        port_key = id(port)
        port_rates = self.port_rates
        flow_rates = self.flow_rates

        def hook(now: float, packet: Any) -> None:
            port_rates.observe(port_key, now, packet.size)
            flow_rates.observe(packet.flow_id, now, packet.size)

        return hook

    def _feed_adapter(self, packet: Any) -> None:
        if self.adapter is not None:
            self.adapter.observe(
                self.network.sim.now,
                packet.flow_id,
                packet.delivered_at - packet.created_at,
            )

    # -- load ----------------------------------------------------------------

    def load(self, now: Optional[float] = None) -> float:
        """Estimated utilisation of the most loaded gated port, plus the
        not-yet-visible rates of recently admitted joins."""
        if now is None:
            now = self.network.sim.now
        pending = self._pending_admit_rate(now)
        worst = 0.0
        for port in self.ports:
            capacity = self._capacity[id(port)]
            offered = self.port_rates.rate_bps(id(port), now)
            worst = max(worst, (offered + pending) / capacity)
        return worst

    def _pending_admit_rate(self, now: float) -> float:
        keep = [
            (t, rate)
            for t, rate in self._recent_admits
            if now - t < self.tau_s
        ]
        self._recent_admits = keep
        return sum(rate for _t, rate in keep)

    # -- the churn gate ------------------------------------------------------

    def admit_join(
        self,
        flow_id: Hashable,
        src: str,
        dst: str,
        *,
        weight: float = 1,
        rate_bps: float = 16_000,
    ) -> bool:
        """Watermark-gate one churn join; True to install the flow."""
        now = self.network.sim.now
        capacity = min(self._capacity.values()) if self._capacity else None
        if capacity is None:
            return True  # not armed: gate open
        predicted = self.load(now) + rate_bps / capacity
        decision = self.policy.decide(predicted)
        if decision.accepted:
            self._c_admitted.inc()
            self._recent_admits.append((now, rate_bps))
        elif decision.zone == "reject":
            self._c_rejected.inc()
        else:
            self._c_shed.inc()
        self._emit_frame()
        return decision.accepted

    def flow_left(self, flow_id: Hashable) -> None:
        """Churn-leave notification: drop the flow's estimator state."""
        self.flow_rates.drop(flow_id)
        if self.adapter is not None:
            self.adapter.forget(flow_id)

    # -- reservations --------------------------------------------------------

    def watch(self, reservation: Any, *, target_s: Optional[float] = None,
              service_class: str = "guaranteed") -> None:
        """Put a reservation under SLO watch (target = quote × margin,
        or an explicit ``target_s``) and, when adapting, steer its
        weight toward the same target."""
        if target_s is None:
            if reservation.quote is None:
                raise ConfigurationError(
                    f"reservation {reservation.flow_id!r} has no quote "
                    f"and no explicit target_s"
                )
            target_s = reservation.quote.total * self.slo_margin
        self.watchdog.watch(
            reservation.flow_id, target_s, service_class=service_class
        )
        if self.adapter is not None:
            self.adapter.set_target(reservation.flow_id, target_s)

    # -- the governor tick ---------------------------------------------------

    def _tick(self) -> None:
        self._pending = None
        if self._stopped:
            return
        now = self.network.sim.now
        self.ticks += 1
        load = self.load(now)
        self.zone = self.policy.zone(load)
        self._g_load.set(load)
        self._g_zone.set(_ZONE_LEVEL[self.zone])
        if self.governor is not None:
            before = self.governor.demoted_packets
            self.governor.set_demoting(self.zone == "reject")
            self._c_demoted.inc(self.governor.demoted_packets - before)
            if self.governor.bound_invalidated():
                result = self.governor.enforce()
                self._c_revoked.inc(result["revoked"])
        if self.adapter is not None:
            self._c_reweights.inc(self.adapter.adapt(now))
        self._emit_frame()
        nxt = now + self.interval_s
        if self.horizon is not None and nxt > self.horizon:
            return
        self._pending = self.network.sim.schedule(
            self.interval_s, self._tick
        )

    # -- telemetry -----------------------------------------------------------

    def _emit_frame(self, *, force: bool = False, event: str = "tick") -> None:
        writer = self._telemetry
        if writer is None:
            return
        wall = time.monotonic()
        if not force and wall - self._last_frame_wall < 1.0:
            return
        self._last_frame_wall = wall
        revocations = (
            self.admission.revocations if self.admission is not None else 0
        )
        writer.frame(
            "control",
            event=event,
            sim_now=self.network.sim.now,
            load=round(self.load(), 4),
            zone=self.zone,
            admitted=self.policy.admitted,
            shed=self.policy.shed,
            rejected=self.policy.rejected,
            revocations=revocations,
            demoted=(
                self.governor.demoted_packets
                if self.governor is not None else 0
            ),
            slo_violations=len(self.watchdog.violations),
        )

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Controller state for experiment records (JSON-friendly)."""
        return {
            "zone": self.zone,
            "ticks": self.ticks,
            "admitted": self.policy.admitted,
            "shed": self.policy.shed,
            "rejected": self.policy.rejected,
            "revocations": (
                self.admission.revocations
                if self.admission is not None else 0
            ),
            "demoted_packets": (
                self.governor.demoted_packets
                if self.governor is not None else 0
            ),
            "reweights": (
                len(self.adapter.adjustments)
                if self.adapter is not None else 0
            ),
            "slo": self.watchdog.summary(),
        }

    def __repr__(self) -> str:
        return (
            f"ControlPlane(zone={self.zone!r}, ticks={self.ticks}, "
            f"policy={self.policy!r})"
        )
