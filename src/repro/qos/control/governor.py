"""Graceful degradation: the overload governor and the weight adapter.

:class:`OverloadGovernor` is the enforcement arm of the control plane.
It watches each reserved path's *measured* active-flow count against the
admission controller's assumed-max-flows booking bound, and when churn
invalidates the bound it re-quotes the affected reservations against the
measured N (:meth:`~repro.qos.admission.AdmissionController.requote`).
If a flow's honest re-quote blows past its admission-time promise by
more than ``quote_slack``, or its SLO watchdog reports a violation, the
governor *revokes* the reservation — the quote is explicitly withdrawn,
never silently broken. Under overload it also **demotes** best-effort
classes: an ingress policer (installed by the control plane on the
bottleneck ports) drops packets of demoted flows so the guaranteed
classes keep their service.

:class:`WeightAdapter` is the optimisation arm: a closed loop nudging
SRR weights (and thereby DRR per-flow quanta — DRR's per-visit credit is
``weight * quantum``) toward per-flow delay targets, following the
convex delay-vs-weight trade: observed delay above target → double the
weight share; comfortably below → halve it, releasing capacity. Purely
deterministic (EWMA of observed delays, integer weight steps through
:meth:`~repro.core.interfaces.FlowTableScheduler.reweight`), so adapted
runs stay bit-identical across ``--jobs``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from ...core.errors import ConfigurationError, ReproError

__all__ = ["OverloadGovernor", "WeightAdapter"]


class OverloadGovernor:
    """Re-quote / revoke / demote when measured load breaks the booking.

    Args:
        admission: The :class:`~repro.qos.admission.AdmissionController`
            whose reservations are governed.
        quote_slack: A re-quote may exceed the admission-time total by
            this factor before the reservation is revoked (1.0 = any
            loosening revokes; default tolerates 25%).
        demote_classes: Flow-id prefixes treated as best-effort and
            demotable under overload (the fault injector's churn flows
            are ``fault-*``).
    """

    def __init__(
        self,
        admission: Any,
        *,
        quote_slack: float = 1.25,
        demote_classes: Tuple[str, ...] = ("fault-", "be-"),
    ) -> None:
        if quote_slack < 1.0:
            raise ConfigurationError(
                f"quote_slack must be >= 1.0, got {quote_slack}"
            )
        self.admission = admission
        self.quote_slack = quote_slack
        self.demote_classes = demote_classes
        #: True while best-effort demotion is active (overload zone).
        self.demoting = False
        self.demotions = 0
        self.demoted_packets = 0
        #: (flow_id, reason) for every revocation this governor issued.
        self.revoked: List[Tuple[Hashable, str]] = []
        #: Watchdog to unwatch on revocation (set by the control plane).
        self.watchdog: Optional[Any] = None

    # -- booking-bound enforcement -------------------------------------------

    def bound_invalidated(self) -> bool:
        """True when any reserved path's measured flow count exceeds the
        admission controller's assumed-max-flows booking bound."""
        adm = self.admission
        for reservation in adm.reservations.values():
            ports = adm._ports_for(reservation.path)
            if ports is None:
                continue
            for port in ports:
                assumed = adm._assumed_flows(port.link.rate_bps)
                count = getattr(port.scheduler, "flow_count", 0)
                if count > assumed:
                    return True
        return False

    def enforce(self) -> Dict[str, int]:
        """One enforcement pass: re-quote everything, revoke what broke.

        Every live reservation is re-quoted against the measured per-port
        flow counts. A reservation whose honest re-quote exceeds
        ``quote_slack`` times its admission-time promise is revoked
        (reason ``"quote_invalidated"``). Returns counts for telemetry.
        """
        adm = self.admission
        requoted = 0
        revoked = 0
        for flow_id in list(adm.reservations):
            reservation = adm.reservations[flow_id]
            initial = reservation.initial_quote or reservation.quote
            quote = adm.requote(flow_id)
            if quote is None:
                continue
            requoted += 1
            if initial is not None and quote.total > initial.total * self.quote_slack:
                self.revoke(flow_id, reason="quote_invalidated")
                revoked += 1
        return {"requoted": requoted, "revoked": revoked}

    def revoke(self, flow_id: Hashable, *, reason: str) -> bool:
        """Revoke one reservation and stop watching its SLO."""
        if not self.admission.revoke(flow_id, reason=reason):
            return False
        self.revoked.append((flow_id, reason))
        if self.watchdog is not None:
            self.watchdog.unwatch(flow_id)
        return True

    def on_violation(self, violation: Any) -> None:
        """SLO-watchdog listener: a broken promise is withdrawn, not
        left standing (record-mode watchdogs keep the run alive and the
        audit trail lands in :attr:`revoked`)."""
        self.revoke(violation.flow_id, reason="slo_violation")

    # -- best-effort demotion ------------------------------------------------

    def set_demoting(self, demoting: bool) -> None:
        """Enter/leave demotion (called by the plane on zone changes)."""
        if demoting and not self.demoting:
            self.demotions += 1
        self.demoting = demoting

    def is_demotable(self, flow_id: Hashable) -> bool:
        """True when ``flow_id`` belongs to a demotable (best-effort)
        class by prefix convention."""
        return isinstance(flow_id, str) and flow_id.startswith(
            self.demote_classes
        )

    def police(self, packet: Any) -> Optional[str]:
        """Ingress policer verdict: drop best-effort while demoting."""
        if self.demoting and self.is_demotable(packet.flow_id):
            self.demoted_packets += 1
            return "demoted"
        return None

    def __repr__(self) -> str:
        return (
            f"OverloadGovernor(demoting={self.demoting}, "
            f"revoked={len(self.revoked)}, "
            f"demoted_packets={self.demoted_packets})"
        )


class WeightAdapter:
    """Closed-loop SRR-weight / DRR-quantum nudging toward delay targets.

    Args:
        scheduler: The bottleneck scheduler; must set
            ``supports_reweight`` (SRR, DRR) or :meth:`adapt` is a no-op.
        tau_s: EWMA time constant for the per-flow delay estimate.
        deadband: No adjustment while ``target/deadband <= delay <=
            target`` — the loop only reacts to real exceedance (above
            target) or real slack (below ``target/deadband``).
        max_weight: Upper clamp for adapted weights (keeps SRR's
            weight-matrix order bounded).
    """

    def __init__(
        self,
        scheduler: Any,
        *,
        tau_s: float = 0.5,
        deadband: float = 4.0,
        max_weight: int = 1 << 16,
    ) -> None:
        if deadband < 1.0:
            raise ConfigurationError(
                f"deadband must be >= 1.0, got {deadband}"
            )
        self.scheduler = scheduler
        self.tau_s = tau_s
        self.deadband = deadband
        self.max_weight = max_weight
        #: flow_id -> delay target (seconds).
        self.targets: Dict[Hashable, float] = {}
        self._delay: Dict[Hashable, float] = {}
        self._last_t: Dict[Hashable, float] = {}
        #: (time, flow_id, old_weight, new_weight) audit trail.
        self.adjustments: List[Tuple[float, Hashable, float, float]] = []

    def set_target(self, flow_id: Hashable, target_s: float) -> None:
        """Register/update the delay target steering ``flow_id``."""
        if target_s <= 0:
            raise ConfigurationError(
                f"target_s must be positive, got {target_s}"
            )
        self.targets[flow_id] = target_s

    def forget(self, flow_id: Hashable) -> None:
        """Drop a flow's target and estimator state (departed flow)."""
        self.targets.pop(flow_id, None)
        self._delay.pop(flow_id, None)
        self._last_t.pop(flow_id, None)

    def observe(self, now: float, flow_id: Hashable, delay_s: float) -> None:
        """Fold one delivered packet's delay into the flow's EWMA."""
        if flow_id not in self.targets:
            return
        prev = self._delay.get(flow_id)
        if prev is None:
            self._delay[flow_id] = delay_s
        else:
            dt = max(0.0, now - self._last_t.get(flow_id, now))
            alpha = 1.0 - math.exp(-dt / self.tau_s) if dt > 0 else 0.5
            self._delay[flow_id] = prev + alpha * (delay_s - prev)
        self._last_t[flow_id] = now

    def estimated_delay(self, flow_id: Hashable) -> float:
        """Current EWMA delay estimate (0.0 before any observation)."""
        return self._delay.get(flow_id, 0.0)

    def adapt(self, now: float) -> int:
        """One adaptation pass; returns the number of reweights applied.

        A flow whose smoothed delay exceeds its target gets its weight
        doubled (more service per round → convexly less delay); a flow
        under ``target / deadband`` is halved back toward 1, releasing
        the share. Rejected reweights (SRR max-order, DRR credit floor)
        are skipped, never fatal.
        """
        sched = self.scheduler
        if not getattr(sched, "supports_reweight", False):
            return 0
        applied = 0
        for flow_id, target in self.targets.items():
            if not sched.has_flow(flow_id):
                continue
            delay = self._delay.get(flow_id)
            if delay is None:
                continue
            weight = sched.flow_state(flow_id).weight
            if delay > target:
                new_weight = min(self.max_weight, int(weight) * 2)
            elif delay < target / self.deadband and weight > 1:
                new_weight = max(1, int(weight) // 2)
            else:
                continue
            if new_weight == weight:
                continue
            try:
                sched.reweight(flow_id, new_weight)
            except ReproError:
                continue
            self.adjustments.append((now, flow_id, weight, new_weight))
            applied += 1
        return applied

    def __repr__(self) -> str:
        return (
            f"WeightAdapter(targets={len(self.targets)}, "
            f"adjustments={len(self.adjustments)})"
        )
