"""Deterministic rate estimators: EWMA and sliding window.

Both estimators consume ``observe(now, nbytes)`` events — one call per
packet arrival at an output port (or per delivery, for goodput) — and
answer ``rate_bps(now)``. They are pure functions of their observation
sequence: no wall clock, no RNG, so a ``--jobs N`` sweep sees
bit-identical estimates to a serial run and heap vs calendar engines
agree exactly (the event order is identical by construction).

:class:`EWMARateEstimator` is the Lin/Morris time-sliding-window
exponential estimator used by router line cards (and by sfctss's
``RateEstimator``): on each observation the previous estimate is decayed
by ``exp(-dt / tau)`` and the new sample ``bytes * 8 / dt`` is blended
in with weight ``1 - exp(-dt / tau)``. Bursts show up within ~``tau``
seconds and fade just as fast.

:class:`WindowRateEstimator` is the exact windowed alternative: byte
counts binned into fixed sub-buckets covering the last ``window_s``
seconds; the rate is total bytes over the window. Exact but steppy;
useful when the controller wants a hard "bytes in the last 500 ms"
semantics rather than a smoothed view.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional

from ...core.errors import ConfigurationError

__all__ = ["EWMARateEstimator", "WindowRateEstimator", "RateEstimatorBank"]


class EWMARateEstimator:
    """Time-decayed exponential rate estimate (bits per second).

    Args:
        tau_s: Time constant of the exponential memory. Observations
            older than a few ``tau`` have negligible weight.
        floor_dt_s: Smallest inter-observation gap used in the sample
            rate ``bytes * 8 / dt`` — back-to-back arrivals at the same
            simulation instant are merged into one sample instead of
            dividing by zero.
    """

    __slots__ = ("tau_s", "floor_dt_s", "_rate_bps", "_last_t", "_pending")

    def __init__(self, tau_s: float = 0.25, *, floor_dt_s: float = 1e-9) -> None:
        if tau_s <= 0:
            raise ConfigurationError(f"tau_s must be positive, got {tau_s}")
        self.tau_s = tau_s
        self.floor_dt_s = floor_dt_s
        self._rate_bps = 0.0
        self._last_t: Optional[float] = None
        #: Bytes observed at exactly ``_last_t`` (coalesced burst sample).
        self._pending = 0

    def observe(self, now: float, nbytes: int) -> None:
        """Record ``nbytes`` arriving at simulation time ``now``."""
        if self._last_t is None:
            self._last_t = now
            self._pending = nbytes
            return
        if now <= self._last_t + self.floor_dt_s:
            # Same instant (a burst): coalesce into the pending sample.
            self._pending += nbytes
            return
        self._absorb(now)
        self._pending = nbytes

    def _absorb(self, now: float) -> None:
        """Fold the pending sample into the estimate and advance time."""
        dt = now - self._last_t
        decay = math.exp(-dt / self.tau_s)
        sample = self._pending * 8.0 / dt
        self._rate_bps = decay * self._rate_bps + (1.0 - decay) * sample
        self._last_t = now
        self._pending = 0

    def rate_bps(self, now: float) -> float:
        """The estimate at ``now`` (pending sample folded in, then decayed
        for the silence since the last arrival)."""
        if self._last_t is None:
            return 0.0
        rate = self._rate_bps
        last = self._last_t
        if self._pending and now > last + self.floor_dt_s:
            dt = now - last
            decay = math.exp(-dt / self.tau_s)
            return decay * rate + (1.0 - decay) * (self._pending * 8.0 / dt)
        if now > last:
            # Pure silence since the last sample: decay toward zero.
            return rate * math.exp(-(now - last) / self.tau_s)
        return rate

    def __repr__(self) -> str:
        return f"EWMARateEstimator(tau_s={self.tau_s}, rate={self._rate_bps:.0f})"


class WindowRateEstimator:
    """Exact byte rate over a sliding window of ``buckets`` sub-bins."""

    __slots__ = ("window_s", "buckets", "_bucket_s", "_counts", "_head_epoch")

    def __init__(self, window_s: float = 0.5, buckets: int = 10) -> None:
        if window_s <= 0:
            raise ConfigurationError(
                f"window_s must be positive, got {window_s}"
            )
        if buckets < 1:
            raise ConfigurationError(f"buckets must be >= 1, got {buckets}")
        self.window_s = window_s
        self.buckets = buckets
        self._bucket_s = window_s / buckets
        #: Ring of per-bucket byte counts; index = epoch % buckets.
        self._counts: List[int] = [0] * buckets
        #: Epoch (bucket index since t=0) of the newest observation.
        self._head_epoch = -1

    def _advance(self, epoch: int) -> None:
        if self._head_epoch < 0:
            self._head_epoch = epoch
            return
        if epoch <= self._head_epoch:
            return
        gap = epoch - self._head_epoch
        if gap >= self.buckets:
            self._counts = [0] * self.buckets
        else:
            for e in range(self._head_epoch + 1, epoch + 1):
                self._counts[e % self.buckets] = 0
        self._head_epoch = epoch

    def observe(self, now: float, nbytes: int) -> None:
        """Record ``nbytes`` at ``now`` (non-decreasing ``now`` expected)."""
        epoch = int(now / self._bucket_s)
        self._advance(epoch)
        self._counts[epoch % self.buckets] += nbytes

    def rate_bps(self, now: float) -> float:
        """Bytes observed in the trailing window, as bits per second."""
        epoch = int(now / self._bucket_s)
        self._advance(epoch)
        return sum(self._counts) * 8.0 / self.window_s

    def __repr__(self) -> str:
        return (
            f"WindowRateEstimator(window_s={self.window_s}, "
            f"buckets={self.buckets})"
        )


class RateEstimatorBank:
    """Per-key estimators sharing one configuration (ports and flows).

    ``kind`` picks the estimator family (``"ewma"`` / ``"window"``);
    keys are created lazily on first observation so churned flows cost
    nothing until they send.
    """

    def __init__(
        self,
        kind: str = "ewma",
        *,
        tau_s: float = 0.25,
        window_s: float = 0.5,
        buckets: int = 10,
    ) -> None:
        if kind not in ("ewma", "window"):
            raise ConfigurationError(
                f"estimator kind must be 'ewma' or 'window', got {kind!r}"
            )
        self.kind = kind
        self.tau_s = tau_s
        self.window_s = window_s
        self.buckets = buckets
        self._estimators: Dict[Hashable, object] = {}

    def _make(self):
        if self.kind == "ewma":
            return EWMARateEstimator(self.tau_s)
        return WindowRateEstimator(self.window_s, self.buckets)

    def observe(self, key: Hashable, now: float, nbytes: int) -> None:
        est = self._estimators.get(key)
        if est is None:
            est = self._estimators[key] = self._make()
        est.observe(now, nbytes)

    def rate_bps(self, key: Hashable, now: float) -> float:
        est = self._estimators.get(key)
        if est is None:
            return 0.0
        return est.rate_bps(now)

    def keys(self):
        return self._estimators.keys()

    def drop(self, key: Hashable) -> None:
        """Forget a key (a departed flow's estimator)."""
        self._estimators.pop(key, None)

    def __len__(self) -> int:
        return len(self._estimators)

    def __repr__(self) -> str:
        return f"RateEstimatorBank(kind={self.kind!r}, keys={len(self)})"
