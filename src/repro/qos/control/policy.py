"""Watermark admission policy with seeded probabilistic shedding.

Classic two-watermark load control (the shape of sfctss's ACP): with
``load`` the estimated utilisation of the protected resource,

* ``load < low``            — **admit**;
* ``low <= load < high``    — **shed** with probability
  ``(load - low) / (high - low)`` (a linear ramp from 0 at the low
  watermark to 1 at the high one), drawn from a *seeded* RNG so a
  ``--jobs N`` sweep makes bit-identical decisions to a serial run;
* ``load >= high``          — **reject** outright.

The policy is deliberately tiny and stateless apart from the RNG: the
zone/probability computation is a pure function of ``load``, so tests
can assert the curve exactly, and the only randomness is the shed draw,
whose consumption order is fixed by the deterministic event order of the
simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ...core.errors import ConfigurationError

__all__ = ["AdmissionDecision", "WatermarkPolicy"]

#: Watermark zones, in increasing-load order.
ZONES = ("admit", "shed", "reject")


@dataclass(frozen=True)
class AdmissionDecision:
    """One gate decision: what happened and why.

    ``accepted`` is the verdict; ``zone`` the watermark band the load
    fell in; ``shed_probability`` the ramp value (0 outside the shed
    band); ``draw`` the RNG sample consumed (None when no draw was
    needed — admit and reject zones are deterministic).
    """

    accepted: bool
    zone: str
    load: float
    shed_probability: float
    draw: Optional[float] = None


class WatermarkPolicy:
    """Two-watermark admit/shed/reject policy over a load estimate.

    Args:
        low: Utilisation below which everything is admitted.
        high: Utilisation at/above which everything is rejected.
        rng: The seeded RNG for shed draws. Pass a ``random.Random``
            derived from the run's child seed; defaults to ``Random(0)``
            (deterministic, but shared default — real callers should
            inject their own stream).
    """

    def __init__(
        self,
        low: float = 0.75,
        high: float = 0.95,
        *,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= low < high:
            raise ConfigurationError(
                f"watermarks must satisfy 0 <= low < high, got "
                f"low={low}, high={high}"
            )
        self.low = low
        self.high = high
        self.rng = rng if rng is not None else random.Random(0)
        #: Decision counters (the plane mirrors these into the registry).
        self.admitted = 0
        self.shed = 0
        self.rejected = 0

    # -- the pure curve ------------------------------------------------------

    def zone(self, load: float) -> str:
        """The watermark band ``load`` falls in."""
        if load < self.low:
            return "admit"
        if load < self.high:
            return "shed"
        return "reject"

    def shed_probability(self, load: float) -> float:
        """The linear shed ramp: 0 at/below ``low``, 1 at/above ``high``."""
        if load <= self.low:
            return 0.0
        if load >= self.high:
            return 1.0
        return (load - self.low) / (self.high - self.low)

    # -- the decision --------------------------------------------------------

    def decide(self, load: float) -> AdmissionDecision:
        """Admit/shed/reject at ``load``, consuming one RNG draw at most."""
        zone = self.zone(load)
        if zone == "admit":
            self.admitted += 1
            return AdmissionDecision(True, zone, load, 0.0)
        if zone == "reject":
            self.rejected += 1
            return AdmissionDecision(False, zone, load, 1.0)
        p = self.shed_probability(load)
        draw = self.rng.random()
        if draw < p:
            self.shed += 1
            return AdmissionDecision(False, zone, load, p, draw)
        self.admitted += 1
        return AdmissionDecision(True, zone, load, p, draw)

    def __repr__(self) -> str:
        return (
            f"WatermarkPolicy(low={self.low}, high={self.high}, "
            f"admitted={self.admitted}, shed={self.shed}, "
            f"rejected={self.rejected})"
        )
