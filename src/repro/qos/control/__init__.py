"""Adaptive overload control plane: estimation, admission, degradation.

The static :class:`~repro.qos.admission.AdmissionController` quotes a
delay bound at reservation time and never looks at the network again.
This package closes the loop:

* :mod:`~repro.qos.control.estimators` — deterministic EWMA and
  sliding-window **rate estimators**, fed from the output ports'
  arrival hooks (per-port offered load, per-flow rates).
* :mod:`~repro.qos.control.policy` — the **watermark admission policy**:
  admit below the low watermark, shed probabilistically (seeded RNG,
  bit-identical across ``--jobs``) between low and high, reject above
  high.
* :mod:`~repro.qos.control.slo` — the per-flow **SLO watchdog** raising
  structured :class:`~repro.core.errors.SLOViolation` (with trace and
  flight windows, like :class:`~repro.core.errors.InvariantViolation`)
  when a delivered packet's delay exceeds its quoted bound.
* :mod:`~repro.qos.control.governor` — **graceful degradation**: demote
  best-effort classes under overload, re-quote or revoke reservations
  when measured load invalidates the assumed-max-flows bound, and nudge
  SRR weights / DRR quanta toward per-class delay SLOs.
* :mod:`~repro.qos.control.plane` — :class:`ControlPlane`, the periodic
  controller tying it all together and exporting counters/gauges plus
  live ``control`` telemetry frames for ``python -m repro.obs top``.
"""

from .estimators import EWMARateEstimator, RateEstimatorBank, WindowRateEstimator
from .governor import OverloadGovernor, WeightAdapter
from .plane import ControlPlane
from .policy import AdmissionDecision, WatermarkPolicy
from .slo import SLOWatchdog

__all__ = [
    "AdmissionDecision",
    "ControlPlane",
    "EWMARateEstimator",
    "OverloadGovernor",
    "RateEstimatorBank",
    "SLOWatchdog",
    "WatermarkPolicy",
    "WeightAdapter",
    "WindowRateEstimator",
]
