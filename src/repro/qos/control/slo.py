"""Per-flow SLO watchdog: delivered delay vs the quoted bound.

The admission controller quotes a worst-case delay bound at reservation
time; nothing at runtime checked it until now. :class:`SLOWatchdog`
subscribes to the network's :class:`~repro.net.sinks.SinkRegistry` and
compares every delivered packet's end-to-end delay against the target
registered for its flow, raising (or recording, mode ``"record"``) a
structured :class:`~repro.core.errors.SLOViolation` on the first
exceedance — the control-plane twin of
:class:`~repro.faults.invariants.InvariantGuard`, down to attaching the
trace/flight windows leading up to the late delivery.

Unwatched flows are ignored (best-effort traffic has no SLO). Targets
can be updated in place (:meth:`watch` again after a re-quote) and
withdrawn (:meth:`unwatch`, e.g. when the governor revokes the
reservation — a revoked flow's lateness is expected, not a violation).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional

from ...core.errors import ConfigurationError, SLOViolation
from ...obs.flight import get_flight_recorder
from ...obs.metrics import MetricsRegistry
from ...obs.metrics import get_registry as _active_registry
from ...obs.trace import Tracer, get_tracer

__all__ = ["SLOWatchdog"]


class _FlowSLO:
    """Target and observation state for one watched flow."""

    __slots__ = (
        "flow_id", "target_s", "service_class", "packets", "worst_s",
        "violations",
    )

    def __init__(
        self, flow_id: Hashable, target_s: float, service_class: str
    ) -> None:
        self.flow_id = flow_id
        self.target_s = target_s
        self.service_class = service_class
        self.packets = 0
        self.worst_s = 0.0
        self.violations = 0


class SLOWatchdog:
    """Checks every delivery against the flow's registered delay target.

    Args:
        mode: ``"raise"`` (default) raises :class:`SLOViolation` on the
            first late delivery; ``"record"`` counts and keeps the run
            alive so violation totals land in the metrics artifact.
        window: Trace/flight events attached to each violation.
    """

    def __init__(
        self,
        *,
        mode: str = "raise",
        window: int = 32,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if mode not in ("raise", "record"):
            raise ConfigurationError(
                f"mode must be 'raise' or 'record', got {mode!r}"
            )
        self.mode = mode
        self.window = window
        self.tracer = tracer if tracer is not None else get_tracer()
        registry = registry if registry is not None else _active_registry()
        self._checked = registry.counter("slo_checks_total")
        self._violated = registry.counter("slo_violations_total")
        self._flows: Dict[Hashable, _FlowSLO] = {}
        self.violations: List[SLOViolation] = []
        self._on_violation = []

    # -- registration --------------------------------------------------------

    def watch(
        self,
        flow_id: Hashable,
        target_s: float,
        service_class: str = "guaranteed",
    ) -> None:
        """Register (or update) the delay target for ``flow_id``."""
        if target_s <= 0:
            raise ConfigurationError(
                f"target_s must be positive, got {target_s}"
            )
        slo = self._flows.get(flow_id)
        if slo is None:
            self._flows[flow_id] = _FlowSLO(flow_id, target_s, service_class)
        else:
            slo.target_s = target_s
            slo.service_class = service_class

    def unwatch(self, flow_id: Hashable) -> None:
        """Stop checking ``flow_id`` (revoked or departed flow)."""
        self._flows.pop(flow_id, None)

    def watched(self) -> Dict[Hashable, float]:
        """Currently watched flows and their targets."""
        return {fid: slo.target_s for fid, slo in self._flows.items()}

    def add_violation_listener(self, listener) -> None:
        """Subscribe ``listener(violation)`` to every violation (record
        mode included) — the governor uses this to revoke on exceedance."""
        self._on_violation.append(listener)

    # -- wiring --------------------------------------------------------------

    def attach(self, sinks: Any) -> "SLOWatchdog":
        """Subscribe to a :class:`SinkRegistry`'s delivery stream."""
        sinks.add_listener(self.on_delivery)
        return self

    # -- the check -----------------------------------------------------------

    def on_delivery(self, packet: Any) -> None:
        """Delivery listener: check one delivered packet."""
        slo = self._flows.get(packet.flow_id)
        if slo is None:
            return
        self._checked.inc()
        slo.packets += 1
        observed = packet.delivered_at - packet.created_at
        if observed > slo.worst_s:
            slo.worst_s = observed
        if observed <= slo.target_s:
            return
        slo.violations += 1
        self._violated.inc()
        trace_window = []
        if self.tracer is not None:
            trace_window = self.tracer.events()[-self.window:]
        recorder = get_flight_recorder()
        flight_window = (
            recorder.window(self.window) if recorder is not None else []
        )
        violation = SLOViolation(
            packet.flow_id,
            observed,
            slo.target_s,
            service_class=slo.service_class,
            details={"seq": packet.seq, "size": packet.size,
                     "delivered_at": packet.delivered_at},
            trace_window=trace_window,
            flight_window=flight_window,
        )
        self.violations.append(violation)
        for listener in self._on_violation:
            listener(violation)
        if self.mode == "raise":
            raise violation

    # -- reporting -----------------------------------------------------------

    def violation_count(self, flow_id: Hashable) -> int:
        """Violations recorded for one flow (0 if unwatched/clean)."""
        slo = self._flows.get(flow_id)
        return slo.violations if slo is not None else 0

    def class_violations(self) -> Dict[str, int]:
        """Violation totals per service class (watched flows only)."""
        totals: Dict[str, int] = {}
        for slo in self._flows.values():
            totals[slo.service_class] = (
                totals.get(slo.service_class, 0) + slo.violations
            )
        return totals

    def worst_delay(self, flow_id: Hashable) -> float:
        """Worst observed delay for a watched flow (0.0 if none seen)."""
        slo = self._flows.get(flow_id)
        return slo.worst_s if slo is not None else 0.0

    def summary(self) -> Dict[str, Any]:
        """Compact dict for metrics/telemetry snapshots."""
        return {
            "watched": len(self._flows),
            "violations": len(self.violations),
            "by_class": self.class_violations(),
        }

    def __repr__(self) -> str:
        return (
            f"SLOWatchdog(mode={self.mode!r}, watched={len(self._flows)}, "
            f"violations={len(self.violations)})"
        )
