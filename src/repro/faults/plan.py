"""Seeded fault plans: the deterministic half of fault injection.

A :class:`FaultPlan` is a *pre-computed, immutable schedule* of fault
events (link flaps, flow churn, overload bursts, malformed packets) for
one simulation run. Building the schedule up front — instead of rolling
dice inside the event loop — is what makes chaos reproducible: the plan
is a pure function of ``(FaultSpec, seed, duration, topology)``, so a
``--jobs 8`` sweep sees bit-identical fault schedules to a serial run,
and a failing run's exact fault sequence can be replayed from its seed
alone. :func:`FaultPlan.signature` hashes the schedule so tests and CI
can assert that identity cheaply.

Each fault category draws from its own :class:`random.Random` seeded via
the harness' SplitMix64 ``child_seed`` (category index as the child
index), so enabling or re-parameterising one category never perturbs the
schedule of another — the same property the sweep machinery gives
per-point RNGs.

Event timing uses Poisson arrivals (exponential inter-event gaps at the
category's rate) and exponential hold times, the standard memoryless
churn/flap model.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..harness.sweep import child_seed

__all__ = ["FaultEvent", "FaultSpec", "FaultPlan", "build_fault_plan"]

#: Category -> child-seed index. Append-only: re-ordering would silently
#: change every existing plan's schedule for the same seed.
_CATEGORY_INDEX = {"flap": 0, "churn": 1, "burst": 2, "malformed": 3}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` at simulation ``time`` with args.

    Kinds: ``link_down``/``link_up`` (args ``src``, ``dst``),
    ``flow_join``/``flow_leave`` (args ``flow``, plus ``src``/``dst``/
    ``weight``/``rate_bps`` on join), ``burst`` (args ``node``, ``count``,
    ``size``), ``malformed`` (args ``node``, ``variant``, ``size``).
    """

    time: float
    kind: str
    args: Tuple[Tuple[str, Any], ...] = ()

    def arg(self, key: str, default: Any = None) -> Any:
        for k, v in self.args:
            if k == key:
                return v
        return default

    def to_json_dict(self) -> Dict[str, Any]:
        return {"time": self.time, "kind": self.kind,
                "args": {k: v for k, v in self.args}}


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault intensities; all rates are events per second.

    A rate of 0 disables that category. ``intensity`` helpers scale every
    rate together (the churn experiment's x-axis).
    """

    #: Flow churn: mid-run joins at this rate, each leaving after an
    #: exponential hold of mean ``churn_hold_s``.
    churn_rate_hz: float = 0.0
    churn_hold_s: float = 1.0
    #: Joined flows draw an integer weight in [1, 2**churn_max_weight_bits].
    churn_max_weight_bits: int = 3
    #: Link flaps: down events at this rate, each lasting an exponential
    #: hold of mean ``flap_down_s``.
    flap_rate_hz: float = 0.0
    flap_down_s: float = 0.05
    #: Whether a downed link drops its queued backlog (True) or parks it
    #: until the link returns (False).
    drop_queued: bool = False
    #: Overload bursts: at this rate, ``burst_packets`` back-to-back
    #: packets slam the bottleneck's best-effort fault flow.
    burst_rate_hz: float = 0.0
    burst_packets: int = 32
    #: Malformed packets (oversized / unknown-flow) at this rate.
    malformed_rate_hz: float = 0.0

    def scaled(self, intensity: float) -> "FaultSpec":
        """This spec with every rate multiplied by ``intensity``."""
        if intensity < 0:
            raise ConfigurationError(
                f"fault intensity must be >= 0, got {intensity}"
            )
        return FaultSpec(
            churn_rate_hz=self.churn_rate_hz * intensity,
            churn_hold_s=self.churn_hold_s,
            churn_max_weight_bits=self.churn_max_weight_bits,
            flap_rate_hz=self.flap_rate_hz * intensity,
            flap_down_s=self.flap_down_s,
            drop_queued=self.drop_queued,
            burst_rate_hz=self.burst_rate_hz * intensity,
            burst_packets=self.burst_packets,
            malformed_rate_hz=self.malformed_rate_hz * intensity,
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted schedule of :class:`FaultEvent`."""

    seed: int
    duration: float
    events: Tuple[FaultEvent, ...] = ()

    def counts(self) -> Dict[str, int]:
        """Events per kind (quick summary for tables/metrics)."""
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def signature(self) -> str:
        """Content hash of the full schedule.

        Two plans with the same signature are byte-identical — this is
        what the CI chaos job compares between ``--jobs 1`` and
        ``--jobs 4`` runs.
        """
        payload = json.dumps(
            [ev.to_json_dict() for ev in self.events], sort_keys=True
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.faults/plan/v1",
            "seed": self.seed,
            "duration": self.duration,
            "signature": self.signature(),
            "events": [ev.to_json_dict() for ev in self.events],
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        events = tuple(
            FaultEvent(
                time=ev["time"], kind=ev["kind"],
                args=tuple(sorted(ev.get("args", {}).items())),
            )
            for ev in data.get("events", [])
        )
        return cls(
            seed=data.get("seed", 0),
            duration=data.get("duration", 0.0),
            events=events,
        )


def _poisson_times(rng: random.Random, rate_hz: float, duration: float) -> List[float]:
    """Poisson arrival times in (0, duration)."""
    times: List[float] = []
    if rate_hz <= 0:
        return times
    t = rng.expovariate(rate_hz)
    while t < duration:
        times.append(t)
        t += rng.expovariate(rate_hz)
    return times


def build_fault_plan(
    spec: FaultSpec,
    *,
    seed: int,
    duration: float,
    links: Sequence[Tuple[str, str]] = (),
    churn_route: Optional[Tuple[str, str]] = None,
    burst_node: Optional[str] = None,
    weight_unit_bps: float = 16_000,
    packet_size: int = 200,
) -> FaultPlan:
    """Derive the full fault schedule for one run.

    Args:
        spec: Fault intensities.
        seed: Root seed; each category derives its own SplitMix64 child.
        duration: Simulation horizon; events land in (0, duration).
        links: ``(src, dst)`` directions eligible for flapping.
        churn_route: ``(src, dst)`` route churned flows traverse.
        burst_node: Injection node for bursts/malformed packets.
        weight_unit_bps: Rate represented by one weight unit (joined
            flows source at ``weight * weight_unit_bps``).
        packet_size: Nominal packet size; malformed "oversize" packets
            are a multiple of it.
    """
    if duration <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    events: List[Tuple[float, int, FaultEvent]] = []
    order = 0

    def push(ev: FaultEvent) -> None:
        nonlocal order
        events.append((ev.time, order, ev))
        order += 1

    # Link flaps: down + paired up (clamped inside the horizon so every
    # downed link comes back — steady-state bias, not a dead topology).
    if spec.flap_rate_hz > 0 and links:
        rng = random.Random(child_seed(seed, _CATEGORY_INDEX["flap"]))
        for t in _poisson_times(rng, spec.flap_rate_hz, duration):
            src, dst = links[rng.randrange(len(links))]
            hold = rng.expovariate(1.0 / spec.flap_down_s)
            t_up = min(t + hold, duration * 0.999)
            push(FaultEvent(t, "link_down", (("src", src), ("dst", dst))))
            push(FaultEvent(t_up, "link_up", (("src", src), ("dst", dst))))

    # Flow churn: join + paired leave, exercising the schedulers' dynamic
    # add/remove paths (SRR weight-matrix k-order changes, DRR active-list
    # surgery, WFQ heap removal) mid-round.
    if spec.churn_rate_hz > 0 and churn_route is not None:
        rng = random.Random(child_seed(seed, _CATEGORY_INDEX["churn"]))
        src, dst = churn_route
        for i, t in enumerate(
            _poisson_times(rng, spec.churn_rate_hz, duration)
        ):
            weight = rng.randint(1, 2 ** spec.churn_max_weight_bits)
            hold = rng.expovariate(1.0 / spec.churn_hold_s)
            t_leave = min(t + hold, duration * 0.999)
            flow = f"churn-{i}"
            push(FaultEvent(
                t, "flow_join",
                (("flow", flow), ("src", src), ("dst", dst),
                 ("weight", weight),
                 ("rate_bps", weight * weight_unit_bps)),
            ))
            push(FaultEvent(t_leave, "flow_leave", (("flow", flow),)))

    # Overload bursts: back-to-back packets on a best-effort fault flow.
    if spec.burst_rate_hz > 0 and burst_node is not None:
        rng = random.Random(child_seed(seed, _CATEGORY_INDEX["burst"]))
        for t in _poisson_times(rng, spec.burst_rate_hz, duration):
            push(FaultEvent(
                t, "burst",
                (("node", burst_node),
                 ("count", spec.burst_packets),
                 ("size", packet_size)),
            ))

    # Malformed packets: oversized (MTU violation) or unknown-flow.
    if spec.malformed_rate_hz > 0 and burst_node is not None:
        rng = random.Random(child_seed(seed, _CATEGORY_INDEX["malformed"]))
        for t in _poisson_times(rng, spec.malformed_rate_hz, duration):
            if rng.random() < 0.5:
                push(FaultEvent(
                    t, "malformed",
                    (("node", burst_node), ("variant", "oversize"),
                     ("size", packet_size * 8)),
                ))
            else:
                push(FaultEvent(
                    t, "malformed",
                    (("node", burst_node), ("variant", "unknown_flow"),
                     ("size", packet_size)),
                ))

    events.sort(key=lambda item: (item[0], item[1]))
    return FaultPlan(
        seed=seed, duration=duration,
        events=tuple(ev for _, _, ev in events),
    )
