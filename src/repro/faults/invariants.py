"""Runtime invariant guards: opt-in structural checking on the hot path.

The delay/fairness bounds this repo reproduces rest on structural
invariants the analyses assume but nothing at runtime asserted until now:
SRR's weight matrix must link each backlogged flow exactly once per set
weight bit with ``k`` tracking the highest non-empty column and the WSS
scan hitting at most one empty column in a row; DRR must conserve credit
(no credit for idle flows, bounded deficit); the WFQ family's virtual
time must be monotone within a busy period; every work-conserving
scheduler must hand over a packet whenever backlog exists. An
:class:`InvariantGuard` checks all of this *from outside* the scheduler —
it wraps ``dequeue`` via an instance attribute, so an unguarded scheduler
runs the exact same code with zero added branches (the E5 op-count
profile is bit-identical with guards off; a test asserts it).

Violations raise a structured
:class:`~repro.core.errors.InvariantViolation` carrying the failed check,
the offending values, and — when a tracer or flight recorder is
active — the window of trace events and/or sampled fastpath records
leading up to the corruption.

Cost model: per-dequeue checks are O(1) comparisons; the structural
sweep (matrix walk, per-flow credit audit) is O(flows) and runs every
``every`` dequeues (default 64). ``--check-invariants`` on the bench CLI
turns the pack on for experiments that support it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.errors import InvariantViolation
from ..obs.flight import get_flight_recorder
from ..obs.metrics import MetricsRegistry
from ..obs.metrics import get_registry as _active_registry
from ..obs.trace import Tracer, get_tracer

__all__ = ["InvariantGuard", "attach_guard", "guard_network"]


class InvariantGuard:
    """Wraps one scheduler's ``dequeue`` with invariant checking.

    Args:
        sched: Any scheduler instance. Discipline-specific structural
            checks activate based on ``sched.name`` (srr / drr / the
            wfq timestamp family); the generic work-conservation check
            applies to every discipline.
        every: Run the O(flows) structural sweep every N dequeues
            (per-dequeue O(1) checks always run). 1 = every dequeue.
        mode: ``"raise"`` (default) raises on the first violation;
            ``"record"`` only counts, letting a run complete so the
            violation totals land in the metrics artifact.
        window: Trace events attached to a violation (needs a tracer).
    """

    def __init__(
        self,
        sched: Any,
        *,
        every: int = 64,
        mode: str = "raise",
        window: int = 32,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if mode not in ("raise", "record"):
            raise ValueError(f"mode must be 'raise' or 'record', got {mode!r}")
        self.sched = sched
        self.every = every
        self.mode = mode
        self.window = window
        self.tracer = tracer if tracer is not None else get_tracer()
        registry = registry if registry is not None else _active_registry()
        self.kind = getattr(sched, "name", type(sched).__name__)
        self._checks = registry.counter(
            "invariant_checks_total", scheduler=self.kind
        )
        self._violations = registry.counter(
            "invariant_violations_total", scheduler=self.kind
        )
        self.checks_run = 0
        self.violations: List[InvariantViolation] = []
        self._dequeues = 0
        self._attached = False
        # Discipline-specific state.
        self._last_vtime = 0.0
        self._max_packet_seen = 0
        self._structural = {
            "srr": self._check_srr,
            "drr": self._check_drr,
            "wfq": self._check_vtime,
            "wf2q+": self._check_vtime,
            "scfq": self._check_vtime,
            "stfq": self._check_vtime,
        }.get(self.kind)

    # -- lifecycle -----------------------------------------------------------

    def attach(self) -> "InvariantGuard":
        """Install the checking wrapper (instance-attribute shadowing)."""
        if self._attached:
            return self
        original = self.sched.dequeue

        def guarded_dequeue():
            backlog_before = self.sched.backlog
            terms_before = getattr(self.sched, "terms_scanned", 0)
            packet = original()
            self._after_dequeue(packet, backlog_before, terms_before)
            return packet

        self.sched.dequeue = guarded_dequeue
        self._attached = True
        return self

    def detach(self) -> None:
        """Restore the scheduler's own ``dequeue`` (class attribute)."""
        if self._attached:
            del self.sched.dequeue
            self._attached = False

    # -- violation plumbing --------------------------------------------------

    def _fail(self, check: str, **details: Any) -> None:
        window = []
        if self.tracer is not None:
            window = self.tracer.events()[-self.window:]
        # Crash-dump the flight recorder too: on the fast core the trace
        # window is usually empty, and the sampled operation records are
        # the only view of what the datapath did before the corruption.
        recorder = get_flight_recorder()
        flight_window = (
            recorder.window(self.window) if recorder is not None else []
        )
        violation = InvariantViolation(
            check, scheduler=self.kind, details=details, trace_window=window,
            flight_window=flight_window,
        )
        self._violations.inc()
        self.violations.append(violation)
        if self.mode == "raise":
            raise violation

    # -- per-dequeue (O(1)) checks -------------------------------------------

    def _after_dequeue(
        self, packet: Any, backlog_before: int, terms_before: int
    ) -> None:
        self._dequeues += 1
        self.checks_run += 1
        self._checks.inc()
        if packet is None and backlog_before > 0:
            self._fail(
                "work_conservation", backlog=backlog_before, returned=None,
            )
        if packet is not None:
            if backlog_before == 0:
                self._fail(
                    "phantom_packet", backlog=0,
                    flow=getattr(packet, "flow_id", "?"),
                )
            if packet.size > self._max_packet_seen:
                self._max_packet_seen = packet.size
        if self.kind == "srr" and packet is not None:
            self._check_srr_scan(terms_before)
        if self._structural is not None and self._dequeues % self.every == 0:
            self._structural()

    def _check_srr_scan(self, terms_before: int) -> None:
        """The WSS empty-scan bound, observed as a terms-per-packet cap.

        In packet mode every delivered packet advances the scan by at
        most 2 terms (at most one empty column in a row — the paper's
        O(1) argument). Deficit mode legitimately revisits a flow
        ``ceil(size / quantum)`` times before its credit covers the head
        packet, so the cap scales by that factor there.
        """
        delta = getattr(self.sched, "terms_scanned", 0) - terms_before
        if getattr(self.sched, "mode", "packet") == "packet":
            limit = 2
        else:
            quantum = max(1, getattr(self.sched, "quantum", 1))
            visits = -(-max(self._max_packet_seen, 1) // quantum)  # ceil
            limit = 2 * (visits + 1)
        if delta > limit:
            self._fail(
                "srr_scan_bound", terms_scanned=delta, limit=limit,
                order=getattr(self.sched, "order", "?"),
            )

    # -- structural sweeps (O(flows), every N dequeues) ----------------------

    def _check_srr(self) -> None:
        sched = self.sched
        matrix = sched.matrix
        try:
            matrix.check_invariants()
        except AssertionError as exc:
            self._fail("srr_matrix_links", error=str(exc))
            return  # record mode: matrix too broken for further checks
        # Each backlogged flow linked exactly once per set weight bit;
        # idle flows fully unlinked (work conservation's matrix half).
        for flow in sched._flows.values():
            linked = sum(1 for node in flow.nodes.values() if node.linked)
            expected = len(flow.nodes) if flow.queue else 0
            if linked != expected:
                self._fail(
                    "srr_flow_linkage", flow=flow.flow_id,
                    linked=linked, expected=expected,
                    backlogged=bool(flow.queue),
                )
        # k tracks the highest non-empty column.
        highest = 0
        for j in range(matrix.max_order):
            if matrix.column_population(j) > 0:
                highest = j + 1
        if matrix.order != highest:
            self._fail(
                "srr_order_tracking", order=matrix.order, recomputed=highest,
            )
        self._check_backlog_accounting()

    def _check_drr(self) -> None:
        sched = self.sched
        active_set = sched._active_set
        for flow in sched._flows.values():
            if flow.flow_id not in active_set and flow.deficit != 0:
                # Credit must not survive idling (DRR's conservation rule;
                # the Tabatabaee & Le Boudec bounds assume it).
                self._fail(
                    "drr_idle_credit", flow=flow.flow_id,
                    deficit=flow.deficit,
                )
            # Exact fractional credit: just before a send the deficit can
            # reach (head size - epsilon) + one grant, so the bound must
            # not truncate the grant.
            bound = flow.weight * sched.quantum + self._max_packet_seen
            if not 0 <= flow.deficit <= bound:
                self._fail(
                    "drr_deficit_bound", flow=flow.flow_id,
                    deficit=flow.deficit, bound=bound,
                )
        backlogged = {
            f.flow_id for f in sched._flows.values() if f.queue
        }
        if backlogged != set(active_set):
            self._fail(
                "drr_active_list",
                missing=sorted(map(str, backlogged - set(active_set))),
                stale=sorted(map(str, set(active_set) - backlogged)),
            )
        self._check_backlog_accounting()

    def _check_vtime(self) -> None:
        vtime = getattr(self.sched, "_vtime", 0.0)
        # Monotone within a busy period; 0.0 is the end-of-busy-period
        # reset and legitimately jumps backwards.
        if vtime < self._last_vtime and vtime != 0.0:
            self._fail(
                "vtime_monotonic", vtime=vtime, previous=self._last_vtime,
            )
        self._last_vtime = vtime
        self._check_backlog_accounting()

    def _check_backlog_accounting(self) -> None:
        flows = getattr(self.sched, "_flows", None)
        if flows is None:
            return
        actual = sum(len(f.queue) for f in flows.values())
        if self.sched.backlog != actual:
            self._fail(
                "backlog_accounting", counter=self.sched.backlog,
                queued=actual,
            )

    def __repr__(self) -> str:
        return (
            f"InvariantGuard({self.kind}, every={self.every}, "
            f"checks={self.checks_run}, violations={len(self.violations)})"
        )


def attach_guard(sched: Any, **kwargs: Any) -> InvariantGuard:
    """Build and attach a guard to one scheduler; returns the guard."""
    return InvariantGuard(sched, **kwargs).attach()


def guard_network(net: Any, **kwargs: Any) -> List[InvariantGuard]:
    """Attach a guard to every output-port scheduler of a network."""
    guards = []
    for node in net.nodes.values():
        for port in node.ports.values():
            guards.append(attach_guard(port.scheduler, **kwargs))
    return guards
