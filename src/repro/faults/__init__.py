"""Deterministic fault injection and runtime invariant guards.

The paper's setting is a *dynamic* multi-service network: flows are
admitted by a CAC, removed by signalling, links fail, and best-effort
traffic bursts — yet schedulers must stay O(1) and fair throughout. This
package makes that regime testable:

* :mod:`repro.faults.plan` — seeded, immutable :class:`FaultPlan`
  schedules (link flaps, flow churn, bursts, malformed packets) derived
  via the harness' SplitMix64 child seeds, so serial and ``--jobs N``
  runs see bit-identical chaos.
* :mod:`repro.faults.inject` — :class:`FaultInjector` replays a plan
  against a live network as ordinary simulator events, exporting
  ``fault_*`` counters and ``fault`` trace events.
* :mod:`repro.faults.invariants` — :class:`InvariantGuard`, the opt-in
  ``--check-invariants`` pack asserting SRR matrix integrity, DRR credit
  conservation, WFQ virtual-time monotonicity, and work conservation at
  runtime, raising structured
  :class:`~repro.core.errors.InvariantViolation` errors.
"""

from .inject import FAULT_FLOW, GHOST_FLOW, FaultInjector
from .invariants import InvariantGuard, attach_guard, guard_network
from .plan import FaultEvent, FaultPlan, FaultSpec, build_fault_plan

__all__ = [
    "FAULT_FLOW",
    "GHOST_FLOW",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InvariantGuard",
    "attach_guard",
    "build_fault_plan",
    "guard_network",
]
