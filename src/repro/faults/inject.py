"""The fault injector: replays a :class:`~repro.faults.plan.FaultPlan`
against a live :class:`~repro.net.scenario.Network`.

Faults are ordinary simulator events — ``install()`` schedules one
callback per planned event, so fault firing interleaves with packet
arrivals/departures under the engine's deterministic tie-breaking and
the run stays bit-reproducible. Every fired fault bumps a
``fault_<kind>_total`` counter in the active metrics registry and emits a
``fault`` trace event, so the PR-2 observability layer exports the chaos
alongside the packet lifecycle it perturbed.

What each kind exercises:

* ``link_down``/``link_up`` — the port transmit loop's availability
  handling (queued packets park or drop per ``drop_queued``).
* ``flow_join``/``flow_leave`` — the schedulers' *dynamic* paths: SRR's
  weight-matrix resize and k-order change mid-round, DRR's active-list
  surgery, WFQ/WF²Q+'s heap removal. This is the paper's CAC/signalling
  model ("a flow is added by a CAC and removed by a signalling
  protocol") actually running mid-simulation.
* ``burst`` — transient overload on a bounded best-effort fault flow.
* ``malformed`` — oversized (MTU-violating) and unknown-flow packets
  that must be dropped at the port, not crash the datapath.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ReproError
from ..core.packet import Packet
from ..net.scenario import Network
from ..net.sources import CBRSource
from ..obs.metrics import MetricsRegistry
from ..obs.metrics import get_registry as _active_registry
from ..obs.trace import Tracer, get_tracer
from .plan import FaultEvent, FaultPlan

__all__ = ["FaultInjector"]

#: Flow id of the injector's best-effort burst/malformed carrier.
FAULT_FLOW = "fault-burst"
#: Flow id deliberately never registered anywhere (unknown-flow faults).
GHOST_FLOW = "fault-ghost"


class FaultInjector:
    """Schedules and fires one plan's faults against one network.

    Args:
        net: The target network (already built; flows may churn later).
        plan: The precomputed deterministic schedule.
        drop_queued: Policy for downed links' queued packets.
        fault_route: ``(src, dst)`` route for burst/malformed carriers;
            required when the plan contains ``burst``/``malformed``
            events. The carrier flow is installed best-effort with a
            small bounded queue, so bursts pressure the scheduler without
            an unbounded memory tail.
        gate: Optional admission gate for churn joins — an object with
            ``admit_join(flow_id, src, dst, weight=..., rate_bps=...)
            -> bool`` (the control plane's watermark gate). A refused
            join is recorded as a skipped fault (``shed``), its source
            never attaches, so shed flows add zero load. ``flow_left``
            (if present) is notified on leave so the gate can drop
            per-flow estimator state.
        registry/tracer: Override the process-active metrics registry /
            tracer (both resolved at construction like ports do).
    """

    def __init__(
        self,
        net: Network,
        plan: FaultPlan,
        *,
        drop_queued: bool = False,
        fault_route: Optional[Tuple[str, str]] = None,
        fault_queue: int = 64,
        gate: Optional[Any] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.net = net
        self.plan = plan
        self.drop_queued = drop_queued
        self.fault_route = fault_route
        self.fault_queue = fault_queue
        self.gate = gate
        self.tracer = tracer if tracer is not None else get_tracer()
        registry = registry if registry is not None else _active_registry()
        self._counters = {
            kind: registry.counter(f"fault_{kind}_total")
            for kind in (
                "link_down", "link_up", "flow_join", "flow_leave",
                "burst", "malformed", "skipped",
            )
        }
        #: Chronological record of (time, kind) actually fired (tests).
        self.fired: List[Tuple[float, str]] = []
        self._seq = 0
        self._installed = False

    # -- setup ---------------------------------------------------------------

    def install(self) -> int:
        """Schedule every planned event on the simulator; returns count.

        Idempotent per injector instance (a second call is a no-op) so a
        scenario builder can call it defensively.
        """
        if self._installed:
            return 0
        self._installed = True
        needs_carrier = any(
            ev.kind in ("burst", "malformed") for ev in self.plan.events
        )
        if needs_carrier:
            if self.fault_route is None:
                raise ReproError(
                    "plan contains burst/malformed events: "
                    "FaultInjector needs fault_route=(src, dst)"
                )
            src, dst = self.fault_route
            self.net.add_flow(
                FAULT_FLOW, src, dst, weight=1, max_queue=self.fault_queue
            )
        for ev in self.plan.events:
            self.net.sim.schedule_at(ev.time, self._fire, ev)
        return len(self.plan.events)

    # -- firing --------------------------------------------------------------

    def _record(self, ev: FaultEvent, **extra: Any) -> None:
        self._counters[ev.kind].inc()
        self.fired.append((self.net.sim.now, ev.kind))
        if self.tracer is not None:
            fields: Dict[str, Any] = {k: v for k, v in ev.args}
            fields.update(extra)
            self.tracer.emit("fault", self.net.sim.now, fault=ev.kind, **fields)

    def _skip(self, ev: FaultEvent, reason: str) -> None:
        self._counters["skipped"].inc()
        self.fired.append((self.net.sim.now, f"{ev.kind}:skipped"))
        if self.tracer is not None:
            self.tracer.emit(
                "fault", self.net.sim.now, fault=ev.kind, skipped=reason,
            )

    def _fire(self, ev: FaultEvent) -> None:
        handler = getattr(self, f"_fire_{ev.kind}", None)
        if handler is None:
            self._skip(ev, f"unknown kind {ev.kind!r}")
            return
        handler(ev)

    def _fire_link_down(self, ev: FaultEvent) -> None:
        try:
            dropped = self.net.set_link_state(
                ev.arg("src"), ev.arg("dst"), up=False,
                drop_queued=self.drop_queued,
            )
        except ReproError as exc:
            self._skip(ev, str(exc))
            return
        self._record(ev, dropped=dropped)

    def _fire_link_up(self, ev: FaultEvent) -> None:
        try:
            self.net.set_link_state(ev.arg("src"), ev.arg("dst"), up=True)
        except ReproError as exc:
            self._skip(ev, str(exc))
            return
        self._record(ev)

    def _fire_flow_join(self, ev: FaultEvent) -> None:
        flow = ev.arg("flow")
        if self.gate is not None and not self.gate.admit_join(
            flow, ev.arg("src"), ev.arg("dst"),
            weight=ev.arg("weight", 1),
            rate_bps=ev.arg("rate_bps", 16_000),
        ):
            self._skip(ev, "shed")
            return
        try:
            self.net.add_flow(
                flow, ev.arg("src"), ev.arg("dst"),
                weight=ev.arg("weight", 1), max_queue=self.fault_queue,
            )
        except ReproError as exc:
            self._skip(ev, str(exc))
            return
        self.net.attach_source(
            flow,
            CBRSource(
                rate_bps=ev.arg("rate_bps", 16_000),
                packet_size=ev.arg("size", 200),
            ),
        )
        self._record(ev)

    def _fire_flow_leave(self, ev: FaultEvent) -> None:
        flow = ev.arg("flow")
        if flow not in self.net.flows:
            # The paired join was skipped (or someone else removed it).
            self._skip(ev, "flow not installed")
            return
        self.net.remove_flow(flow)
        if self.gate is not None:
            notify = getattr(self.gate, "flow_left", None)
            if notify is not None:
                notify(flow)
        self._record(ev)

    def _inject(self, node: str, flow_id: str, size: int) -> None:
        src, dst = self.fault_route if self.fault_route else (node, node)
        packet = Packet(
            flow_id, size, created_at=self.net.sim.now,
            seq=self._seq, src=src, dst=dst,
        )
        self._seq += 1
        self.net.nodes[node].inject(packet)

    def _fire_burst(self, ev: FaultEvent) -> None:
        node = ev.arg("node")
        count = ev.arg("count", 1)
        size = ev.arg("size", 200)
        for _ in range(count):
            self._inject(node, FAULT_FLOW, size)
        self._record(ev)

    def _fire_malformed(self, ev: FaultEvent) -> None:
        node = ev.arg("node")
        variant = ev.arg("variant", "oversize")
        flow = GHOST_FLOW if variant == "unknown_flow" else FAULT_FLOW
        self._inject(node, flow, ev.arg("size", 1600))
        self._record(ev, variant=variant)
