"""Replication statistics: mean, deviation and confidence intervals.

Simulation results depend on the stochastic sample path (Pareto on/off
timings, Poisson arrivals); sound reporting runs several seeds and quotes
a confidence interval. These helpers implement the standard Student-t
machinery without external dependencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.errors import ConfigurationError

__all__ = ["ReplicationSummary", "summarize_replications", "t_critical"]

# Two-sided 95% Student-t critical values by degrees of freedom (1..30);
# beyond 30 the normal approximation (1.96) is within 2%.
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def t_critical(df: int) -> float:
    """Two-sided 95% Student-t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ConfigurationError("degrees of freedom must be >= 1")
    if df <= len(_T95):
        return _T95[df - 1]
    return 1.96


@dataclass(frozen=True)
class ReplicationSummary:
    """Mean, sample deviation and a 95% CI over replications."""

    n: int
    mean: float
    stddev: float
    ci95: float  # half-width; interval is mean +/- ci95

    @property
    def low(self) -> float:
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        return self.mean + self.ci95

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci95:.2g} (n={self.n})"


def summarize_replications(values: Sequence[float]) -> ReplicationSummary:
    """Summarise per-seed results with a Student-t 95% CI.

    A single replication yields a zero-width interval (no variance
    information) — run more seeds for a meaningful CI.
    """
    xs = [float(v) for v in values]
    if not xs:
        raise ConfigurationError("no replications to summarise")
    n = len(xs)
    mean = sum(xs) / n
    if n == 1:
        return ReplicationSummary(1, mean, 0.0, 0.0)
    var = sum((x - mean) ** 2 for x in xs) / (n - 1)
    std = math.sqrt(var)
    ci = t_critical(n - 1) * std / math.sqrt(n)
    return ReplicationSummary(n, mean, std, ci)
