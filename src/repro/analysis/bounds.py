"""Analytic delay bounds from the paper(s), for bound-validation benches.

All bounds return **seconds** and take rates in bits/s, packet sizes in
bytes, consistent with the simulator. ``L`` denotes the (fixed) packet
size of the paper's model.

Implemented:

* SRR single-node bound — Theorem 1 (power-of-two rates) and Lemma 2
  (arbitrary rates): ``d_srr <= θ(n_m)·N·L/C + (m-1)·L/r`` with
  ``θ(n) < n``. We use the stated majorant ``θ(n) = n`` so measured
  delays must fall below the returned value.
* RRR bound — Eq. 11: ``d_rrr <= m·L/r`` where ``m`` counts the non-zero
  bits of the *normalised* weight (and therefore depends on the slot
  grid ``g``; the paper's criticism).
* G-3 single-node bound — Theorem 2:
  ``d_g3 <= θ(k-1)·L/C + m·L/r - L/C``.
* WFQ/PGPS single-node bound (Parekh-Gallager, for a
  ``(sigma, rho)``-constrained flow): ``sigma/r + L/r + L/C``.
* LR-server end-to-end composition — Corollary 1:
  ``D <= sigma/r + Σ_i d(i)``.

Note on "bounded delay": the paper's Definition 1 measures each flow's
finish times against its *ideal* (rate-r fluid) service started at the
flow's own arrival. The bounds above are therefore statements about the
scheduler-induced extra delay; queueing due to a flow sending faster
than its reservation is on top (and is what the leaky-bucket term
``sigma/r`` covers end to end).
"""

from __future__ import annotations

import math
from typing import Iterable, List

from ..core.errors import ConfigurationError

__all__ = [
    "nonzero_bits",
    "theta",
    "srr_delay_bound",
    "rrr_delay_bound",
    "g3_delay_bound",
    "wfq_delay_bound",
    "drr_delay_bound",
    "end_to_end_bound",
]


def nonzero_bits(value: int) -> int:
    """Number of non-zero binary coefficients (the paper's ``m``)."""
    if value < 0:
        raise ConfigurationError(f"value must be >= 0, got {value}")
    return bin(value).count("1")


def theta(n: int) -> float:
    """The paper's ``θ(n)`` majorant (Lemma 1 states ``θ(n) < n``).

    We take ``θ(n) = n`` (and ``θ(0) = 1`` so degenerate single-slot
    flows keep a positive bound), making every bound an upper envelope.
    """
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    return float(max(n, 1))


def srr_delay_bound(
    weight: int,
    n_flows: int,
    packet_size: int,
    link_rate_bps: float,
    weight_unit_bps: float,
) -> float:
    """Lemma 2: SRR single-node delay bound, in seconds.

    Args:
        weight: The flow's integer SRR weight.
        n_flows: Number of active flows ``N`` at the node.
        packet_size: Fixed packet size ``L`` in bytes.
        link_rate_bps: Output link rate ``C`` in bits/s.
        weight_unit_bps: Rate represented by one weight unit (so the
            flow's reserved rate is ``weight * weight_unit_bps``).

    The bound is ``θ(n_m)·N·L/C + (m-1)·L/r`` — *linear in N*, which is
    exactly what experiment E4 demonstrates.
    """
    _check_common(packet_size, link_rate_bps)
    if weight < 1:
        raise ConfigurationError("weight must be >= 1")
    if n_flows < 1:
        raise ConfigurationError("n_flows must be >= 1")
    if weight_unit_bps <= 0:
        # Without this, a zero/negative unit yields inf or negative
        # "bounds" that end_to_end_bound rejects confusingly downstream.
        raise ConfigurationError(
            f"weight_unit_bps must be positive, got {weight_unit_bps}"
        )
    rate = weight * weight_unit_bps
    m = nonzero_bits(weight)
    n_m = weight.bit_length() - 1  # highest set bit
    packet_time = packet_size * 8.0 / link_rate_bps
    return theta(n_m) * n_flows * packet_time + (m - 1) * packet_size * 8.0 / rate


def rrr_delay_bound(
    weight: int,
    capacity_slots: int,
    packet_size: int,
    link_rate_bps: float,
) -> float:
    """Eq. 11: ``d_rrr <= m·L/r`` with ``m`` bits of the slot weight.

    ``weight``/``capacity_slots`` define the reserved fraction of the
    link, so ``r = weight / capacity_slots * C``. The number of bits
    ``m`` is taken from the slot weight — the grid-dependent quantity the
    paper criticises.
    """
    _check_common(packet_size, link_rate_bps)
    if not 1 <= weight <= capacity_slots:
        raise ConfigurationError("weight must be in 1..capacity_slots")
    if capacity_slots < 1 or capacity_slots & (capacity_slots - 1):
        raise ConfigurationError("capacity_slots must be a power of two")
    rate = weight / capacity_slots * link_rate_bps
    m = nonzero_bits(weight)
    return m * packet_size * 8.0 / rate


def g3_delay_bound(
    weight: int,
    capacity_slots: int,
    packet_size: int,
    link_rate_bps: float,
) -> float:
    """Theorem 2: ``d_g3 <= θ(k-1)·L/C + m·L/r - L/C`` in seconds.

    ``k`` is the order of the capacity (``⌊log2 C_slots⌋ + 1``), ``m``
    the popcount of the flow's slot weight and ``r`` its reserved rate
    ``weight / capacity_slots * C``. N-independent — the whole point.
    """
    _check_common(packet_size, link_rate_bps)
    if capacity_slots < 1:
        raise ConfigurationError("capacity_slots must be >= 1")
    if not 1 <= weight <= capacity_slots:
        raise ConfigurationError("weight must be in 1..capacity_slots")
    k = capacity_slots.bit_length()
    m = nonzero_bits(weight)
    rate = weight / capacity_slots * link_rate_bps
    packet_time = packet_size * 8.0 / link_rate_bps
    return theta(k - 1) * packet_time + m * packet_size * 8.0 / rate - packet_time


def wfq_delay_bound(
    sigma_bytes: float,
    rate_bps: float,
    packet_size: int,
    link_rate_bps: float,
) -> float:
    """Parekh-Gallager single-node PGPS bound for a ``(sigma, r)`` flow:
    ``sigma/r + L/r + L/C`` seconds."""
    _check_common(packet_size, link_rate_bps)
    if rate_bps <= 0 or sigma_bytes < 0:
        raise ConfigurationError("need rate > 0 and sigma >= 0")
    return (
        sigma_bytes * 8.0 / rate_bps
        + packet_size * 8.0 / rate_bps
        + packet_size * 8.0 / link_rate_bps
    )


def drr_delay_bound(
    weight: float,
    total_weight: float,
    quantum: int,
    packet_size: int,
    link_rate_bps: float,
) -> float:
    """DRR's LR-server latency (Stiliadis & Varma, 1998): with per-flow
    quantum ``φ_i = weight * quantum`` and frame ``F = total_weight *
    quantum``, the latency is ``(3F - 2φ_i)/C`` (plus one packet time of
    store-and-forward), in seconds.

    Like SRR's bound this grows with the *frame* — i.e. with the number
    of flows — which is why DRR sits in the same delay class as SRR in
    experiment E4.
    """
    _check_common(packet_size, link_rate_bps)
    if weight <= 0 or total_weight < weight:
        raise ConfigurationError("need 0 < weight <= total_weight")
    if quantum < 1:
        raise ConfigurationError("quantum must be >= 1")
    phi = weight * quantum
    frame = total_weight * quantum
    return (
        (3 * frame - 2 * phi) * 8.0 / link_rate_bps
        + packet_size * 8.0 / link_rate_bps
    )


def end_to_end_bound(
    sigma_bytes: float,
    rate_bps: float,
    per_node_bounds: Iterable[float],
) -> float:
    """Corollary 1 (LR-server composition): ``D <= sigma/r + Σ d(i)``.

    ``per_node_bounds`` are the single-node scheduler bounds along the
    path (each from :func:`srr_delay_bound` / :func:`g3_delay_bound` /
    ...), and the burst term is paid once.
    """
    if rate_bps <= 0 or sigma_bytes < 0:
        raise ConfigurationError("need rate > 0 and sigma >= 0")
    bounds: List[float] = list(per_node_bounds)
    if any(b < 0 or math.isnan(b) for b in bounds):
        raise ConfigurationError("per-node bounds must be non-negative")
    return sigma_bytes * 8.0 / rate_bps + sum(bounds)


def _check_common(packet_size: int, link_rate_bps: float) -> None:
    if packet_size <= 0:
        raise ConfigurationError("packet_size must be positive")
    if link_rate_bps <= 0:
        raise ConfigurationError("link rate must be positive")
