"""Delay/throughput summary statistics used by every experiment table.

Pure functions over lists of floats — no simulator coupling — so they are
equally usable on simulation output and on analytic series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..core.errors import ConfigurationError

__all__ = ["DelayStats", "summarize_delays", "percentile", "jitter"]


@dataclass(frozen=True)
class DelayStats:
    """Summary of a per-packet delay series (seconds)."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float
    stddev: float

    def as_row(self, scale: float = 1e3) -> List[float]:
        """The stats as a list (default scaled to milliseconds)."""
        return [
            self.count,
            self.mean * scale,
            self.minimum * scale,
            self.p50 * scale,
            self.p95 * scale,
            self.p99 * scale,
            self.maximum * scale,
        ]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100])."""
    if not values:
        raise ConfigurationError("percentile of empty series")
    if not 0 <= q <= 100:
        raise ConfigurationError(f"percentile q must be in 0..100, got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    value = ordered[lo] * (1 - frac) + ordered[hi] * frac
    # Interpolation can round one ulp outside [lo, hi] for subnormal or
    # extreme inputs; clamp to keep the mathematical invariant exact.
    return min(max(value, ordered[lo]), ordered[hi])


def summarize_delays(delays: Iterable[float]) -> DelayStats:
    """Build a :class:`DelayStats` from a delay series."""
    values = list(delays)
    if not values:
        raise ConfigurationError("no delays recorded")
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return DelayStats(
        count=n,
        mean=mean,
        minimum=min(values),
        maximum=max(values),
        p50=percentile(values, 50),
        p95=percentile(values, 95),
        p99=percentile(values, 99),
        stddev=math.sqrt(var),
    )


def jitter(delays: Sequence[float]) -> float:
    """Mean absolute delay variation between consecutive packets
    (RFC 3550-style smoothing omitted; this is the plain mean |Δd|)."""
    if len(delays) < 2:
        return 0.0
    return sum(
        abs(b - a) for a, b in zip(delays, delays[1:])
    ) / (len(delays) - 1)
