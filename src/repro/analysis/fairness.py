"""Fairness indices: Jain, Golestani SFI, worst-case lag, smoothness.

These operate on *service traces* — ordered ``(time, flow_id, size)``
transmissions at one port (see
:class:`~repro.net.monitors.ServiceTrace`) — or on plain service-order
sequences, and implement the measures the scheduling literature (and the
paper's fairness discussion) uses:

* **Jain's index** over weight-normalised throughputs: 1.0 = perfectly
  proportional shares.
* **Golestani's Service Fairness Index (SFI)**: the maximum over flow
  pairs and time windows of ``|S_i(t1,t2)/w_i - S_j(t1,t2)/w_j|`` while
  both flows are continuously backlogged. Bounded for fair-queueing
  schedulers; grows with burstiness for WRR/DRR.
* **Worst-case normalised lag** against the fluid reference: for each
  flow, ``max_t (w_i/W * S(0,t) - S_i(0,t))`` — how far the scheduler
  lets a flow fall behind its entitled share.
* **Smoothness statistics** of inter-service distances — the property SRR
  is named for (experiment E2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

from ..core.errors import ConfigurationError

__all__ = [
    "jain_index",
    "service_fairness_index",
    "worst_case_lag",
    "worst_case_fairness",
    "gap_statistics",
    "GapStats",
]

TraceEntry = Tuple[float, Hashable, int]


def jain_index(shares: Sequence[float]) -> float:
    """Jain's fairness index of (already weight-normalised) allocations.

    ``(Σx)² / (n·Σx²)``; 1.0 means perfectly equal normalised shares,
    ``1/n`` means one flow took everything.
    """
    xs = [float(x) for x in shares]
    if not xs:
        raise ConfigurationError("jain_index of empty allocation")
    if any(x < 0 for x in xs):
        raise ConfigurationError("allocations must be non-negative")
    total = sum(xs)
    squares = sum(x * x for x in xs)
    if squares == 0:
        return 1.0  # all-zero: vacuously fair
    return total * total / (len(xs) * squares)


def service_fairness_index(
    trace: Sequence[TraceEntry],
    weights: Dict[Hashable, float],
    *,
    window: float,
    step: float = 0.0,
) -> float:
    """Golestani SFI over sliding windows of ``window`` seconds.

    Only flows in ``weights`` are considered (best-effort traffic is
    excluded by omission) and they are assumed continuously backlogged
    over the trace — arrange the workload accordingly (E6 uses greedy
    sources).

    Returns the maximum over windows and flow pairs of
    ``|S_i/w_i - S_j/w_j|`` in bytes-per-unit-weight.
    """
    if window <= 0:
        raise ConfigurationError("window must be positive")
    if not trace:
        return 0.0
    if step <= 0:
        step = window / 2
    t_start = trace[0][0]
    t_end = trace[-1][0]
    flows = list(weights)
    worst = 0.0
    t0 = t_start
    while t0 < t_end:
        t1 = t0 + window
        served = {f: 0.0 for f in flows}
        for t, fid, size in trace:
            if t0 <= t < t1 and fid in served:
                served[fid] += size
        normalised = [served[f] / weights[f] for f in flows]
        worst = max(worst, max(normalised) - min(normalised))
        t0 += step
    return worst


def worst_case_lag(
    trace: Sequence[TraceEntry],
    weights: Dict[Hashable, float],
) -> Dict[Hashable, float]:
    """Per-flow worst normalised service lag vs. the fluid share.

    At each transmission completion, the fluid reference has served flow
    ``i`` exactly ``w_i / W`` of the total bytes; the lag is how far the
    actual cumulative service is behind that. Flows are assumed
    continuously backlogged.
    """
    total_weight = sum(weights.values())
    if total_weight <= 0:
        raise ConfigurationError("total weight must be positive")
    served = {f: 0.0 for f in weights}
    total = 0.0
    lag = {f: 0.0 for f in weights}
    for _t, fid, size in trace:
        total += size
        if fid in served:
            served[fid] += size
        for f in weights:
            entitled = weights[f] / total_weight * total
            lag[f] = max(lag[f], entitled - served[f])
    return lag


def worst_case_fairness(records, rate_bps: float) -> float:
    """Empirical Worst-case Fairness Index of one flow (Bennett & Zhang).

    A scheduler is worst-case fair for flow ``i`` with constant ``C_i``
    when every packet arriving at time ``a`` departs by
    ``a + Q_i(a)/r_i + C_i``, where ``Q_i(a)`` is the flow's own queue
    (including the packet) at arrival. This function computes the
    empirical ``C_i`` — the maximum over delivered packets of
    ``delay - Q_i(arrival)/r`` — from per-packet delivery records
    (``seq``/``size``/``created_at``/``delivered_at``, e.g.
    :class:`~repro.net.sinks.DeliveryRecord`). Small values mean the
    scheduler never lets the flow fall behind its own fluid service;
    bursty schedulers (WRR/DRR) produce C_i on the order of a full round.

    Assumes per-flow FIFO service (true for every scheduler here), so
    delivery times are non-decreasing in ``seq``.
    """
    if rate_bps <= 0:
        raise ConfigurationError("rate must be positive")
    recs = sorted(records, key=lambda r: r.seq)
    if not recs:
        raise ConfigurationError("no records")
    from bisect import bisect_right

    deliver_times = [r.delivered_at for r in recs]
    prefix = [0]
    for r in recs:
        prefix.append(prefix[-1] + r.size)
    rate_bytes = rate_bps / 8.0
    worst = float("-inf")
    for idx, r in enumerate(recs):
        # Own-queue backlog at arrival: earlier packets not yet delivered
        # (per-flow FIFO makes deliver_times sorted) plus this packet.
        j = bisect_right(deliver_times, r.created_at, 0, idx)
        backlog = (prefix[idx] - prefix[j]) + r.size
        slack = (r.delivered_at - r.created_at) - backlog / rate_bytes
        worst = max(worst, slack)
    return worst


@dataclass(frozen=True)
class GapStats:
    """Inter-service distance statistics for one flow in a slot sequence."""

    flow_id: Hashable
    services: int
    min_gap: int
    max_gap: int
    mean_gap: float
    #: Coefficient of variation of the gaps; 0 = perfectly periodic
    #: (the "smoothness" scalar of experiment E2).
    cv: float


def gap_statistics(
    sequence: Sequence[Hashable], flow_id: Hashable
) -> GapStats:
    """Distances between consecutive services of ``flow_id`` in a service
    order (E2's smoothness measure; compare SRR vs WRR vs DRR)."""
    positions = [i for i, f in enumerate(sequence) if f == flow_id]
    if len(positions) < 2:
        raise ConfigurationError(
            f"flow {flow_id!r} served fewer than twice in the sequence"
        )
    gaps = [b - a for a, b in zip(positions, positions[1:])]
    mean = sum(gaps) / len(gaps)
    var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
    return GapStats(
        flow_id=flow_id,
        services=len(positions),
        min_gap=min(gaps),
        max_gap=max(gaps),
        mean_gap=mean,
        cv=(var ** 0.5) / mean if mean else 0.0,
    )
