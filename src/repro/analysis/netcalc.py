"""Network-calculus certification plane: arrival/service curves and bounds.

The paper's Definition 1 and Theorems 1-2 turn SRR's headline claim into a
*provable* delay statement. This module supplies the analytic toolkit to
assert that claim (and its round-robin relatives) against simulation:

* :class:`TokenBucket` — the ``(sigma, rho)`` leaky-bucket arrival curve
  ``gamma(t) = sigma + rho * t`` (sigma in bytes, rho in bits/s).
* :class:`RateLatency` — the ``beta_{R,T}(t) = R * max(0, t - T)`` strict
  service curve every LR-server in this repo offers.
* Min-plus algebra: :func:`convolve` (tandem composition),
  :func:`deconvolve` (output arrival envelope), :func:`delay_bound` and
  :func:`backlog_bound` (the three classic bounds of network calculus,
  Le Boudec & Thiran, *Network Calculus*, LNCS 2050).
* Per-discipline service-curve constructors for SRR (paper Lemma 2 /
  Theorem 1), DRR (Stiliadis-Varma 1998 latency *and* the tighter second
  network-calculus analysis of arXiv 2106.01034), WRR (burst-serial
  rounds, cf. arXiv 2202.08381), and IWRR (the interleaved variant whose
  strict service curve is derived in arXiv 2003.08372 — computed here
  numerically from the exact interleaved emission pattern).

Every latency constant is an *upper envelope*, not a tight constant: the
``bounds`` conformance-oracle family certifies observed per-flow delays
against these curves across the fuzz corpus, so a too-tight constant is a
red CI run, while tightness itself is *reported* (not asserted) by
experiment E16. Small additive packet-slack terms absorb dynamic effects
the static analyses ignore (flows joining mid-round, round swaps,
store-and-forward).

All rates are bits/s, sizes bytes, times seconds — consistent with the
simulator and :mod:`repro.analysis.bounds`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..core.errors import ConfigurationError
from .bounds import drr_delay_bound, srr_delay_bound

__all__ = [
    "TokenBucket",
    "RateLatency",
    "convolve",
    "deconvolve",
    "delay_bound",
    "backlog_bound",
    "srr_service_curve",
    "drr_service_curve",
    "wrr_service_curve",
    "iwrr_service_curve",
    "service_curve",
    "NETCALC_DISCIPLINES",
]

#: Disciplines :func:`service_curve` can certify.
NETCALC_DISCIPLINES = ("srr", "drr", "wrr", "iwrr")


# ---------------------------------------------------------------------------
# Curves
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TokenBucket:
    """Leaky-bucket arrival curve ``gamma(t) = sigma + rho * t``.

    ``sigma_bytes`` is the burst allowance, ``rho_bps`` the sustained
    rate. A CBR source of rate ``rho`` and packet size ``L`` conforms to
    ``TokenBucket(L, rho)`` (whole packets arrive instantaneously).
    """

    sigma_bytes: float
    rho_bps: float

    def __post_init__(self) -> None:
        if self.sigma_bytes < 0 or math.isnan(self.sigma_bytes):
            raise ConfigurationError(
                f"sigma must be >= 0 bytes, got {self.sigma_bytes}"
            )
        if self.rho_bps < 0 or math.isnan(self.rho_bps):
            raise ConfigurationError(
                f"rho must be >= 0 bps, got {self.rho_bps}"
            )

    def bytes_at(self, t: float) -> float:
        """Max cumulative arrivals in any window of length ``t`` (bytes)."""
        if t <= 0:
            return 0.0
        return self.sigma_bytes + self.rho_bps * t / 8.0


@dataclass(frozen=True)
class RateLatency:
    """Rate-latency service curve ``beta(t) = R * max(0, t - T)``."""

    rate_bps: float
    latency_s: float

    def __post_init__(self) -> None:
        if not self.rate_bps > 0 or math.isinf(self.rate_bps):
            raise ConfigurationError(
                f"service rate must be positive and finite, "
                f"got {self.rate_bps}"
            )
        if self.latency_s < 0 or math.isnan(self.latency_s):
            raise ConfigurationError(
                f"latency must be >= 0 s, got {self.latency_s}"
            )

    def bytes_at(self, t: float) -> float:
        """Guaranteed cumulative service after ``t`` seconds (bytes)."""
        return max(0.0, t - self.latency_s) * self.rate_bps / 8.0


# ---------------------------------------------------------------------------
# Min-plus algebra
# ---------------------------------------------------------------------------

def convolve(a: RateLatency, b: RateLatency) -> RateLatency:
    """Min-plus convolution of two rate-latency curves.

    ``(a ⊗ b)(t) = min(R_a, R_b) * max(0, t - (T_a + T_b))`` — the
    end-to-end service curve of two LR-servers in tandem (the closed form
    behind Corollary 1's additive composition).
    """
    return RateLatency(
        rate_bps=min(a.rate_bps, b.rate_bps),
        latency_s=a.latency_s + b.latency_s,
    )


def deconvolve(arrival: TokenBucket, service: RateLatency) -> TokenBucket:
    """Min-plus deconvolution: the output arrival envelope.

    A ``(sigma, rho)`` flow through a ``(R, T)`` server leaves as
    ``(sigma + rho*T, rho)`` — the burst grows by what can arrive during
    the latency. Requires ``rho <= R`` (otherwise the output burst is
    unbounded).
    """
    if arrival.rho_bps > service.rate_bps:
        raise ConfigurationError(
            f"deconvolution needs rho <= R: arrival rate "
            f"{arrival.rho_bps} bps exceeds service rate "
            f"{service.rate_bps} bps"
        )
    return TokenBucket(
        sigma_bytes=arrival.sigma_bytes
        + arrival.rho_bps * service.latency_s / 8.0,
        rho_bps=arrival.rho_bps,
    )


def delay_bound(arrival: TokenBucket, service: RateLatency) -> float:
    """Closed-form worst-case delay, seconds (inf when ``rho > R``).

    The horizontal deviation between ``gamma_{sigma,rho}`` and
    ``beta_{R,T}`` is ``T + sigma/R`` when ``rho <= R``; with ``rho > R``
    the backlog diverges and no finite delay is certified.
    """
    if arrival.rho_bps > service.rate_bps:
        return math.inf
    return service.latency_s + arrival.sigma_bytes * 8.0 / service.rate_bps


def backlog_bound(arrival: TokenBucket, service: RateLatency) -> float:
    """Closed-form worst-case backlog, bytes (inf when ``rho > R``).

    The vertical deviation is ``sigma + rho * T`` when ``rho <= R``.
    """
    if arrival.rho_bps > service.rate_bps:
        return math.inf
    return arrival.sigma_bytes + arrival.rho_bps * service.latency_s / 8.0


# ---------------------------------------------------------------------------
# Per-discipline service curves
# ---------------------------------------------------------------------------

def _check_link(packet_size: int, link_rate_bps: float) -> None:
    if packet_size <= 0:
        raise ConfigurationError("packet_size must be positive")
    if link_rate_bps <= 0:
        raise ConfigurationError("link rate must be positive")


def _int_weights(weight: int, weights: Sequence[int]) -> List[int]:
    ws = [int(w) for w in weights]
    if int(weight) < 1:
        raise ConfigurationError(f"weight must be >= 1, got {weight}")
    if any(w < 1 for w in ws):
        raise ConfigurationError(f"all weights must be >= 1, got {ws}")
    if int(weight) not in ws:
        raise ConfigurationError(
            f"weights must include the flow's own weight {weight}"
        )
    return ws


def srr_service_curve(
    weight: int,
    weights: Sequence[int],
    packet_size: int,
    link_rate_bps: float,
) -> RateLatency:
    """SRR strict service curve (paper Lemma 2 as an LR-server latency).

    ``weights`` is the full competitor set *including* this flow; the
    reserved rate is the proportional share ``w_i / W * C`` and the
    latency is the Lemma 2 delay bound with one weight unit worth
    ``C / W`` (full reservation).
    """
    _check_link(packet_size, link_rate_bps)
    ws = _int_weights(weight, weights)
    total = sum(ws)
    rate = weight / total * link_rate_bps
    latency = srr_delay_bound(
        int(weight), len(ws), packet_size, link_rate_bps,
        link_rate_bps / total,
    )
    return RateLatency(rate_bps=rate, latency_s=latency)


def drr_service_curve(
    weight: float,
    weights: Sequence[float],
    quantum: int,
    packet_size: int,
    link_rate_bps: float,
) -> RateLatency:
    """DRR strict service curve: best of three provable latencies.

    With per-flow quantum ``phi_i = w_i * quantum`` (bytes) and frame
    ``F = sum(w_j) * quantum``:

    * *Generic* (any quanta, from the deficit invariant ``D_j < L``):
      each competitor sends at most ``k * phi_j + L`` bytes across the
      ``k`` rounds this flow needs, giving
      ``T = (L*(F - phi) + (n-1)*L*phi) / (phi * C) + (F + n*L)/C``.
      This stays valid in the sub-packet-quantum regime
      (``phi_i < L``) where the classic analyses don't apply.
    * *Stiliadis-Varma 1998* (``phi_i >= L``): ``(3F - 2*phi_i)/C``
      — via :func:`repro.analysis.bounds.drr_delay_bound`.
    * *Second NC analysis* (arXiv 2106.01034, ``phi_i >= L``):
      ``(sum_{j != i}(phi_j + L) + L)/C`` — tighter than
      Stiliadis-Varma whenever ``F`` is large relative to ``n * L``.
    """
    _check_link(packet_size, link_rate_bps)
    if weight <= 0:
        raise ConfigurationError(f"weight must be positive, got {weight}")
    if quantum < 1:
        raise ConfigurationError(f"quantum must be >= 1, got {quantum}")
    total = float(sum(weights))
    if total < weight:
        raise ConfigurationError("weights must include the flow's own weight")
    n = len(weights)
    L = float(packet_size)
    phi = weight * quantum
    frame = total * quantum
    rate = phi / frame * link_rate_bps
    generic = (
        (L * (frame - phi) + (n - 1) * L * phi) * 8.0 / (phi * link_rate_bps)
        + (frame + n * L) * 8.0 / link_rate_bps
    )
    latency = generic
    if phi >= L:
        sv = drr_delay_bound(weight, total, quantum, packet_size,
                             link_rate_bps)
        nc2 = (
            ((frame - phi) + (n - 1) * L + L) * 8.0 / link_rate_bps
            + L * 8.0 / link_rate_bps
        )
        latency = min(latency, sv, nc2)
    return RateLatency(rate_bps=rate, latency_s=latency)


def wrr_service_curve(
    weight: int,
    weights: Sequence[int],
    packet_size: int,
    link_rate_bps: float,
) -> RateLatency:
    """WRR strict service curve (burst-serial rounds, arXiv 2202.08381).

    A round serves each flow's full ``w_j``-packet burst consecutively,
    so flow ``i`` waits at most ``W - w_i`` foreign packets between
    bursts; within the burst its staircase never falls more than one
    packet behind the ``w_i/W`` rate line. One extra packet of slack
    absorbs the join-at-tail phase.
    """
    _check_link(packet_size, link_rate_bps)
    ws = _int_weights(weight, weights)
    total = sum(ws)
    slot = packet_size * 8.0 / link_rate_bps
    rate = weight / total * link_rate_bps
    latency = (total - weight + 2) * slot
    return RateLatency(rate_bps=rate, latency_s=latency)


def _iwrr_latency_slots(weight: int, others: Sequence[int]) -> float:
    """Worst-phase horizontal deviation of the interleaved pattern, in
    packet slots.

    Builds one period of the static IWRR emission pattern with the
    tagged flow ranked *last* in every cycle it participates in (the
    worst service position), then takes the sup over all backlog-start
    phases ``p`` and packet indices ``k`` of the gap between the flow's
    ``k``-th finish slot and the ideal ``k * W / w`` fluid slot. The
    deviation is periodic in ``k`` with period ``w`` (one round adds
    exactly ``W`` slots and ``w`` services), so one round of ``k`` per
    phase suffices.
    """
    w = int(weight)
    wmax = max([w] + [int(o) for o in others]) if others else w
    # finish[k] = slot index (1-based, within one round) at which the
    # tagged flow's (k+1)-th packet of the round completes.
    finish: List[int] = []
    slot_idx = 0
    for cycle in range(1, wmax + 1):
        slot_idx += sum(1 for o in others if int(o) >= cycle)
        if cycle <= w:
            slot_idx += 1
            finish.append(slot_idx)
    period = slot_idx  # == w + sum(others): one full round of slots
    per_packet = period / w  # ideal fluid slots per tagged packet
    worst = 0.0
    for phase in range(period):
        k = 0
        for round_offset in (0, period):
            for s in finish:
                t = round_offset + s - phase
                if t <= 0:
                    continue
                k += 1
                worst = max(worst, t - k * per_packet)
    return worst


def iwrr_service_curve(
    weight: int,
    weights: Sequence[int],
    packet_size: int,
    link_rate_bps: float,
) -> RateLatency:
    """IWRR strict service curve (arXiv 2003.08372).

    Interleaved WRR spreads each flow's ``w_i`` per-round packets across
    cycles ``c = 1..w_i`` (cycle ``c`` serves every flow with
    ``w_j >= c`` once), so the latency is governed by the interleaved
    pattern rather than WRR's serial bursts — strictly better for
    ``w_i > 1``. The pattern deviation is computed exactly by
    :func:`_iwrr_latency_slots`; ``n + 2`` packet slots of slack absorb
    the dynamic effects (joining a round in progress, round swap order).
    """
    _check_link(packet_size, link_rate_bps)
    ws = _int_weights(weight, weights)
    total = sum(ws)
    others = list(ws)
    others.remove(int(weight))
    slot = packet_size * 8.0 / link_rate_bps
    rate = weight / total * link_rate_bps
    latency = (_iwrr_latency_slots(int(weight), others)
               + len(ws) + 2) * slot
    return RateLatency(rate_bps=rate, latency_s=latency)


def service_curve(
    discipline: str,
    *,
    weight: float,
    weights: Sequence[float],
    packet_size: int,
    link_rate_bps: float,
    quantum: int = 1500,
) -> RateLatency:
    """Per-flow strict service curve for one certified discipline.

    ``discipline`` is a registry name (``:fast`` twins map to their
    object discipline); ``weights`` is the complete flow set at the
    node, including this flow's own ``weight``.
    """
    name = discipline[:-5] if discipline.endswith(":fast") else discipline
    if name == "srr":
        return srr_service_curve(int(weight), [int(w) for w in weights],
                                 packet_size, link_rate_bps)
    if name == "drr":
        return drr_service_curve(weight, weights, quantum, packet_size,
                                 link_rate_bps)
    if name == "wrr":
        return wrr_service_curve(int(weight), [int(w) for w in weights],
                                 packet_size, link_rate_bps)
    if name == "iwrr":
        return iwrr_service_curve(int(weight), [int(w) for w in weights],
                                  packet_size, link_rate_bps)
    raise ConfigurationError(
        f"no service curve for discipline {discipline!r}; "
        f"certified disciplines: {', '.join(NETCALC_DISCIPLINES)}"
    )
