"""Analysis: delay statistics, fairness indices, analytic bounds, curves.

Pure functions over traces and series; no simulator state. The benchmark
harness composes these into the per-experiment tables of EXPERIMENTS.md.
"""

from .bounds import (
    drr_delay_bound,
    end_to_end_bound,
    g3_delay_bound,
    nonzero_bits,
    rrr_delay_bound,
    srr_delay_bound,
    theta,
    wfq_delay_bound,
)
from .fairness import (
    GapStats,
    gap_statistics,
    jain_index,
    service_fairness_index,
    worst_case_fairness,
    worst_case_lag,
)
from .metrics import DelayStats, jitter, percentile, summarize_delays
from .netcalc import (
    NETCALC_DISCIPLINES,
    RateLatency,
    TokenBucket,
    backlog_bound,
    convolve,
    deconvolve,
    delay_bound,
    drr_service_curve,
    iwrr_service_curve,
    service_curve,
    srr_service_curve,
    wrr_service_curve,
)
from .stats import (
    ReplicationSummary,
    summarize_replications,
    t_critical,
)
from .service_curves import (
    curve_from_finish_times,
    curve_from_records,
    horizontal_deviation,
    max_ideal_lag,
)
from .tables import format_table, print_table, records_table, rows_from_records

__all__ = [
    "DelayStats",
    "GapStats",
    "NETCALC_DISCIPLINES",
    "RateLatency",
    "TokenBucket",
    "backlog_bound",
    "convolve",
    "curve_from_finish_times",
    "curve_from_records",
    "deconvolve",
    "delay_bound",
    "drr_delay_bound",
    "drr_service_curve",
    "end_to_end_bound",
    "format_table",
    "g3_delay_bound",
    "gap_statistics",
    "horizontal_deviation",
    "iwrr_service_curve",
    "jain_index",
    "jitter",
    "max_ideal_lag",
    "nonzero_bits",
    "percentile",
    "print_table",
    "records_table",
    "rows_from_records",
    "ReplicationSummary",
    "service_curve",
    "srr_service_curve",
    "summarize_replications",
    "t_critical",
    "rrr_delay_bound",
    "service_fairness_index",
    "srr_delay_bound",
    "summarize_delays",
    "theta",
    "wfq_delay_bound",
    "worst_case_fairness",
    "worst_case_lag",
    "wrr_service_curve",
]
