"""Plain-text table rendering for the benchmark harness.

Every experiment prints its results as an aligned ASCII table (the same
rows the paper's tables/figures report), so benches are readable both in
CI logs and in the terminal. No external dependencies.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "print_table"]


def _fmt(value, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render an aligned table with a header rule.

    Floats are fixed to ``precision`` decimals; everything else is
    ``str()``-ed. Column widths adapt to content.
    """
    str_rows: List[List[str]] = [
        [_fmt(v, precision) for v in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: Optional[str] = None,
    precision: int = 3,
) -> None:
    """``print(format_table(...))`` with a leading blank line."""
    print()
    print(format_table(headers, rows, title=title, precision=precision))
