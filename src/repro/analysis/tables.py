"""Plain-text table rendering for the benchmark harness.

Every experiment prints its results as an aligned ASCII table (the same
rows the paper's tables/figures report), so benches are readable both in
CI logs and in the terminal. No external dependencies.

Tables are derived from *records* — the per-sweep-point metric dicts the
run harness stores in each ``RunResult`` — via :func:`records_table`, so
what is printed and what is persisted in a ``results/`` artifact are the
same data by construction, not parallel print-time state.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = ["format_table", "print_table", "records_table", "rows_from_records"]

#: A table column: how to pull one cell out of a record. Either a key
#: (dotted keys traverse nested dicts: ``"flows.f1.max_ms"``) or a
#: callable ``record -> value``.
ColumnGetter = Union[str, Callable[[Mapping[str, Any]], Any]]


def _fmt(value, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render an aligned table with a header rule.

    Floats are fixed to ``precision`` decimals; everything else is
    ``str()``-ed. Column widths adapt to content.
    """
    str_rows: List[List[str]] = [
        [_fmt(v, precision) for v in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _cell(record: Mapping[str, Any], getter: ColumnGetter) -> Any:
    if callable(getter):
        return getter(record)
    value: Any = record
    for part in getter.split("."):
        value = value[part]
    return value


def rows_from_records(
    records: Iterable[Mapping[str, Any]],
    columns: Sequence[ColumnGetter],
) -> List[List[Any]]:
    """Project record dicts onto table rows, one row per record."""
    return [[_cell(record, getter) for getter in columns]
            for record in records]


def records_table(
    records: Iterable[Mapping[str, Any]],
    columns: Sequence[ColumnGetter],
    *,
    headers: Sequence[str],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render a table straight from per-point result records.

    ``columns`` selects one cell per record (key, dotted key, or
    callable); this is how experiment tables are emitted from the same
    ``RunResult.points`` records that land in JSON artifacts.
    """
    return format_table(
        headers, rows_from_records(records, columns),
        title=title, precision=precision,
    )


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: Optional[str] = None,
    precision: int = 3,
) -> None:
    """``print(format_table(...))`` with a leading blank line."""
    print()
    print(format_table(headers, rows, title=title, precision=precision))
