"""Service-curve utilities: cumulative service vs. the ideal rate line.

The paper's Definition 1 compares a flow's real service curve
``S_ps(t - t0)`` against the ideal fluid curve ``S_id(t - t0) = r(t-t0)``
and defines the scheduler delay as the worst horizontal deviation between
them (Fig. 7 of the supplied text). These helpers compute exactly that
from a cumulative-service step function (as produced by
:meth:`repro.net.monitors.ServiceTrace.service_curve` or from sink
records).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.errors import ConfigurationError

__all__ = [
    "horizontal_deviation",
    "curve_from_finish_times",
    "max_ideal_lag",
]

Curve = Sequence[Tuple[float, float]]  # (time, cumulative bytes), sorted


def curve_from_finish_times(
    finish_times: Sequence[float], packet_size: int
) -> List[Tuple[float, float]]:
    """Cumulative-bytes steps from per-packet finish times (fixed size)."""
    if packet_size <= 0:
        raise ConfigurationError("packet_size must be positive")
    return [
        (t, (i + 1) * packet_size) for i, t in enumerate(sorted(finish_times))
    ]


def horizontal_deviation(
    curve: Curve, rate_bps: float, start_time: float = 0.0
) -> float:
    """Worst horizontal gap between the ideal line and the real curve.

    For each step point ``(t_i, S_i)`` of the real curve, the ideal
    rate-``r`` server starting at ``start_time`` reaches ``S_i`` bytes at
    ``start_time + S_i / r``; the deviation is
    ``max_i (t_i - (start_time + S_i/r))`` clamped at 0. This is the
    ``d_ps`` of Definition 1 measured empirically.
    """
    if rate_bps <= 0:
        raise ConfigurationError("rate must be positive")
    rate_bytes = rate_bps / 8.0
    worst = 0.0
    last_t = -float("inf")
    for t, served in curve:
        if t < last_t:
            raise ConfigurationError("curve times must be non-decreasing")
        last_t = t
        ideal_t = start_time + served / rate_bytes
        worst = max(worst, t - ideal_t)
    return worst


def max_ideal_lag(
    finish_times: Sequence[float],
    rate_bps: float,
    packet_size: int,
    start_time: float = 0.0,
) -> float:
    """``max_i (t_i - t_i^id)`` with ``t_i^id = start + i*L/r`` — the
    per-packet form of Definition 1 (Eq. 2)."""
    if rate_bps <= 0 or packet_size <= 0:
        raise ConfigurationError("need positive rate and packet size")
    per_packet = packet_size * 8.0 / rate_bps
    worst = 0.0
    for i, t in enumerate(sorted(finish_times)):
        ideal = start_time + (i + 1) * per_packet
        worst = max(worst, t - ideal)
    return worst
