"""Service-curve utilities: cumulative service vs. the ideal rate line.

The paper's Definition 1 compares a flow's real service curve
``S_ps(t - t0)`` against the ideal fluid curve ``S_id(t - t0) = r(t-t0)``
and defines the scheduler delay as the worst horizontal deviation between
them (Fig. 7 of the supplied text). These helpers compute exactly that
from a cumulative-service step function (as produced by
:meth:`repro.net.monitors.ServiceTrace.service_curve` or from sink
records).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..core.errors import ConfigurationError

__all__ = [
    "horizontal_deviation",
    "curve_from_finish_times",
    "curve_from_records",
    "max_ideal_lag",
]

Curve = Sequence[Tuple[float, float]]  # (time, cumulative bytes), sorted


def _reject_nan(finish_times: Sequence[float]) -> None:
    # NaN compares false against everything, so sorted() would quietly
    # push it to wherever the sort left it and the deviation math below
    # would propagate NaN (or worse, drop it via max()).
    for t in finish_times:
        if math.isnan(t):
            raise ConfigurationError("finish times must not contain NaN")


def curve_from_finish_times(
    finish_times: Sequence[float], packet_size: int
) -> List[Tuple[float, float]]:
    """Cumulative-bytes steps from per-packet finish times (fixed size)."""
    if packet_size <= 0:
        raise ConfigurationError("packet_size must be positive")
    _reject_nan(finish_times)
    return [
        (t, (i + 1) * packet_size) for i, t in enumerate(sorted(finish_times))
    ]


def curve_from_records(
    finish_times: Sequence[float], sizes: Sequence[int]
) -> List[Tuple[float, float]]:
    """Variable-size form of :func:`curve_from_finish_times`.

    ``sizes[i]`` is the byte size of the packet finishing at
    ``finish_times[i]``; the pair is kept together through the sort so
    cumulative bytes accrue in service order.
    """
    if len(finish_times) != len(sizes):
        raise ConfigurationError(
            f"finish_times and sizes disagree: "
            f"{len(finish_times)} vs {len(sizes)}"
        )
    _reject_nan(finish_times)
    for s in sizes:
        if s <= 0:
            raise ConfigurationError(f"packet sizes must be positive, got {s}")
    served = 0.0
    curve: List[Tuple[float, float]] = []
    for t, size in sorted(zip(finish_times, sizes)):
        served += size
        curve.append((t, served))
    return curve


def horizontal_deviation(
    curve: Curve, rate_bps: float, start_time: float = 0.0
) -> float:
    """Worst horizontal gap between the ideal line and the real curve.

    For each step point ``(t_i, S_i)`` of the real curve, the ideal
    rate-``r`` server starting at ``start_time`` reaches ``S_i`` bytes at
    ``start_time + S_i / r``; the deviation is
    ``max_i (t_i - (start_time + S_i/r))`` clamped at 0. This is the
    ``d_ps`` of Definition 1 measured empirically.
    """
    if rate_bps <= 0:
        raise ConfigurationError("rate must be positive")
    if not curve:
        # A flow that never got service has no deviation to measure; the
        # old silent 0.0 read as "bound certified" for exactly the flow
        # most likely to be starved.
        raise ConfigurationError(
            "empty service curve: the flow received no service"
        )
    rate_bytes = rate_bps / 8.0
    worst = 0.0
    last_t = -float("inf")
    for t, served in curve:
        if t < last_t:
            raise ConfigurationError("curve times must be non-decreasing")
        last_t = t
        ideal_t = start_time + served / rate_bytes
        worst = max(worst, t - ideal_t)
    return worst


def max_ideal_lag(
    finish_times: Sequence[float],
    rate_bps: float,
    packet_size: int,
    start_time: float = 0.0,
) -> float:
    """``max_i (t_i - t_i^id)`` with ``t_i^id = start + i*L/r`` — the
    per-packet form of Definition 1 (Eq. 2)."""
    if rate_bps <= 0 or packet_size <= 0:
        raise ConfigurationError("need positive rate and packet size")
    if not finish_times:
        raise ConfigurationError(
            "empty finish-time list: the flow received no service"
        )
    _reject_nan(finish_times)
    per_packet = packet_size * 8.0 / rate_bps
    worst = 0.0
    for i, t in enumerate(sorted(finish_times)):
        ideal = start_time + (i + 1) * per_packet
        worst = max(worst, t - ideal)
    return worst
