"""Performance measurement: microbenchmarks + regression gate.

``python -m repro.perf`` times three layers — the raw event loop (heap
vs calendar backend), per-scheduler dequeue cost, and an end-to-end
E5-scale scenario — and writes a pytest-benchmark-compatible JSON
document. The committed ``BENCH_runtime.json`` is the baseline every
perf-affecting change is judged against (see ``docs/performance.md``).
"""

from .benchmarks import Benchmark, BenchResult, all_benchmarks, run_benchmark
from .report import (
    build_document,
    compare,
    fastpath_speedup,
    speedup_summary,
)

__all__ = [
    "Benchmark",
    "BenchResult",
    "all_benchmarks",
    "build_document",
    "compare",
    "fastpath_speedup",
    "run_benchmark",
    "speedup_summary",
]
