"""``python -m repro.perf`` entry point."""

import sys

from .cli import main

sys.exit(main())
