"""pytest-benchmark-compatible JSON reporting + regression comparison.

The document written to ``BENCH_runtime.json`` follows the layout of
pytest-benchmark's ``--benchmark-json`` output (``machine_info`` /
``commit_info`` / ``benchmarks[].stats``), so standard tooling
(pytest-benchmark compare, CI dashboards) can consume it directly.
``extra_info`` carries the throughput numbers this repo actually gates
on (work items per second), and :func:`compare` implements the
tolerance-based regression check used by the CI perf smoke job.
"""

from __future__ import annotations

import math
import platform
import subprocess
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Sequence

from .benchmarks import BenchResult

__all__ = [
    "build_document", "compare", "speedup_summary", "fastpath_speedup",
    "shard_speedup",
]

SCHEMA = "repro.perf/bench/v1"


def _stats(times: Sequence[float]) -> Dict[str, float]:
    n = len(times)
    mean = sum(times) / n
    var = sum((t - mean) ** 2 for t in times) / (n - 1) if n > 1 else 0.0
    ordered = sorted(times)
    mid = n // 2
    median = (
        ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0
    )
    return {
        "min": ordered[0],
        "max": ordered[-1],
        "mean": mean,
        "stddev": math.sqrt(var),
        "median": median,
        "rounds": n,
        "ops": 1.0 / mean if mean > 0 else 0.0,
    }


def _machine_info() -> Dict[str, Any]:
    return {
        "node": platform.node(),
        "processor": platform.processor(),
        "machine": platform.machine(),
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "system": platform.system(),
        "release": platform.release(),
    }


def _commit_info() -> Dict[str, Any]:
    info: Dict[str, Any] = {"id": None, "dirty": None, "branch": None}
    try:
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
        if head.returncode == 0:
            info["id"] = head.stdout.strip()
        branch = subprocess.run(
            ["git", "rev-parse", "--abbrev-ref", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
        if branch.returncode == 0:
            info["branch"] = branch.stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=5,
        )
        if status.returncode == 0:
            info["dirty"] = bool(status.stdout.strip())
    except (OSError, subprocess.SubprocessError):
        pass  # best-effort: benches also run outside git checkouts
    return info


def build_document(results: Sequence[BenchResult]) -> Dict[str, Any]:
    """Assemble the full pytest-benchmark-compatible JSON document."""
    benchmarks: List[Dict[str, Any]] = []
    for result in results:
        bench = result.benchmark
        benchmarks.append({
            "group": bench.group,
            "name": bench.name,
            "fullname": f"repro.perf::{bench.name}",
            "params": dict(bench.params),
            "stats": _stats(result.times),
            "extra_info": {
                "work_items": result.work_items,
                "throughput_per_s": result.throughput,
            },
        })
    return {
        "schema": SCHEMA,
        "datetime": datetime.now(timezone.utc).isoformat(),
        "machine_info": _machine_info(),
        "commit_info": _commit_info(),
        "benchmarks": benchmarks,
    }


def speedup_summary(doc: Dict[str, Any]) -> Dict[str, float]:
    """Calendar-vs-heap speedups derivable from one document.

    Returns ``{"event_loop": x, "end_to_end": y}`` (throughput ratios,
    calendar over heap) for whichever groups have both engines present.
    """
    by_group: Dict[str, Dict[str, float]] = {}
    for bench in doc.get("benchmarks", []):
        engine = bench.get("params", {}).get("engine")
        if engine is None:
            continue
        rate = bench.get("extra_info", {}).get("throughput_per_s", 0.0)
        by_group.setdefault(bench["group"], {})[engine] = rate
    out: Dict[str, float] = {}
    for group, rates in by_group.items():
        if rates.get("heap") and rates.get("calendar"):
            out[group] = rates["calendar"] / rates["heap"]
    return out


def fastpath_speedup(doc: Dict[str, Any]) -> Dict[str, float]:
    """Flat-core-vs-object speedups, per group, from one document.

    Compares *mean round times* (object over fastpath), not throughput:
    the object benches count engine events as work items while the lean
    loop counts packets, so their rates are not commensurable — but each
    pair runs the semantically identical workload, so wall time is. The
    object side is the calendar run (the faster engine, i.e. the
    conservative denominator).
    """
    objects: Dict[str, float] = {}
    fasts: Dict[str, float] = {}
    for bench in doc.get("benchmarks", []):
        params = bench.get("params", {})
        mean = bench.get("stats", {}).get("mean", 0.0)
        if params.get("core") == "fast" and "engine" not in params:
            fasts[bench["group"]] = mean
        elif params.get("engine") == "calendar":
            objects[bench["group"]] = mean
    out: Dict[str, float] = {}
    for group, fast_mean in fasts.items():
        obj_mean = objects.get(group)
        if obj_mean and fast_mean:
            out[group] = obj_mean / fast_mean
    return out


def shard_speedup(doc: Dict[str, Any]) -> Dict[int, float]:
    """Sharded-run speedups vs the 1-shard reference, by shard count.

    Compares mean round times within the ``shard_scaling`` group:
    ``{2: 1.6, 4: 2.8}`` means 2 shards ran 1.6x faster than the same
    workload on one process. Values below 1.0 are expected on single-core
    hosts (the protocol costs, the parallelism pays nothing).
    """
    means: Dict[int, float] = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("group") != "shard_scaling":
            continue
        shards = bench.get("params", {}).get("shards")
        mean = bench.get("stats", {}).get("mean", 0.0)
        if shards is not None and mean > 0:
            means[int(shards)] = mean
    base = means.get(1)
    if not base:
        return {}
    return {
        shards: base / mean
        for shards, mean in means.items() if shards != 1
    }


def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    tolerance: float = 1.25,
) -> List[str]:
    """Regression check: mean round time vs the baseline, per benchmark.

    A benchmark regresses when its mean exceeds the baseline mean by more
    than ``tolerance`` (e.g. 1.25 = 25% slower). A baseline benchmark
    missing from the current run is also a failure — silently dropping a
    bench would hollow out the gate. Returns human-readable failure
    lines; empty means within tolerance.
    """
    if tolerance <= 1.0:
        raise ValueError(f"tolerance must be > 1.0, got {tolerance}")
    current_by_name = {
        b["name"]: b for b in current.get("benchmarks", [])
    }
    failures: List[str] = []
    for base in baseline.get("benchmarks", []):
        name = base["name"]
        now = current_by_name.get(name)
        if now is None:
            failures.append(f"{name}: missing from current run")
            continue
        base_mean = base["stats"]["mean"]
        now_mean = now["stats"]["mean"]
        if base_mean > 0 and now_mean > base_mean * tolerance:
            failures.append(
                f"{name}: {now_mean:.4f}s vs baseline "
                f"{base_mean:.4f}s ({now_mean / base_mean:.2f}x, "
                f"tolerance {tolerance:.2f}x)"
            )
    return failures
