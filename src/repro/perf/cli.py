"""CLI for the perf suite: ``python -m repro.perf``.

Default: run every benchmark at committed-baseline scale, print a
throughput table plus the calendar-vs-heap speedups, and (with
``--output``) write the pytest-benchmark-compatible JSON document.
``--baseline PATH`` additionally compares against a committed document
and exits non-zero on regressions beyond ``--tolerance``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .benchmarks import all_benchmarks, measure_obs_overhead, run_benchmark
from .report import (
    build_document,
    compare,
    fastpath_speedup,
    shard_speedup,
    speedup_summary,
)

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Microbenchmarks: event loop, scheduler dequeue, "
                    "end-to-end scenario. See docs/performance.md.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer timing rounds (CI smoke); benchmark names and sizes "
             "are unchanged, so results stay comparable to the "
             "committed baseline",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full benchmark document as JSON on stdout",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the benchmark document to PATH "
             "(e.g. BENCH_runtime.json to refresh the baseline)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="compare against a committed benchmark document and exit "
             "non-zero on regressions",
    )
    parser.add_argument(
        "--tolerance", type=float, default=1.25, metavar="X",
        help="regression threshold as a slowdown factor vs the baseline "
             "mean (default 1.25; CI uses 2.0 to absorb runner noise)",
    )
    parser.add_argument(
        "--group", action="append", default=None, metavar="NAME",
        choices=(
            "event_loop", "scheduler_dequeue", "end_to_end",
            "shard_scaling",
        ),
        help="run only this benchmark group (repeatable); note a "
             "baseline comparison then fails its other groups as missing",
    )
    parser.add_argument(
        "--obs-overhead", action="store_true",
        help="instead of the benchmark suite, measure the armed "
             "flight-recorder overhead (1/64 sampling, interleaved "
             "off/armed rounds) on the event loop and the e2e fastpath "
             "replay, and fail above --obs-tolerance",
    )
    parser.add_argument(
        "--obs-tolerance", type=float, default=3.0, metavar="PCT",
        help="maximum armed-recorder overhead accepted by "
             "--obs-overhead, in percent (default 3.0)",
    )
    args = parser.parse_args(argv)

    if args.obs_overhead:
        rows = measure_obs_overhead(
            quick=args.quick, tolerance=args.obs_tolerance
        )
        failures = []
        for row in rows:
            verdict = "ok"
            if row["overhead_pct"] > args.obs_tolerance:
                verdict = f"FAIL (> {args.obs_tolerance:.1f}%)"
                failures.append(row["name"])
            print(
                f"  {row['name']}: off {row['off_s']:.4f}s, armed "
                f"{row['armed_s']:.4f}s (1/{1 << row['sample_shift']} "
                f"sampling) -> {row['overhead_pct']:+.2f}% {verdict}",
                file=sys.stderr,
            )
        if args.json:
            print(json.dumps(rows, indent=2, sort_keys=True))
        if failures:
            print(
                f"obs overhead gate FAILED: {', '.join(failures)}",
                file=sys.stderr,
            )
            return 1
        print(
            f"obs overhead within {args.obs_tolerance:.1f}% on "
            f"{len(rows)} benchmark(s)",
            file=sys.stderr,
        )
        return 0

    benches = all_benchmarks()
    if args.group:
        benches = [b for b in benches if b.group in args.group]
    results = []
    for bench in benches:
        if not args.json:
            print(f"  {bench.name} ...", end="", flush=True, file=sys.stderr)
        result = run_benchmark(bench, quick=args.quick)
        if not args.json:
            print(
                f" {result.throughput:,.0f}/s "
                f"(mean {result.mean:.4f}s over {len(result.times)} rounds)",
                file=sys.stderr,
            )
        results.append(result)
    doc = build_document(results)

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))

    speedups = speedup_summary(doc)
    for group, ratio in sorted(speedups.items()):
        print(f"calendar vs heap [{group}]: {ratio:.2f}x", file=sys.stderr)
    for group, ratio in sorted(fastpath_speedup(doc).items()):
        print(
            f"fastpath vs object [{group}]: {ratio:.2f}x",
            file=sys.stderr,
        )
    for shards, ratio in sorted(shard_speedup(doc).items()):
        print(
            f"{shards} shards vs 1 [shard_scaling]: {ratio:.2f}x",
            file=sys.stderr,
        )

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        failures = compare(doc, baseline, tolerance=args.tolerance)
        if failures:
            print("perf regressions vs baseline:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(
            f"no regressions vs {args.baseline} "
            f"(tolerance {args.tolerance:.2f}x)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
