"""The microbenchmark suite behind ``python -m repro.perf``.

Four groups, each timing the layer above it:

``event_loop``
    Raw :class:`~repro.net.engine.Simulator` throughput (events/s) under
    the classic *hold* model — a standing population of self-rescheduling
    events — for each queue backend. This is the bench the calendar-vs-
    heap claim rests on.

``scheduler_dequeue``
    Per-dequeue cost (packets/s) of saturated SRR/DRR/WFQ schedulers at
    N ∈ {16, 512, 4096} flows, no simulator involved. The flat-core
    twins (``srr:fast``/``drr:fast``) are timed on their scalar
    ``push``/``pull`` datapath — same service order, no Packet objects.

``end_to_end``
    A full E5-scale network scenario (SRR bottleneck, hundreds of CBR
    flows) run under each backend — the number every experiment actually
    feels. A third entry replays the identical scenario through the
    flat-core lean loop (:mod:`repro.fastpath.netloop`); its params
    carry ``core: "fast"`` instead of an ``engine`` key because no
    event queue is involved, and since its work items (packets
    delivered) are not commensurable with the event-loop runs' events,
    the fastpath-vs-object claim is compared on mean *round time*
    (:func:`repro.perf.report.fastpath_speedup`), not throughput.

``shard_scaling``
    The conservative-lookahead sharded engine (:mod:`repro.shard`) on a
    k=4 fat-tree at 1/2/4 shard processes — wall clock includes worker
    spawn, per-shard build, every barrier and the final merge. On a
    multi-core host the curve should bend toward linear; on a 1-core
    host it measures pure protocol overhead. Either way the baseline
    gate catches regressions in the barrier path.

Each benchmark returns per-round wall times plus a work-item count, from
which the report layer derives pytest-benchmark-compatible stats. Round
counts shrink under ``--quick`` but the benchmark *names and sizes* do
not, so a quick CI run remains comparable against the committed
default-scale baseline.
"""

from __future__ import annotations

import os
import random
import time
from typing import Callable, Dict, List, Tuple

from ..bench.scenarios import single_bottleneck_network
from ..bench.workloads import build_loaded_scheduler, geometric_weights
from ..fastpath.netloop import run_single_bottleneck_fast
from ..net.engine import Simulator
from ..net.eventq import ENGINE_ENV_VAR
from ..schedulers.registry import create_scheduler

__all__ = [
    "Benchmark",
    "BenchResult",
    "all_benchmarks",
    "run_benchmark",
    "measure_obs_overhead",
]

#: Queue backends compared by the engine-level groups.
_ENGINES = ("heap", "calendar")

#: The event-loop hold model's standing event population (the acceptance
#: bar is calendar >= 1.5x heap at >= 10k concurrent events).
_HOLD_POPULATION = 10_000
_HOLD_CHURN = 30_000

#: Scheduler-dequeue sweep sizes (matches E5's flow-count ladder).
_DEQUEUE_SIZES = (16, 512, 4096)
_DEQUEUE_PULLS = 20_000

#: End-to-end scenario size: an SRR bottleneck at E5-like flow counts.
_E2E_FLOWS = 256
_E2E_UNTIL = 2.0

#: Shard-scaling sweep: a k=4 fat-tree run whole, then split across
#: processes. Wall time includes worker spawn + per-shard build — the
#: real cost a sharded run pays.
_SHARD_COUNTS = (1, 2, 4)
_SHARD_FAT_TREE_K = 4
_SHARD_UNTIL = 0.4


class Benchmark:
    """One named benchmark: a setup-free callable timed over rounds."""

    __slots__ = ("group", "name", "params", "fn", "rounds", "quick_rounds")

    def __init__(
        self,
        group: str,
        name: str,
        params: Dict,
        fn: Callable[[], Tuple[float, int]],
        *,
        rounds: int = 5,
        quick_rounds: int = 2,
    ) -> None:
        self.group = group
        self.name = name
        self.params = params
        self.fn = fn
        self.rounds = rounds
        self.quick_rounds = quick_rounds


class BenchResult:
    """Raw timings for one benchmark: seconds per round + work items."""

    __slots__ = ("benchmark", "times", "work_items")

    def __init__(
        self, benchmark: Benchmark, times: List[float], work_items: int
    ) -> None:
        self.benchmark = benchmark
        self.times = times
        self.work_items = work_items

    @property
    def mean(self) -> float:
        return sum(self.times) / len(self.times)

    @property
    def throughput(self) -> float:
        """Work items per second at the mean round time."""
        return self.work_items / self.mean if self.mean > 0 else 0.0


def _hold_round(kind: str, population: int, churn: int) -> Tuple[float, int]:
    """One hold-model round: time ``population + churn`` event pops."""
    rng = random.Random(42)
    deltas = [rng.random() * 0.02 for _ in range(4096)]
    sim = Simulator(queue=kind)
    state = [0]

    def tick() -> None:
        c = state[0]
        if c < churn:
            state[0] = c + 1
            sim.schedule(deltas[c & 4095], tick)

    for i in range(population):
        sim.schedule(deltas[i & 4095], tick)
    t0 = time.perf_counter()
    processed = sim.run()
    elapsed = time.perf_counter() - t0
    assert processed == population + churn
    return elapsed, processed


def _dequeue_round(name: str, n_flows: int, pulls: int) -> Tuple[float, int]:
    """One scheduler round: time ``pulls`` dequeues at size N (the
    scheduler is built and saturated outside the timed section)."""
    per_flow = max(2, -(-pulls // n_flows))  # ceil: never drain a flow
    sched = build_loaded_scheduler(
        name, geometric_weights(n_flows), per_flow, quantum=200
    ) if name in ("srr", "drr") else build_loaded_scheduler(
        name, geometric_weights(n_flows), per_flow
    )
    dequeue = sched.dequeue
    t0 = time.perf_counter()
    for _ in range(pulls):
        dequeue()
    elapsed = time.perf_counter() - t0
    return elapsed, pulls


def _dequeue_fast_round(
    name: str, n_flows: int, pulls: int
) -> Tuple[float, int]:
    """One flat-core round: time ``pulls`` scalar ``pull()`` calls.

    Mirrors :func:`_dequeue_round` — same weight mix, same saturation —
    but loads and serves through the object-free ``push``/``pull``
    datapath, which is what the network lean loop actually drives.
    """
    per_flow = max(2, -(-pulls // n_flows))
    kwargs = (
        {"quantum": 200} if name.partition(":")[0] in ("srr", "drr") else {}
    )
    sched = create_scheduler(name, **kwargs)
    for fid, weight in geometric_weights(n_flows).items():
        sched.add_flow(fid, weight)
    for fid in range(n_flows):
        slot = sched.slot_of(fid)
        for _ in range(per_flow):
            sched.push(slot, 200)
    pull = sched.pull
    t0 = time.perf_counter()
    for _ in range(pulls):
        pull()
    elapsed = time.perf_counter() - t0
    return elapsed, pulls


def _e2e_round(kind: str, n_flows: int, until: float) -> Tuple[float, int]:
    """One end-to-end round: build and run an SRR bottleneck scenario.

    The scenario builder owns its Simulator (ports capture it at link
    creation), so the backend is selected the same way the harness does
    it: through the process-default environment variable.
    """
    saved = os.environ.get(ENGINE_ENV_VAR)
    os.environ[ENGINE_ENV_VAR] = kind
    try:
        net = single_bottleneck_network("srr", n_flows)
    finally:
        if saved is None:
            os.environ.pop(ENGINE_ENV_VAR, None)
        else:
            os.environ[ENGINE_ENV_VAR] = saved
    assert net.sim.queue_kind == kind
    t0 = time.perf_counter()
    net.run(until=until)
    elapsed = time.perf_counter() - t0
    return elapsed, net.sim.events_processed


def _e2e_fast_round(n_flows: int, until: float) -> Tuple[float, int]:
    """One lean-loop round: the same SRR bottleneck, no event engine."""
    t0 = time.perf_counter()
    run = run_single_bottleneck_fast(n_flows, until)
    elapsed = time.perf_counter() - t0
    return elapsed, run.forwarded


def _shard_round(shards: int, until: float) -> Tuple[float, int]:
    """One sharded round: a fat-tree run on ``shards`` processes.

    Uses run_sharded's own wall clock (spawn + build + barriers + merge)
    and asserts nothing about digests — the equivalence tests and the CI
    digest job own correctness; this group owns the scaling curve.
    """
    from ..net.scenario import fat_tree
    from ..shard.engine import run_sharded

    spec = fat_tree(k=_SHARD_FAT_TREE_K)
    result = run_sharded(spec, until=until, shards=shards)
    return result.wall_time_s, result.events


def all_benchmarks() -> List[Benchmark]:
    """The full suite, in report order."""
    benches: List[Benchmark] = []
    for kind in _ENGINES:
        benches.append(Benchmark(
            "event_loop",
            f"event_loop[{kind}-n{_HOLD_POPULATION}]",
            {"engine": kind, "population": _HOLD_POPULATION,
             "churn": _HOLD_CHURN},
            lambda kind=kind: _hold_round(
                kind, _HOLD_POPULATION, _HOLD_CHURN
            ),
        ))
    for sched in ("srr", "drr", "iwrr", "wfq"):
        for n in _DEQUEUE_SIZES:
            benches.append(Benchmark(
                "scheduler_dequeue",
                f"dequeue[{sched}-n{n}]",
                {"scheduler": sched, "n_flows": n, "pulls": _DEQUEUE_PULLS},
                lambda sched=sched, n=n: _dequeue_round(
                    sched, n, _DEQUEUE_PULLS
                ),
                rounds=3,
                quick_rounds=1,
            ))
    for sched in ("srr:fast", "drr:fast", "iwrr:fast"):
        for n in _DEQUEUE_SIZES:
            benches.append(Benchmark(
                "scheduler_dequeue",
                f"dequeue[{sched}-n{n}]",
                {"scheduler": sched, "core": "fast", "n_flows": n,
                 "pulls": _DEQUEUE_PULLS},
                lambda sched=sched, n=n: _dequeue_fast_round(
                    sched, n, _DEQUEUE_PULLS
                ),
                rounds=3,
                quick_rounds=1,
            ))
    for kind in _ENGINES:
        benches.append(Benchmark(
            "end_to_end",
            f"e2e_srr_bottleneck[{kind}-n{_E2E_FLOWS}]",
            {"engine": kind, "n_flows": _E2E_FLOWS, "until": _E2E_UNTIL},
            lambda kind=kind: _e2e_round(kind, _E2E_FLOWS, _E2E_UNTIL),
            rounds=3,
            quick_rounds=1,
        ))
    benches.append(Benchmark(
        "end_to_end",
        f"e2e_srr_bottleneck[fastpath-n{_E2E_FLOWS}]",
        {"core": "fast", "n_flows": _E2E_FLOWS, "until": _E2E_UNTIL},
        lambda: _e2e_fast_round(_E2E_FLOWS, _E2E_UNTIL),
        rounds=3,
        quick_rounds=1,
    ))
    for shards in _SHARD_COUNTS:
        benches.append(Benchmark(
            "shard_scaling",
            f"shard[fat_tree-k{_SHARD_FAT_TREE_K}-s{shards}]",
            {"shards": shards, "k": _SHARD_FAT_TREE_K,
             "until": _SHARD_UNTIL},
            lambda shards=shards: _shard_round(shards, _SHARD_UNTIL),
            rounds=3,
            quick_rounds=1,
        ))
    return benches


def measure_obs_overhead(
    *,
    quick: bool = False,
    sample_shift: int = 6,
    rounds: int = 0,
    tolerance: float = 3.0,
) -> List[Dict]:
    """Measure the armed flight-recorder cost on the hot benchmarks.

    For the event-loop hold model (whose hot loop must never consult the
    recorder) and the end-to-end fastpath replay (whose scalar datapath
    carries the sampling branches), each arm is timed in its own
    *subprocess* — recorder-off children against children armed through
    ``REPRO_FLIGHT`` (so the gate also exercises the worker env
    activation path) — and the arms' per-child best rounds are
    compared.
    ``sample_shift=6`` (1-in-64) is the production default the <= 3% CI
    gate budgets for.

    Subprocess isolation is not ceremony. A real run is armed or off for
    its whole life, and the armed twin classes (see
    :func:`repro.fastpath.base._flight_twin`) specialise exactly as well
    as the bare ones — but *alternating* arms inside one process makes
    every shared code object (lane push/pop, op bumps, the netloop body)
    flip between instance types, and CPython 3.11's adaptive interpreter
    de-specialises under the flip-flop: measured "overhead" was 5-45%
    depending on round order, all of it interpreter-cache thrash that no
    production workload sees. Per-process arms measure the deployable
    quantity. Within each child, garbage collection is forced before and
    disabled during every timed round, and the child processes alternate
    off/armed over time so thermal and load drift hit both arms equally.

    The reported overhead is the **smaller of two cross-arm ratios**:
    global-min vs global-min and median vs median of the per-child
    minima. Min-of-rounds inside one child rejects the additive
    scheduling noise of a shared runner, but identical children were
    measured to spread ~14% in their minima when multi-second load
    bursts poison a child's whole life. The two ratios fail under
    *different* noise events — min-vs-min misfires only when one arm
    never catches a quiet window, median-vs-median only when most
    children of one arm are bursty — while a real regression inflates
    both equally (each arm's minimum is bounded below by its true
    floor). Taking the smaller therefore suppresses single-sided noise
    (phantom swings of -4%..+7% against a ~1% true cost, measured)
    without losing sensitivity to genuine cost. A case that still reads
    above ``tolerance`` is re-measured once with twice the children and
    the confirmation estimate decides.
    """
    import json
    import statistics
    import subprocess
    import sys

    from ..obs.flight import FLIGHT_ENV_VAR

    if rounds <= 0:
        rounds = 16 if quick else 24
    procs_per_arm = 6
    cases = [
        (f"event_loop[calendar-n{_HOLD_POPULATION}]", "hold"),
        (f"e2e_srr_bottleneck[fastpath-n{_E2E_FLOWS}]", "e2e_fast"),
    ]

    child_src = (
        "import gc, json, sys\n"
        "from repro.perf import benchmarks as B\n"
        "case, rounds = sys.argv[1], int(sys.argv[2])\n"
        "fn = {\n"
        "    'hold': lambda: B._hold_round(\n"
        "        'calendar', B._HOLD_POPULATION, B._HOLD_CHURN),\n"
        "    'e2e_fast': lambda: B._e2e_fast_round(\n"
        "        B._E2E_FLOWS, B._E2E_UNTIL),\n"
        "}[case]\n"
        "fn()\n"  # warmup: imports, allocator, specialization
        "best, work = None, 0\n"
        "for _ in range(rounds):\n"
        "    gc.collect(); gc.disable()\n"
        "    try:\n"
        "        t, work = fn()\n"
        "    finally:\n"
        "        gc.enable()\n"
        "    best = t if best is None or t < best else best\n"
        "print(json.dumps({'best': best, 'work': work}))\n"
    )

    # Wherever this package was imported from, the children must find it.
    pkg_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))

    def _child(case_key: str, armed: bool) -> Tuple[float, int]:
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            pkg_root + os.pathsep + existing if existing else pkg_root
        )
        if armed:
            env[FLIGHT_ENV_VAR] = str(sample_shift)
        else:
            env.pop(FLIGHT_ENV_VAR, None)
        proc = subprocess.run(
            [sys.executable, "-c", child_src, case_key, str(rounds)],
            env=env, capture_output=True, text=True, check=True,
        )
        payload = json.loads(proc.stdout.strip().splitlines()[-1])
        return payload["best"], payload["work"]

    def _measure(case_key: str, n_pairs: int) -> Tuple[List[float], List[float], int]:
        off: List[float] = []
        armed: List[float] = []
        work = 0
        for _ in range(n_pairs):
            elapsed, work = _child(case_key, armed=False)
            off.append(elapsed)
            elapsed, work = _child(case_key, armed=True)
            armed.append(elapsed)
        return off, armed, work

    def _overhead(off: List[float], armed: List[float]) -> float:
        min_ratio = min(armed) / min(off)
        med_ratio = statistics.median(armed) / statistics.median(off)
        return (min(min_ratio, med_ratio) - 1.0) * 100.0

    out: List[Dict] = []
    for name, case_key in cases:
        off, armed, work = _measure(case_key, procs_per_arm)
        pct = _overhead(off, armed)
        n_pairs = procs_per_arm
        if pct > tolerance:
            # Confirmation pass: a reading past the CI tolerance on this
            # class of shared runner is usually a one-sided load burst,
            # not cost (the true overhead was budgeted per component at
            # ~1-2%). Re-measure the case once with twice the children
            # and let the better-powered estimate decide; a genuine
            # regression inflates the re-measure just the same, so this
            # only suppresses noise, never a real cost.
            off, armed, work = _measure(case_key, procs_per_arm * 2)
            pct = _overhead(off, armed)
            n_pairs += procs_per_arm * 2
        out.append({
            "name": name,
            "rounds": rounds * n_pairs,
            "sample_shift": sample_shift,
            "work_items": work,
            "off_s": min(off),
            "armed_s": min(armed),
            "overhead_pct": pct,
        })
    return out


def run_benchmark(bench: Benchmark, *, quick: bool = False) -> BenchResult:
    """Run one benchmark: one discarded warmup round, then the timed ones."""
    bench.fn()  # warmup: import costs, allocator warm, caches primed
    rounds = bench.quick_rounds if quick else bench.rounds
    times: List[float] = []
    work = 0
    for _ in range(rounds):
        elapsed, work = bench.fn()
        times.append(elapsed)
    return BenchResult(bench, times, work)
