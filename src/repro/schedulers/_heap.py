"""A binary min-heap with elementary-operation counting.

The timestamp-based baselines (WFQ family) are O(log N) *because of the
priority queue*. To make experiment E5 honest, their heaps count every
sift comparison/swap into the shared :class:`~repro.core.opcount.OpCounter`,
the same unit the SRR linked-list operations are counted in. The
implementation mirrors :mod:`heapq` (array-based binary heap) so the
constant factors are comparable too.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from ..core.opcount import NULL_COUNTER, OpCounter

__all__ = ["CountingHeap"]


class CountingHeap:
    """Array-based binary min-heap of comparable tuples, counting sifts."""

    __slots__ = ("_items", "_ops")

    def __init__(self, *, op_counter: OpCounter = NULL_COUNTER) -> None:
        self._items: List[Any] = []
        self._ops = op_counter

    def push(self, item: Any) -> None:
        """Insert ``item`` (O(log n) counted operations)."""
        items = self._items
        items.append(item)
        pos = len(items) - 1
        # Sift up.
        while pos > 0:
            parent = (pos - 1) >> 1
            self._ops.bump()
            if items[parent] <= item:
                break
            items[pos] = items[parent]
            pos = parent
        items[pos] = item

    def pop(self) -> Any:
        """Remove and return the smallest item (O(log n) counted operations)."""
        items = self._items
        last = items.pop()
        if not items:
            return last
        smallest = items[0]
        # Sift down the previous tail from the root.
        pos = 0
        size = len(items)
        while True:
            child = 2 * pos + 1
            if child >= size:
                break
            right = child + 1
            self._ops.bump()
            if right < size and items[right] < items[child]:
                child = right
            if items[child] >= last:
                break
            items[pos] = items[child]
            pos = child
        items[pos] = last
        return smallest

    def peek(self) -> Any:
        """The smallest item without removing it (heap must be non-empty)."""
        return self._items[0]

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def clear(self) -> None:
        self._items.clear()

    def check_invariant(self) -> None:
        """Verify the heap property (test helper)."""
        items = self._items
        for i in range(1, len(items)):
            parent = (i - 1) >> 1
            if items[parent] > items[i]:
                raise AssertionError(f"heap violated at index {i}")
