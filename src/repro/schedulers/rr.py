"""Plain (unweighted) round robin — Nagle's fair queueing baseline.

One packet per backlogged flow per round, in a circular order. Fair in
packets per round for equal-weight flows; ignores weights (use WRR/DRR for
weighted service).
"""

from __future__ import annotations

from collections import deque
from typing import ClassVar, Deque, Optional

from ..core.flow import FlowState
from ..core.interfaces import FlowTableScheduler
from ..core.packet import Packet

__all__ = ["RoundRobinScheduler"]


class RoundRobinScheduler(FlowTableScheduler):
    """Circular one-packet-per-flow service (Nagle, 1987)."""

    name: ClassVar[str] = "rr"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        # Deque of backlogged flows in service order. A flow appears at
        # most once; membership is mirrored by flow.deficit used as a flag
        # would be obscure, so we keep an explicit set.
        self._active: Deque[FlowState] = deque()
        self._active_set = set()

    def _on_backlogged(self, flow: FlowState) -> None:
        if flow.flow_id not in self._active_set:
            self._active.append(flow)
            self._active_set.add(flow.flow_id)

    def _on_flow_removed(self, flow: FlowState) -> None:
        if flow.flow_id in self._active_set:
            self._active.remove(flow)  # O(N), but only on flow deletion
            self._active_set.discard(flow.flow_id)

    def dequeue(self) -> Optional[Packet]:
        ops = self._ops
        active = self._active
        while active:
            ops.bump()
            flow = active.popleft()
            packet = flow.take()
            if flow.queue:
                active.append(flow)
            else:
                self._active_set.discard(flow.flow_id)
            return self._account_departure(packet)
        return None
