"""Virtual Clock (Zhang, SIGCOMM 1990) — the earliest timestamp scheduler.

Each flow runs a private virtual clock at its reserved rate: packet ``p``
of flow ``i`` is stamped ``VC_i = max(a_p, VC_i) + size / w_i`` where
``a_p`` is its (real) arrival time, and the link serves the smallest
stamp. Virtual Clock provides the same throughput guarantees as WFQ at
plain O(log N) cost, but no *fairness* guarantee: a flow that idles
builds no credit, while one that bursts ahead of its clock can be starved
for long stretches afterwards (the classic criticism) — making it a
useful contrast to SRR's strictly round-based allocation in E6.

Real arrival times come from ``packet.enqueued_at`` (stamped by the
output port); direct users driving the scheduler without a simulator can
leave it 0, which degrades gracefully to pure per-flow accumulation.
"""

from __future__ import annotations

from typing import ClassVar, Optional

from ..core.flow import FlowState
from ..core.interfaces import FlowTableScheduler
from ..core.packet import Packet
from ._heap import CountingHeap

__all__ = ["VirtualClockScheduler"]


class VirtualClockScheduler(FlowTableScheduler):
    """Virtual Clock: per-flow clocks advanced by size/weight."""

    name: ClassVar[str] = "vc"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._service = CountingHeap(op_counter=self._ops)

    def enqueue(self, packet: Packet) -> bool:
        flow = self._lookup(packet.flow_id)
        if not super().enqueue(packet):
            return False
        arrival = packet.enqueued_at
        start = arrival if flow.finish_tag < arrival else flow.finish_tag
        stamp = start + packet.size / flow.weight
        flow.finish_tag = stamp
        self._service.push((stamp, packet.uid, packet, flow))
        return True

    def dequeue(self) -> Optional[Packet]:
        service = self._service
        while service:
            _stamp, _uid, packet, flow = service.pop()
            if not flow.queue or flow.queue[0] is not packet:
                continue  # stale (flow removed)
            flow.take()
            return self._account_departure(packet)
        return None

    def _on_flow_removed(self, flow: FlowState) -> None:
        flow.finish_tag = 0.0
