"""Weighted Round Robin — the classic weighted baseline SRR improves on.

A flow of weight ``w`` is served ``w`` packets *consecutively* each round.
Per-round throughput is exactly proportional to weight (same long-run
allocation as SRR), but the service is maximally bursty: competing flows
wait up to ``Σ w_j - w_i`` packet times between their bursts. Experiment
E2 contrasts this burstiness with SRR's spread service.
"""

from __future__ import annotations

from collections import deque
from typing import ClassVar, Deque, Optional

from ..core.flow import FlowState
from ..core.interfaces import FlowTableScheduler
from ..core.packet import Packet

__all__ = ["WRRScheduler"]


class WRRScheduler(FlowTableScheduler):
    """Classic weighted round robin (integer weights, per-packet credits)."""

    name: ClassVar[str] = "wrr"
    requires_integer_weights: ClassVar[bool] = True

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._active: Deque[FlowState] = deque()
        self._active_set = set()
        # Packets still owed to the flow at the head of the round.
        self._credit = 0

    def _on_backlogged(self, flow: FlowState) -> None:
        if flow.flow_id not in self._active_set:
            self._active.append(flow)
            self._active_set.add(flow.flow_id)

    def _on_flow_removed(self, flow: FlowState) -> None:
        if flow.flow_id in self._active_set:
            if self._active and self._active[0] is flow:
                self._credit = 0
            self._active.remove(flow)
            self._active_set.discard(flow.flow_id)

    def dequeue(self) -> Optional[Packet]:
        ops = self._ops
        active = self._active
        while active:
            ops.bump()
            flow = active[0]
            if self._credit == 0:
                self._credit = int(flow.weight)
            packet = flow.take()
            self._credit -= 1
            if not flow.queue:
                # Drained mid-burst: forfeit remaining credit.
                active.popleft()
                self._active_set.discard(flow.flow_id)
                self._credit = 0
            elif self._credit == 0:
                # Burst complete: rotate to the tail.
                active.rotate(-1)
            return self._account_departure(packet)
        return None
