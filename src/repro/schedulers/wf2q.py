"""WF²Q+ — Worst-case Fair Weighted Fair Queueing (Bennett & Zhang).

WF²Q refines WFQ with an *eligibility* test: the server only considers
packets that the GPS fluid system would already have started
(``S_p <= V(t)``), and among those serves the smallest finish stamp. This
removes WFQ's up-to-one-round "run ahead" and gives the smallest possible
Worst-case Fairness Index. WF²Q+ (Bennett & Zhang, 1997) replaces GPS
tracking with the cheap virtual-time recursion::

    V(after transmitting l bytes) = max(V + l / W_total,
                                        min over backlogged flows of S_head)

where ``W_total`` is the total registered weight (the normalised link
rate). Tagging uses the same ``S = max(V, F_flow)`` rule as the others;
stamps are computed per packet at arrival and carried in the flow's tag
FIFO.

Only head-of-line packets participate in selection (as in the published
algorithm): each backlogged flow contributes exactly one entry, first to a
*pending* heap ordered by start stamp, migrating to an *eligible* heap
ordered by finish stamp once V passes its start. Cost is O(log N) per
packet.
"""

from __future__ import annotations

from typing import ClassVar, Optional

from ..core.flow import FlowState
from ..core.interfaces import FlowTableScheduler
from ..core.packet import Packet
from ._heap import CountingHeap

__all__ = ["WF2QPlusScheduler"]


class WF2QPlusScheduler(FlowTableScheduler):
    """WF²Q+: eligibility-filtered smallest-finish-stamp service."""

    name: ClassVar[str] = "wf2q+"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._vtime = 0.0
        # Heap of (start, finish, uid, packet, flow): HOL, not yet eligible.
        self._pending = CountingHeap(op_counter=self._ops)
        # Heap of (finish, uid, packet, flow): HOL, eligible for service.
        self._eligible = CountingHeap(op_counter=self._ops)
        self._total_weight = 0.0

    def _on_flow_added(self, flow: FlowState) -> None:
        self._total_weight += flow.weight

    def _on_flow_removed(self, flow: FlowState) -> None:
        # Heap entries for this flow go stale and are skipped lazily.
        self._total_weight -= flow.weight
        flow.finish_tag = 0.0
        flow.tags.clear()

    def enqueue(self, packet: Packet) -> bool:
        flow = self._lookup(packet.flow_id)
        if not super().enqueue(packet):
            return False
        start = self._vtime if flow.finish_tag < self._vtime else flow.finish_tag
        finish = start + packet.size / flow.weight
        flow.finish_tag = finish
        flow.tags.append((start, finish))
        if len(flow.queue) == 1:
            # The flow just became backlogged: its HOL enters selection.
            self._pending.push((start, finish, packet.uid, packet, flow))
        return True

    def dequeue(self) -> Optional[Packet]:
        self._promote_eligible()
        while True:
            entry = self._pop_valid_eligible()
            if entry is None:
                # Nothing eligible: jump V forward to the earliest pending
                # start (the max() term of the WF²Q+ recursion) and retry.
                head = self._peek_valid_pending()
                if head is None:
                    return None
                if head[0] > self._vtime:
                    self._vtime = head[0]
                self._promote_eligible()
                continue
            _finish, _uid, packet, flow = entry
            flow.take()
            flow.tags.popleft()
            self._account_departure(packet)
            if self._backlog_packets == 0:
                self._end_busy_period()
                return packet
            if flow.queue:
                start, finish = flow.tags[0]
                hol = flow.queue[0]
                self._pending.push((start, finish, hol.uid, hol, flow))
            if self._total_weight > 0:
                self._vtime += packet.size / self._total_weight
            self._promote_eligible()
            return packet

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _entry_valid(packet: Packet, flow: FlowState) -> bool:
        return bool(flow.queue) and flow.queue[0] is packet

    def _promote_eligible(self) -> None:
        """Move pending HOL entries with S <= V into the eligible heap."""
        pending = self._pending
        while pending:
            start, finish, uid, packet, flow = pending.peek()
            if not self._entry_valid(packet, flow):
                pending.pop()  # stale (flow removed)
                continue
            if start > self._vtime:
                break
            pending.pop()
            self._eligible.push((finish, uid, packet, flow))

    def _pop_valid_eligible(self):
        heap = self._eligible
        while heap:
            entry = heap.pop()
            _finish, _uid, packet, flow = entry
            if self._entry_valid(packet, flow):
                return entry
        return None

    def _peek_valid_pending(self):
        heap = self._pending
        while heap:
            entry = heap.peek()
            _start, _finish, _uid, packet, flow = entry
            if self._entry_valid(packet, flow):
                return entry
            heap.pop()
        return None

    def _end_busy_period(self) -> None:
        self._vtime = 0.0
        self._pending.clear()
        self._eligible.clear()
        for flow in self._flows.values():
            flow.finish_tag = 0.0
            flow.tags.clear()

    @property
    def virtual_time(self) -> float:
        """Current WF²Q+ virtual time (diagnostics/tests)."""
        return self._vtime
