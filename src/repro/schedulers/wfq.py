"""Weighted Fair Queueing (Demers/Keshav/Shenker 1989; PGPS, Parekh-Gallager).

WFQ emulates the Generalized Processor Sharing (GPS) fluid server: every
arriving packet is stamped with the virtual time at which GPS would finish
it, and the link always transmits the packet with the smallest finish
stamp. WFQ is the canonical *timestamp* scheduler the paper positions SRR
against: it gives constant (N-independent) delay bounds but pays
Ω(log N) — and for exact GPS virtual-time tracking up to O(N) — work per
packet.

Virtual time
------------
Within a busy period the GPS virtual clock advances at rate
``1 / (Σ weights of GPS-backlogged flows)`` per byte of real service. A
flow stays GPS-backlogged until the virtual clock passes its last finish
stamp. Tracking this exactly requires processing GPS departures between
consecutive real-packet transmissions — the classical "iterated deletion",
implemented here with a lazy min-heap of per-flow last finish stamps. This
is precisely the part whose cost grows with N, and it is counted into the
op counter for experiment E5.

Tagging (per arriving packet ``p`` of flow ``i`` with weight ``w_i``)::

    S_p = max(V_now, F_i)        # start stamp
    F_p = S_p + size(p) / w_i    # finish stamp; F_i := F_p

The scheduler is self-clocked by transmitted work: each ``dequeue``
advances real time by the transmitted packet's size (the scheduler sees
only service order, so "one byte of transmission" is the natural unit;
the network simulator supplies wall-clock timing on top). When the real
queue drains completely, the busy period ends and the virtual clock and
all stamps reset to zero.
"""

from __future__ import annotations

from typing import ClassVar, Optional

from ..core.flow import FlowState
from ..core.interfaces import FlowTableScheduler
from ..core.packet import Packet
from ._heap import CountingHeap

__all__ = ["WFQScheduler"]


class WFQScheduler(FlowTableScheduler):
    """Packet-by-packet GPS (WFQ) with exact virtual-time tracking."""

    name: ClassVar[str] = "wfq"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        # GPS virtual clock (virtual units: bytes per unit weight).
        self._vtime = 0.0
        # Min-heap of (finish_stamp, uid, packet, flow) over *queued*
        # packets; the head is the next WFQ transmission.
        self._service = CountingHeap(op_counter=self._ops)
        # Lazy min-heap of (last_finish_stamp, flow) for GPS departure
        # processing, plus the current GPS-backlogged weight sum.
        self._gps = CountingHeap(op_counter=self._ops)
        self._gps_weight = 0.0
        # flow_id -> FlowState of the GPS-backlogged flows. Mapping to the
        # *object* (not a bare id set) lets heap entries be validated by
        # identity: when a flow is removed and a new flow re-registers
        # under the same id mid-busy-period, the old flow's stale heap
        # entries must not pass for the new member — matching on id alone
        # would subtract the old weight from `_gps_weight` and evict the
        # new flow's membership, corrupting the virtual clock.
        self._gps_members: dict = {}
        # Deterministic tie-break for equal GPS stamps: push order, not
        # id(), whose values depend on process allocation history and
        # would make operation counts irreproducible.
        self._gps_seq = 0

    # -- tagging -----------------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        flow = self._lookup(packet.flow_id)
        if not super().enqueue(packet):
            return False
        start = self._vtime if flow.finish_tag < self._vtime else flow.finish_tag
        finish = start + packet.size / flow.weight
        flow.finish_tag = finish
        self._service.push((finish, packet.uid, packet, flow))
        # (Re-)register the flow's GPS backlog horizon.
        self._gps_seq += 1
        self._gps.push((finish, self._gps_seq, flow))
        if self._gps_members.get(packet.flow_id) is not flow:
            self._gps_members[packet.flow_id] = flow
            self._gps_weight += flow.weight
        return True

    # -- service ----------------------------------------------------------

    def dequeue(self) -> Optional[Packet]:
        service = self._service
        while service:
            finish, _uid, packet, flow = service.pop()
            if not flow.queue or flow.queue[0] is not packet:
                # Stale entry (flow removed); skip.
                continue
            flow.take()
            self._account_departure(packet)
            if self._backlog_packets == 0:
                self._end_busy_period()
            else:
                self._advance_virtual_time(packet.size)
            return packet
        return None

    def _advance_virtual_time(self, work: float) -> None:
        """Advance the GPS clock by ``work`` bytes of real service,
        processing GPS flow departures (iterated deletion) on the way."""
        gps = self._gps
        remaining = float(work)
        while remaining > 0.0 and gps:
            stamp, _tie, flow = gps.peek()
            if (
                self._gps_members.get(flow.flow_id) is not flow
                or stamp < flow.finish_tag
            ):
                # Superseded entry: the flow received later arrivals (or
                # left already); drop and re-examine.
                gps.pop()
                continue
            weight_sum = self._gps_weight
            if weight_sum <= 0.0:
                break
            needed = (stamp - self._vtime) * weight_sum
            if needed > remaining:
                self._vtime += remaining / weight_sum
                return
            # The GPS system finishes this flow's backlog at `stamp`.
            self._vtime = stamp
            remaining -= needed
            gps.pop()
            del self._gps_members[flow.flow_id]
            self._gps_weight -= flow.weight
        if remaining > 0.0 and not gps:
            # GPS idle but real packets remained (can only happen through
            # floating-point dust); clock simply halts.
            return

    def _end_busy_period(self) -> None:
        self._vtime = 0.0
        self._service.clear()
        self._gps.clear()
        self._gps_members.clear()
        self._gps_weight = 0.0
        for flow in self._flows.values():
            flow.finish_tag = 0.0

    def _on_flow_removed(self, flow: FlowState) -> None:
        # Service-heap entries go stale and are skipped lazily; the GPS
        # horizon entry likewise. Remove its weight contribution now —
        # guarding by identity so a later same-id member is untouched.
        if self._gps_members.get(flow.flow_id) is flow:
            del self._gps_members[flow.flow_id]
            self._gps_weight -= flow.weight
        flow.finish_tag = 0.0

    @property
    def virtual_time(self) -> float:
        """Current GPS virtual clock (diagnostics/tests)."""
        return self._vtime
