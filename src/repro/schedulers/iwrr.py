"""Interleaved Weighted Round Robin — WRR without the serial bursts.

Classic WRR serves a flow's whole ``w``-packet allocation consecutively,
so competitors wait up to ``Σ w_j - w_i`` packet times between bursts.
IWRR spreads the allocation across *cycles*: within a round, cycle ``c``
serves one packet from every flow whose weight is at least ``c``, so a
weight-``w`` flow transmits once per cycle for ``w`` cycles instead of
``w`` back to back. Long-run shares are identical to WRR; the service
*spread* (and hence the network-calculus latency) is strictly better for
``w > 1`` — see the strict-service-curve analysis of Tabatabaee, Le
Boudec & Boyer (arXiv 2003.08372) and
:func:`repro.analysis.netcalc.iwrr_service_curve`.

Implementation: two deques. ``_current`` holds flows with credit left in
the running round and is rotated one packet at a time (one rotation pass
== one IWRR cycle); a flow whose credit hits zero moves to ``_pending``.
When ``_current`` empties the deques swap roles and credits replenish to
the weights — an O(active flows) step per round, amortised O(1) per
packet since every replenished flow sends at least once that round. A
flow that becomes backlogged joins the *running* round with full credit
(bounded unfairness, covered by the curve's slack term); a flow that
drains mid-round forfeits its remaining credit, exactly like WRR.
"""

from __future__ import annotations

from collections import deque
from typing import ClassVar, Deque, Dict, Hashable, Optional

from ..core.flow import FlowState
from ..core.interfaces import FlowTableScheduler
from ..core.packet import Packet

__all__ = ["IWRRScheduler"]


class IWRRScheduler(FlowTableScheduler):
    """Interleaved weighted round robin (integer weights, per-flow credits)."""

    name: ClassVar[str] = "iwrr"
    requires_integer_weights: ClassVar[bool] = True

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        # Flows with credit remaining in the running round, in cycle
        # order, and flows waiting for the next round to start.
        self._current: Deque[FlowState] = deque()
        self._pending: Deque[FlowState] = deque()
        self._active_set = set()
        self._credit: Dict[Hashable, int] = {}

    def _on_backlogged(self, flow: FlowState) -> None:
        if flow.flow_id not in self._active_set:
            self._active_set.add(flow.flow_id)
            self._credit[flow.flow_id] = int(flow.weight)
            self._current.append(flow)

    def _on_flow_removed(self, flow: FlowState) -> None:
        if flow.flow_id in self._active_set:
            self._active_set.discard(flow.flow_id)
            self._credit.pop(flow.flow_id, None)
            try:
                self._current.remove(flow)
            except ValueError:
                self._pending.remove(flow)

    def dequeue(self) -> Optional[Packet]:
        ops = self._ops
        current = self._current
        pending = self._pending
        credits = self._credit
        while current or pending:
            if not current:
                # Round boundary: every still-backlogged flow re-enters
                # with fresh credit, keeping its order. O(active) per
                # round, amortised O(1) per packet (each replenished
                # flow transmits at least once in the new round).
                while pending:
                    ops.bump()
                    flow = pending.popleft()
                    credits[flow.flow_id] = int(flow.weight)
                    current.append(flow)
            ops.bump()
            flow = current[0]
            packet = flow.take()
            credit = credits[flow.flow_id] - 1
            credits[flow.flow_id] = credit
            if not flow.queue:
                # Drained mid-round: forfeit the remaining credit.
                current.popleft()
                self._active_set.discard(flow.flow_id)
                del credits[flow.flow_id]
            elif credit == 0:
                # Allocation spent: wait for the next round.
                current.popleft()
                pending.append(flow)
            else:
                # One packet per cycle: rotate to the cycle's tail.
                current.rotate(-1)
            return self._account_departure(packet)
        return None
