"""Self-Clocked Fair Queueing (Golestani, INFOCOM 1994).

SCFQ replaces WFQ's expensive GPS virtual clock with a self-clocking rule:
the system virtual time is simply the finish stamp of the packet currently
in service. Tagging and service-order selection are otherwise identical
to WFQ (serve the smallest finish stamp), which keeps the cost at a clean
O(log N) — one heap push + pop per packet, no iterated deletion. The price
is a delay bound looser than WFQ's by an N-dependent term; as a baseline
it represents the "cheap timestamp scheduler" point in experiment E5.
"""

from __future__ import annotations

from typing import ClassVar, Optional

from ..core.flow import FlowState
from ..core.interfaces import FlowTableScheduler
from ..core.packet import Packet
from ._heap import CountingHeap

__all__ = ["SCFQScheduler"]


class SCFQScheduler(FlowTableScheduler):
    """Self-clocked fair queueing: V(t) = finish stamp in service."""

    name: ClassVar[str] = "scfq"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._vtime = 0.0
        self._service = CountingHeap(op_counter=self._ops)

    def enqueue(self, packet: Packet) -> bool:
        flow = self._lookup(packet.flow_id)
        if not super().enqueue(packet):
            return False
        start = self._vtime if flow.finish_tag < self._vtime else flow.finish_tag
        finish = start + packet.size / flow.weight
        flow.finish_tag = finish
        self._service.push((finish, packet.uid, packet, flow))
        return True

    def dequeue(self) -> Optional[Packet]:
        service = self._service
        while service:
            finish, _uid, packet, flow = service.pop()
            if not flow.queue or flow.queue[0] is not packet:
                continue  # stale (flow was removed)
            flow.take()
            # Self-clocking: the in-service packet's stamp IS virtual time.
            self._vtime = finish
            self._account_departure(packet)
            if self._backlog_packets == 0:
                self._end_busy_period()
            return packet
        return None

    def _end_busy_period(self) -> None:
        self._vtime = 0.0
        self._service.clear()
        for flow in self._flows.values():
            flow.finish_tag = 0.0

    def _on_flow_removed(self, flow: FlowState) -> None:
        flow.finish_tag = 0.0

    @property
    def virtual_time(self) -> float:
        """Current self-clocked virtual time (diagnostics/tests)."""
        return self._vtime
