"""Deficit Round Robin (Shreedhar & Varghese, SIGCOMM 1995).

The standard O(1) byte-fair round-robin scheduler and the paper's main
round-robin comparator. Each backlogged flow sits in a circular active
list; when visited it receives ``weight * quantum`` bytes of credit and
transmits head-of-line packets while the credit covers them, carrying any
remainder to its next visit. With ``quantum >= max packet size`` each
visit sends at least one packet, giving O(1) amortised work per packet.

Credit is accumulated *exactly* (as a float for fractional weights): a
flow whose per-visit grant ``weight * quantum`` is below one byte simply
accrues credit across visits until it covers the head-of-line packet.
Truncating the grant to an int instead — as a first version of this file
did — starves such flows forever and turns ``dequeue()`` into an
unbounded rotate loop once every other flow has drained. Weights so small
that the accrual itself would be unbounded are rejected at ``add_flow``
time (see ``MIN_VISIT_CREDIT``).

DRR's weakness relative to SRR is *latency and burstiness*: a flow's whole
per-round allocation is delivered in one contiguous burst, so the gap
between a flow's bursts grows with the number of active flows and with
total weight — exactly the effect experiments E2-E4 measure.
"""

from __future__ import annotations

from collections import deque
from typing import ClassVar, Deque, Optional

from ..core.errors import ConfigurationError
from ..core.flow import FlowState
from ..core.interfaces import FlowTableScheduler
from ..core.packet import Packet

__all__ = ["DRRScheduler"]


#: Smallest accepted per-visit credit ``weight * quantum`` in bytes.
#: Below this, serving a single MTU packet would take millions of active-
#: list rotations — indistinguishable from a livelock in practice — so the
#: configuration is rejected up front instead.
MIN_VISIT_CREDIT = 2.0 ** -20


class DRRScheduler(FlowTableScheduler):
    """Deficit Round Robin with per-flow ``weight * quantum`` byte credit."""

    name: ClassVar[str] = "drr"
    supports_reweight: ClassVar[bool] = True

    def __init__(self, *, quantum: int = 1500, **kwargs) -> None:
        super().__init__(**kwargs)
        if quantum < 1:
            raise ConfigurationError(f"quantum must be >= 1, got {quantum}")
        self.quantum = quantum
        self._active: Deque[FlowState] = deque()
        self._active_set = set()
        # True while the head flow has already been granted this round's
        # credit (it is mid-burst across dequeue() calls).
        self._head_charged = False

    def _on_flow_added(self, flow: FlowState) -> None:
        if flow.weight * self.quantum < MIN_VISIT_CREDIT:
            del self._flows[flow.flow_id]
            raise ConfigurationError(
                f"flow {flow.flow_id!r}: per-visit credit "
                f"{flow.weight} * {self.quantum} is below "
                f"MIN_VISIT_CREDIT={MIN_VISIT_CREDIT}; raise the weight or "
                f"the quantum"
            )

    def _on_backlogged(self, flow: FlowState) -> None:
        if flow.flow_id not in self._active_set:
            flow.deficit = 0
            self._active.append(flow)
            self._active_set.add(flow.flow_id)

    def _on_flow_removed(self, flow: FlowState) -> None:
        if flow.flow_id in self._active_set:
            if self._active and self._active[0] is flow:
                self._head_charged = False
            self._active.remove(flow)
            self._active_set.discard(flow.flow_id)

    def dequeue(self) -> Optional[Packet]:
        ops = self._ops
        active = self._active
        while active:
            ops.bump()
            flow = active[0]
            if not self._head_charged:
                # Exact (possibly fractional) credit. int() truncation here
                # would grant 0 bytes forever when weight * quantum < 1 and
                # livelock the rotate loop below.
                flow.deficit += flow.weight * self.quantum
                self._head_charged = True
            if flow.head_size() <= flow.deficit:
                packet = flow.take()
                flow.deficit -= packet.size
                if not flow.queue:
                    # Shreedhar-Varghese: leaving the active list resets
                    # the deficit — credit must not survive idling.
                    flow.deficit = 0
                    active.popleft()
                    self._active_set.discard(flow.flow_id)
                    self._head_charged = False
                return self._account_departure(packet)
            # Credit exhausted for this round: rotate, keep the deficit.
            active.rotate(-1)
            self._head_charged = False
        return None
