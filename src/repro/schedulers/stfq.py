"""Start-time Fair Queueing (Goyal, Vin & Cheng, SIGCOMM 1996 / ToN 1997).

STFQ serves the packet with the smallest *start* stamp, with system
virtual time self-clocked to the start stamp of the packet in service.
Like SCFQ it avoids GPS tracking (O(log N) per packet) while providing
fairness that degrades gracefully under fluctuating server capacity — the
property that made it popular for hierarchical link sharing. In this
repository it is a second timestamp baseline for experiments E5/E6.

Tagging (packet ``p`` of flow ``i``)::

    S_p = max(V_now, F_i)
    F_p = S_p + size(p) / w_i     # F_i := F_p

Service: smallest ``S_p``; ties by arrival order.
"""

from __future__ import annotations

from typing import ClassVar, Optional

from ..core.flow import FlowState
from ..core.interfaces import FlowTableScheduler
from ..core.packet import Packet
from ._heap import CountingHeap

__all__ = ["STFQScheduler"]


class STFQScheduler(FlowTableScheduler):
    """Start-time fair queueing: serve min start stamp, V = S in service."""

    name: ClassVar[str] = "stfq"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._vtime = 0.0
        self._service = CountingHeap(op_counter=self._ops)

    def enqueue(self, packet: Packet) -> bool:
        flow = self._lookup(packet.flow_id)
        if not super().enqueue(packet):
            return False
        start = self._vtime if flow.finish_tag < self._vtime else flow.finish_tag
        finish = start + packet.size / flow.weight
        flow.finish_tag = finish
        self._service.push((start, packet.uid, packet, flow))
        return True

    def dequeue(self) -> Optional[Packet]:
        service = self._service
        while service:
            start, _uid, packet, flow = service.pop()
            if not flow.queue or flow.queue[0] is not packet:
                continue  # stale (flow was removed)
            flow.take()
            self._vtime = start
            self._account_departure(packet)
            if self._backlog_packets == 0:
                self._end_busy_period()
            return packet
        return None

    def _end_busy_period(self) -> None:
        self._vtime = 0.0
        self._service.clear()
        for flow in self._flows.values():
            flow.finish_tag = 0.0

    def _on_flow_removed(self, flow: FlowState) -> None:
        flow.finish_tag = 0.0

    @property
    def virtual_time(self) -> float:
        """Current self-clocked virtual time (diagnostics/tests)."""
        return self._vtime
