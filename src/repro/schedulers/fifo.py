"""First-In-First-Out — the degenerate baseline (no isolation at all).

FIFO ignores weights entirely; it exists to show what the QoS schedulers
buy. Per-flow queue limits are still honoured so overload experiments can
drop fairly at the edge.
"""

from __future__ import annotations

from collections import deque
from typing import ClassVar, Deque, Optional

from ..core.interfaces import FlowTableScheduler
from ..core.packet import Packet

__all__ = ["FIFOScheduler"]


class FIFOScheduler(FlowTableScheduler):
    """Single shared queue; arrival order is service order."""

    name: ClassVar[str] = "fifo"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._line: Deque[Packet] = deque()

    def enqueue(self, packet: Packet) -> bool:
        if not super().enqueue(packet):
            return False
        self._line.append(packet)
        return True

    def dequeue(self) -> Optional[Packet]:
        ops = self._ops
        while self._line:
            ops.bump()
            packet = self._line.popleft()
            flow = self._flows.get(packet.flow_id)
            # The packet may belong to a flow that was removed after it was
            # queued; its backlog was already discounted then, so skip it.
            if flow is None or not flow.queue or flow.queue[0] is not packet:
                continue
            flow.take()
            return self._account_departure(packet)
        return None
