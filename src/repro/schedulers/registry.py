"""Name -> scheduler factory registry.

The benchmark harness and the network simulator refer to scheduling
disciplines by short names (``"srr"``, ``"drr"``, ``"wfq"``, ...); this
module resolves them. Extensions (RRR, G-3) register themselves on import
of :mod:`repro.extensions`, keeping the dependency direction clean
(core/schedulers never import extensions at module load).

Both :func:`create_scheduler` and :func:`available_schedulers` load the
extension package lazily on first use, so every entry point — the bench
CLI, ``Network(default_scheduler="g3")``, sweep worker processes, tests —
sees the same complete registry without having to remember a manual
``import repro.extensions``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.errors import ConfigurationError
from ..core.interfaces import PacketScheduler
from ..core.srr import SRRScheduler
from .drr import DRRScheduler
from .fifo import FIFOScheduler
from .iwrr import IWRRScheduler
from .rr import RoundRobinScheduler
from .scfq import SCFQScheduler
from .stfq import STFQScheduler
from .strr import StratifiedRRScheduler
from .virtual_clock import VirtualClockScheduler
from .wf2q import WF2QPlusScheduler
from .wfq import WFQScheduler
from .wrr import WRRScheduler

__all__ = [
    "create_scheduler",
    "register_scheduler",
    "available_schedulers",
    "resolve_scheduler",
]

SchedulerFactory = Callable[..., PacketScheduler]

_REGISTRY: Dict[str, SchedulerFactory] = {
    SRRScheduler.name: SRRScheduler,
    DRRScheduler.name: DRRScheduler,
    FIFOScheduler.name: FIFOScheduler,
    IWRRScheduler.name: IWRRScheduler,
    RoundRobinScheduler.name: RoundRobinScheduler,
    SCFQScheduler.name: SCFQScheduler,
    STFQScheduler.name: STFQScheduler,
    StratifiedRRScheduler.name: StratifiedRRScheduler,
    VirtualClockScheduler.name: VirtualClockScheduler,
    WF2QPlusScheduler.name: WF2QPlusScheduler,
    WFQScheduler.name: WFQScheduler,
    WRRScheduler.name: WRRScheduler,
}


_extensions_loaded = False


def _load_extensions() -> None:
    """Import the lazily-registered scheduler packages once.

    Extensions (rrr/g3) and the flat-core fastpath twins (``srr:fast``,
    ``drr:fast``, ...) self-register on first registry use, keeping the
    dependency direction clean.
    """
    global _extensions_loaded
    if _extensions_loaded:
        return
    _extensions_loaded = True
    import repro.extensions  # noqa: F401
    from repro.fastpath import register_fastpath_schedulers

    register_fastpath_schedulers()


def register_scheduler(name: str, factory: SchedulerFactory) -> None:
    """Register (or replace) a scheduler factory under ``name``."""
    if not name:
        raise ConfigurationError("scheduler name must be non-empty")
    _REGISTRY[name] = factory


def create_scheduler(name: str, **kwargs) -> PacketScheduler:
    """Instantiate a scheduler by registry name, passing ``kwargs`` through."""
    _load_extensions()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; available: {available_schedulers()}"
        ) from None
    return factory(**kwargs)


def available_schedulers() -> List[str]:
    """Sorted list of registered scheduler names (extensions included)."""
    _load_extensions()
    return sorted(_REGISTRY)


def resolve_scheduler(name: str, core: str = "object") -> str:
    """Map a registry name to the requested core's implementation.

    ``core="object"`` is the identity; ``core="fast"`` swaps in the flat
    twin (``srr`` -> ``srr:fast``) where one exists and leaves every
    other discipline on the object core — so a fast-core run covers the
    identical discipline list under the identical input names. Shared by
    the conformance harness and the bench CLI's ``--core`` flag.
    """
    if core == "object":
        return name
    if core != "fast":
        raise ConfigurationError(f"unknown scheduler core {core!r}")
    from repro.fastpath import FAST_CORES

    return f"{name}:fast" if name in FAST_CORES else name
